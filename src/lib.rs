//! DAGguise reproduction — umbrella crate.
//!
//! This crate re-exports the whole workspace behind one dependency so the
//! examples under `examples/` and downstream users can write
//! `use dagguise_repro::prelude::*;` and get the full stack: the DAGguise
//! shaper itself ([`dagguise`]), the rDAG representation ([`dg_rdag`]),
//! the simulated memory system ([`dg_dram`], [`dg_mem`], [`dg_cache`],
//! [`dg_cpu`]), the baseline defenses ([`dg_defenses`]), workloads and
//! attacks ([`dg_workloads`], [`dg_attacks`]), the system assembly
//! ([`dg_system`]), the security verifier ([`dg_verif`]) and the area
//! model ([`dg_area`]).
//!
//! Start with `examples/quickstart.rs`, or see README.md for the map of
//! the workspace.

pub use dagguise;
pub use dg_area;
pub use dg_attacks;
pub use dg_cache;
pub use dg_cpu;
pub use dg_defenses;
pub use dg_dram;
pub use dg_mem;
pub use dg_rdag;
pub use dg_sim;
pub use dg_system;
pub use dg_verif;
pub use dg_workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dagguise::{Shaper, ShaperConfig};
    pub use dg_cpu::{Core, DagWorkload, MemTrace};
    pub use dg_rdag::template::RdagTemplate;
    pub use dg_rdag::Rdag;
    pub use dg_sim::config::SystemConfig;
    pub use dg_sim::types::{DomainId, MemRequest, MemResponse, ReqType};
    pub use dg_system::{MemoryKind, SystemBuilder};
}
