//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with parking_lot's poison-free API (`lock()` returns the
//! guard directly; a poisoned lock is recovered transparently).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_push_pop_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().pop(), Some(3));
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
