//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in.
//!
//! No `syn`/`quote`: the input `TokenStream` is parsed directly (we only
//! need the item's shape — field names, tuple arities, enum variants) and
//! the impl is emitted as a string parsed back into a `TokenStream`.
//! Field *types* are never inspected; the generated code leans on
//! inference (`::serde::Deserialize::from_value(...)?` resolves from the
//! field it is assigned to).
//!
//! Conventions mirror real serde: named structs serialize as maps in
//! declaration order, newtype structs are transparent, tuple structs are
//! sequences, unit enum variants are strings, and data-carrying variants
//! are externally tagged (`{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (value-model `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-model `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);

    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    skip_generics(&mut it);

    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    };
    (name, shape)
}

fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // `pub(crate)` and friends
                    }
                }
            }
            _ => break,
        }
    }
}

fn skip_generics(it: &mut Tokens) {
    if !matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return;
    }
    let mut depth = 0i32;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Parses `a: T, b: U, ...` field lists, returning the names in order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        // Parens/brackets arrive as atomic groups, so only `<`/`>` nest.
        let mut angle = 0i32;
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    it.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    it.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
                None => break,
            }
        }
    }
    fields
}

/// Counts comma-separated items at angle-depth 0 (tuple-struct arity).
fn count_top_level_items(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut items = 0usize;
    let mut in_item = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    in_item = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_item {
            in_item = true;
            items += 1;
        }
    }
    items
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                it.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        for tok in it.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(m, \"{f}\")?)?")
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected array for {name}\"))?;\n\
                 if s.len() != {n} {{\n\
                     return Err(::serde::DeError::custom(\"wrong arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let s = inner.as_seq().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected array\"))?;\n\
                                     if s.len() != {n} {{\n\
                                         return Err(::serde::DeError::custom(\"wrong arity\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(m, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let m = inner.as_map().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected object\"))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                     return match s.as_str() {{\n\
                         {}\n\
                         _ => Err(::serde::DeError::custom(\"unknown variant for {name}\")),\n\
                     }};\n\
                 }}\n\
                 if let Some((tag, inner)) = ::serde::variant(v) {{\n\
                     let _ = inner;\n\
                     return match tag {{\n\
                         {}\n\
                         _ => Err(::serde::DeError::custom(\"unknown variant for {name}\")),\n\
                     }};\n\
                 }}\n\
                 Err(::serde::DeError::custom(\"expected enum value for {name}\"))",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
             {{ {body} }}\n\
         }}"
    )
}
