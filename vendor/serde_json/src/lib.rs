//! Offline stand-in for `serde_json`: prints and parses JSON over the
//! vendored `serde` [`Value`] model.
//!
//! Output is deterministic: maps keep insertion order and floats print via
//! Rust's shortest-round-trip `Display`. Non-finite floats serialize as
//! `null`, matching real serde_json's lossy default.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error for JSON (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible for the value model; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for the value model; the `Result` mirrors serde_json's API.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses a JSON string into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    T::from_value(&v).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep whole floats visibly floating-point ("1.0").
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"x": -3, "y": [1.5, "s\n", {}], "z": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("x"), Some(&Value::Int(-3)));
        let reparsed: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }
}
