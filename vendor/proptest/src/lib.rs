//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`, integer
//! ranges, tuples, `prop::collection::vec`, `prop::sample::select`,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! generated case via the panic message), and generation is seeded
//! deterministically from the test's name so every run explores the same
//! cases — which suits this repo's reproducibility-first philosophy.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator driving case generation.
///
/// Self-contained on purpose: depending on `dg-sim`'s `DetRng` would
/// create a dependency cycle (every crate dev-depends on proptest).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary value.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy over all values of an [`Arbitrary`] type.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for variable-length `Vec`s.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed option list.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Picks one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property (panics on failure, which fails
/// the surrounding case — this stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn map_and_collections_compose(
            addr in (0u64..1u64 << 20).prop_map(|a| a & !63),
            v in prop::collection::vec((0usize..4, 1u64..9), 1..6),
            pick in prop::sample::select(vec![1u32, 2, 4]),
            b in any::<bool>(),
        ) {
            prop_assert_eq!(addr % 64, 0);
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, w) in v {
                prop_assert!(a < 4 && (1..9).contains(&w));
            }
            prop_assert!([1u32, 2, 4].contains(&pick));
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed-name");
        let mut b = TestRng::deterministic("seed-name");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
