//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter` — with a straightforward
//! calibrate-then-sample wall-clock measurement. Statistics are minimal
//! (mean / min / max over samples); there is no HTML report. Passing
//! `--test` (as `cargo test --benches` does) runs each benchmark once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time per measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / libtest pass `--test`; honour it by
        // running each benchmark body once instead of measuring.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Defines and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to time its hot loop.
pub struct Bencher {
    test_mode: bool,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, calibrating an iteration count so each sample runs
    /// long enough to be meaningful, then recording `sample_size` samples
    /// of mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up + calibration: grow the iteration count until one batch
        // takes at least TARGET_SAMPLE.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos()).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok (bench test mode)");
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)*
        }
    };
}

/// Emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
