//! Offline stand-in for `crossbeam`, providing the `crossbeam::thread`
//! scoped-threads API on top of `std::thread::scope` (which has existed
//! since Rust 1.63 and makes the crossbeam implementation unnecessary for
//! this workspace's fork-join fan-out), plus the `crossbeam::deque`
//! work-stealing deque API used by `dg-runner`'s worker pool.

/// Work-stealing deques (`crossbeam_deque`-shaped API).
///
/// The real crate's lock-free Chase-Lev deque is replaced by mutexed
/// `VecDeque`s: the workspace schedules simulation jobs that run for
/// milliseconds to minutes, so scheduler-level contention is irrelevant —
/// only the API shape and the ownership/stealing semantics matter.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether this attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO injector queue all workers can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }
    }

    /// A worker-owned FIFO deque; hand out [`Stealer`]s to other workers.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker deque.
        pub fn new_fifo() -> Self {
            Self {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .push_back(task);
        }

        /// Pops a task from the owner's end (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
        }

        /// Creates a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }
    }

    /// A handle that can steal tasks from another worker's deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals a task from the opposite end of the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("worker deque poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert_eq!(inj.steal(), Steal::Empty::<i32>);
        }

        #[test]
        fn worker_pop_and_steal_draw_from_opposite_ends() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(2));
            assert!(w.is_empty() && s.is_empty());
        }

        #[test]
        fn stealing_across_threads_loses_no_task() {
            let w = Worker::new_fifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stolen: Mutex<Vec<i32>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let s = w.stealer();
                    let stolen = &stolen;
                    scope.spawn(move || {
                        while let Steal::Success(t) = s.steal() {
                            stolen.lock().unwrap().push(t);
                        }
                    });
                }
            });
            let mut got = stolen.into_inner().unwrap();
            got.extend(std::iter::from_fn(|| w.pop()));
            got.sort_unstable();
            assert_eq!(got, (0..1000).collect::<Vec<_>>());
        }
    }
}

/// Scoped threads (`crossbeam::thread::scope`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to the `scope` closure and to each spawned thread,
    /// mirroring crossbeam's `Scope` (whose `spawn` closures receive the
    /// scope again so they can spawn nested work).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Runs `f` with a scope in which borrowing-threads can be spawned;
    /// joins them all before returning. Returns `Err` with the panic
    /// payload if any spawned thread (or `f` itself) panicked, matching
    /// crossbeam's signature.
    ///
    /// # Errors
    ///
    /// The boxed panic payload of whichever thread panicked first.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
                }
            })
            .expect("workers joined");
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
