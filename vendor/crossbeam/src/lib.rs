//! Offline stand-in for `crossbeam`, providing the `crossbeam::thread`
//! scoped-threads API on top of `std::thread::scope` (which has existed
//! since Rust 1.63 and makes the crossbeam implementation unnecessary for
//! this workspace's fork-join fan-out).

/// Scoped threads (`crossbeam::thread::scope`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to the `scope` closure and to each spawned thread,
    /// mirroring crossbeam's `Scope` (whose `spawn` closures receive the
    /// scope again so they can spawn nested work).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Runs `f` with a scope in which borrowing-threads can be spawned;
    /// joins them all before returning. Returns `Err` with the panic
    /// payload if any spawned thread (or `f` itself) panicked, matching
    /// crossbeam's signature.
    ///
    /// # Errors
    ///
    /// The boxed panic payload of whichever thread panicked first.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
                }
            })
            .expect("workers joined");
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
