//! Offline stand-in for the `serde` crate.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this vendored crate provides the same surface the workspace actually
//! uses: the `Serialize`/`Deserialize` traits, their derive macros, and a
//! JSON-shaped [`Value`] data model that `serde_json` (also vendored)
//! prints and parses.
//!
//! Design notes:
//!
//! * Serialization goes through an intermediate [`Value`] tree rather than
//!   serde's visitor architecture — dramatically simpler, and the workspace
//!   only ever serializes result-sized payloads, never hot-path data.
//! * Maps preserve insertion order (fields serialize in declaration order),
//!   so output is deterministic byte-for-byte — a property the repo's
//!   determinism oracle relies on.
//! * The derive macros follow serde's conventions: structs are maps,
//!   newtype structs are transparent, unit enum variants are strings, and
//!   data-carrying variants are externally tagged (`{"Variant": ...}`).

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every [`Serialize`] impl produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// Looks up `key` if this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a required object field (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] when `key` is absent.
pub fn field<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
}

/// Splits an externally-tagged enum value `{"Variant": inner}` into
/// `(tag, inner)` (derive-macro helper).
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    match v.as_map() {
        Some([(tag, inner)]) => Some((tag.as_str(), inner)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and common containers.
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => {
                        i64::try_from(u).map_err(|_| DeError::custom("integer out of range"))?
                    }
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::custom("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` has no input buffer to borrow
    /// from, so the string is interned by leaking. Only result-sized
    /// payloads (violation/constraint names) ever take this path.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::custom("expected array"))?;
                if s.len() != $len {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u64> = Deserialize::from_value(&vec![1u64, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn map_get_and_variant() {
        let v = Value::Map(vec![("tag".into(), Value::UInt(1))]);
        assert_eq!(v.get("tag"), Some(&Value::UInt(1)));
        let (t, inner) = variant(&v).unwrap();
        assert_eq!(t, "tag");
        assert_eq!(inner, &Value::UInt(1));
    }
}
