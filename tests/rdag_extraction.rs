//! Cross-crate test: extract the original rDAG (§4.1) of a workload from
//! the real memory controller's request log and check it reflects the
//! workload's structure.

use dagguise_repro::prelude::*;
use dg_cache::SetAssocCache;
use dg_cpu::{Core, DagCore, DagWorkload};
use dg_mem::{MemoryController, MemorySubsystem, SchedPolicy};
use dg_rdag::extract::{extract_rdag, summarize, ObservedRequest};

/// Runs a DAG workload against the controller and logs every transaction's
/// arrival/completion.
fn observe(workload: DagWorkload) -> Vec<ObservedRequest> {
    let mut cfg = SystemConfig::two_core();
    cfg.row_policy = dg_sim::config::RowPolicy::Closed;
    let mut core = DagCore::new(DomainId(0), workload, &cfg);
    let mut l3 = SetAssocCache::new(cfg.cache.l3_per_core, "L3");
    let mut mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
    let mapper = *mc.mapper();
    let mut log = Vec::new();
    for now in 0..10_000_000u64 {
        for resp in mc.tick(now) {
            log.push(ObservedRequest {
                arrival: resp.arrived_at,
                completion: resp.completed_at,
                bank: mapper.decode(resp.addr).bank,
                req_type: resp.req_type,
            });
            core.on_response(&resp, now);
        }
        core.tick(now, &mut l3, &mut mc);
        if core.finished() {
            return log;
        }
    }
    panic!("workload did not finish");
}

#[test]
fn serial_workload_extracts_as_chain() {
    let log = observe(DagWorkload::chain(10, 120, 64));
    let g = extract_rdag(&log);
    g.validate().expect("acyclic");
    let s = summarize(&g);
    assert_eq!(s.requests, 10);
    assert_eq!(s.roots, 1, "a chain has one root");
    // The inferred think time matches the workload's gap.
    assert!(
        (s.mean_weight - 120.0).abs() < 2.0,
        "mean weight {} ≈ 120",
        s.mean_weight
    );
}

#[test]
fn parallel_workload_extracts_with_many_roots() {
    let workload = DagWorkload {
        reqs: (0..8)
            .map(|i| dg_cpu::DagReq {
                addr: i * 64,
                is_write: false,
                deps: vec![],
                gap: 0,
                instrs: 1,
            })
            .collect(),
    };
    let log = observe(workload);
    let g = extract_rdag(&log);
    let s = summarize(&g);
    assert_eq!(s.requests, 8);
    // All eight are in flight together; the conservative extractor infers
    // no dependencies among simultaneously-issued requests.
    assert!(
        s.roots >= 4,
        "parallel issue must surface: {} roots",
        s.roots
    );
}

#[test]
fn extraction_round_trip_preserves_banks() {
    let log = observe(DagWorkload::chain(6, 50, 64 * 3));
    let g = extract_rdag(&log);
    let banks: Vec<u32> = g.vertex_ids().map(|v| g.vertex(v).bank).collect();
    assert_eq!(banks.len(), 6);
    assert!(banks.iter().all(|&b| b < 8));
}
