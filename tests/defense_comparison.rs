//! Cross-defense performance comparisons: the orderings the paper's
//! evaluation claims, checked on small workloads.

use dagguise_repro::prelude::*;
use dg_system::run_colocation;

fn stream(n: u64, base: u64, gap: u64) -> MemTrace {
    let mut t = MemTrace::new();
    for i in 0..n {
        t.load(base + (i % 8192) * 64, gap);
    }
    t
}

fn sparse(n: u64, base: u64) -> MemTrace {
    let mut t = MemTrace::new();
    for i in 0..n {
        t.load(base + (i % 4096) * 64 * 131, 400);
    }
    t
}

const BUDGET: u64 = 2_000_000_000;

#[test]
fn dagguise_frees_unused_victim_bandwidth_fs_does_not() {
    // A sparse victim + a hungry co-runner: under FS-BTA half the slots
    // are reserved for the near-idle victim; under DAGguise the rDAG
    // yields and the co-runner runs faster.
    let cfg = SystemConfig::two_core();
    let victim = sparse(150, 0);
    let co = stream(4_000, 1 << 30, 10);

    let fs = run_colocation(
        &cfg,
        vec![victim.clone(), co.clone()],
        MemoryKind::FsBta,
        BUDGET,
    )
    .expect("fs run");
    let dag = run_colocation(
        &cfg,
        vec![victim, co],
        MemoryKind::Dagguise {
            protected: vec![Some(RdagTemplate::new(2, 200, 0.1)), None],
        },
        BUDGET,
    )
    .expect("dagguise run");

    assert!(
        dag.cores[1].ipc > fs.cores[1].ipc,
        "co-runner must do better under DAGguise: {} vs {}",
        dag.cores[1].ipc,
        fs.cores[1].ipc
    );
}

#[test]
fn fixed_service_non_interference_end_to_end() {
    // The victim's completion time under FS-BTA must not depend on the
    // co-runner's load at all.
    let cfg = SystemConfig::two_core();
    let victim = stream(400, 0, 30);

    let quiet = run_colocation(
        &cfg,
        vec![victim.clone(), sparse(10, 1 << 30)],
        MemoryKind::FsBta,
        BUDGET,
    )
    .expect("quiet run");
    let noisy = run_colocation(
        &cfg,
        vec![victim, stream(6_000, 1 << 30, 5)],
        MemoryKind::FsBta,
        BUDGET,
    )
    .expect("noisy run");

    assert_eq!(
        quiet.cores[0].cycles, noisy.cores[0].cycles,
        "FS-BTA victim timing must be exactly load-independent"
    );
}

#[test]
fn temporal_partitioning_has_worse_latency_than_fixed_service() {
    // TP rotates whole periods: a victim request arriving in a foreign
    // period waits up to a full rotation. Dependent traffic phase-locks to
    // the rotation (so *mean* latency can look fine), but the unlucky
    // requests pay the full period — the rotation penalty lives in the
    // latency tail (§8: TP "performs worse than FS").
    use dagguise_repro::prelude::*;
    use dg_sim::types::DomainId as D;

    let cfg = SystemConfig::two_core();
    let p99_latency = |kind: MemoryKind| {
        let mut sys = SystemBuilder::new(cfg.clone())
            .trace_core(sparse(300, 0))
            .trace_core(sparse(300, 1 << 30))
            .memory(kind)
            .build();
        sys.run_until_finished(BUDGET).expect("finishes");
        sys.memory()
            .stats()
            .domain(D(0))
            .latency
            .percentile(99.0)
            .expect("victim issued requests")
    };

    let fs = p99_latency(MemoryKind::FixedService);
    let tp = p99_latency(MemoryKind::TemporalPartition {
        slots_per_period: 64,
    });
    assert!(
        tp > fs * 3,
        "TP p99 latency ({tp}) must be far worse than FS ({fs})"
    );
}

#[test]
fn closed_row_policy_costs_throughput() {
    // The security tax of hiding row-buffer state: a row-local stream is
    // slower under the closed-row policy DAGguise requires.
    let cfg_open = SystemConfig::two_core();
    let mut t = MemTrace::new();
    for i in 0..600u64 {
        t.load((i % 128) * 64, 5); // heavy row locality
    }
    let open =
        run_colocation(&cfg_open, vec![t.clone()], MemoryKind::Insecure, BUDGET).expect("open run");
    // DAGguise with a dense rDAG (so shaping is not the bottleneck).
    let closed = run_colocation(
        &cfg_open,
        vec![t],
        MemoryKind::Dagguise {
            protected: vec![Some(RdagTemplate::new(8, 0, 0.05))],
        },
        BUDGET,
    )
    .expect("closed run");
    assert!(
        closed.cores[0].ipc < open.cores[0].ipc,
        "closed-row shaping cannot beat open-row row hits: {} vs {}",
        closed.cores[0].ipc,
        open.cores[0].ipc
    );
}

#[test]
fn every_defense_preserves_all_victim_requests() {
    // Conservation: no memory path may lose transactions.
    let cfg = SystemConfig::two_core();
    let kinds: Vec<MemoryKind> = vec![
        MemoryKind::Insecure,
        MemoryKind::FixedService,
        MemoryKind::FsBta,
        MemoryKind::TemporalPartition {
            slots_per_period: 16,
        },
        MemoryKind::Dagguise {
            protected: vec![Some(RdagTemplate::new(4, 50, 0.25)), None],
        },
        MemoryKind::Camouflage {
            protected: vec![
                Some(dg_defenses::IntervalDistribution::new(vec![100, 200])),
                None,
            ],
        },
    ];
    for kind in kinds {
        let victim = stream(200, 0, 40);
        let co = stream(200, 1 << 30, 40);
        let r = run_colocation(&cfg, vec![victim, co], kind.clone(), BUDGET)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(r.cores[0].finished, "{kind:?}: victim must drain");
        assert!(r.cores[0].instructions > 0);
    }
}
