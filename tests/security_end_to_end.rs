//! End-to-end security tests: the receiver's observations must be
//! bit-identical across victim secrets under DAGguise (and Fixed
//! Service), and must differ under the insecure baseline — the full-stack
//! analogue of the §5 property, with the real DRAM timing model, caches
//! and workloads in the loop.

use dagguise::{Shaper, ShaperConfig};
use dagguise_repro::prelude::*;
use dg_attacks::ProbeCore;
use dg_cache::SetAssocCache;
use dg_cpu::{Core, TraceCore};
use dg_defenses::{FixedService, FsConfig};
use dg_mem::{
    DomainShaper, MemoryController, MemorySubsystem, PassThrough, SchedPolicy, ShapedMemory,
};
use dg_sim::config::RowPolicy;
use dg_workloads::{DnaWorkload, DocDistWorkload};

enum Defense {
    Insecure,
    Dagguise(RdagTemplate),
    FsBta,
}

/// Runs `victim_trace` on core 0 and a probe attacker on core 1; returns
/// the attacker's ordered latency observations.
fn attacker_view(victim_trace: MemTrace, defense: &Defense, probes: usize) -> Vec<u64> {
    let mut cfg = SystemConfig::two_core();
    if !matches!(defense, Defense::Insecure) {
        cfg.row_policy = RowPolicy::Closed;
    }
    let mut victim = TraceCore::new(DomainId(0), victim_trace, &cfg);
    let mut attacker = ProbeCore::new(DomainId(1), 0x40, 150, probes);
    let mut l3 = SetAssocCache::new(cfg.cache.l3_per_core, "L3");

    let mut mem: Box<dyn MemorySubsystem> = match defense {
        Defense::Insecure => Box::new(MemoryController::new(&cfg, SchedPolicy::FrFcfs)),
        Defense::FsBta => Box::new(FixedService::new(&cfg, FsConfig::fs_bta(&cfg, 2))),
        Defense::Dagguise(template) => {
            let mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
            let shapers: Vec<Box<dyn DomainShaper>> = vec![
                Box::new(Shaper::new(ShaperConfig::from_system(
                    DomainId(0),
                    *template,
                    &cfg,
                ))),
                Box::new(PassThrough::new(DomainId(1), 32)),
            ];
            Box::new(ShapedMemory::new(mc, shapers))
        }
    };

    let mut now = 0u64;
    while !attacker.finished() {
        assert!(now < 500_000_000, "attacker never finished");
        for resp in mem.tick(now) {
            match resp.domain {
                DomainId(0) => victim.on_response(&resp, now),
                DomainId(1) => attacker.on_response(&resp, now),
                _ => {}
            }
        }
        victim.tick(now, &mut l3, mem.as_mut());
        attacker.tick(now, &mut l3, mem.as_mut());
        now += 1;
    }
    attacker.latencies()
}

fn docdist(secret: u64) -> MemTrace {
    DocDistWorkload::small(secret).record().0
}

fn dna(secret: u64) -> MemTrace {
    DnaWorkload::small(secret).record().0
}

#[test]
fn insecure_baseline_leaks_docdist_secret() {
    let a = attacker_view(docdist(0), &Defense::Insecure, 150);
    let b = attacker_view(docdist(1), &Defense::Insecure, 150);
    assert_ne!(a, b, "contention must expose the secret on the baseline");
}

#[test]
fn dagguise_hides_docdist_secret_bit_exactly() {
    let d = Defense::Dagguise(RdagTemplate::new(4, 50, 0.25));
    let a = attacker_view(docdist(0), &d, 150);
    let b = attacker_view(docdist(1), &d, 150);
    assert_eq!(a, b, "attacker must observe identical latencies");
    assert!(!a.is_empty());
}

#[test]
fn dagguise_hides_dna_secret_bit_exactly() {
    let d = Defense::Dagguise(RdagTemplate::new(8, 50, 0.125));
    let a = attacker_view(dna(3), &d, 150);
    let b = attacker_view(dna(4), &d, 150);
    assert_eq!(a, b);
}

#[test]
fn dagguise_hides_victim_presence_entirely() {
    // Not just which secret: whether the victim runs at all is invisible.
    let d = Defense::Dagguise(RdagTemplate::new(4, 50, 0.25));
    let busy = attacker_view(docdist(0), &d, 150);
    let idle = attacker_view(MemTrace::new(), &d, 150);
    assert_eq!(busy, idle, "an idle victim looks exactly like a busy one");
}

#[test]
fn fs_bta_hides_docdist_secret_bit_exactly() {
    let a = attacker_view(docdist(0), &Defense::FsBta, 150);
    let b = attacker_view(docdist(1), &Defense::FsBta, 150);
    assert_eq!(a, b);
}

#[test]
fn dagguise_secrecy_holds_across_defense_rdag_choices() {
    // Any secret-independent defense rDAG is secure (§4.3) — sweep a few.
    for template in [
        RdagTemplate::new(1, 200, 0.5),
        RdagTemplate::new(2, 100, 0.25),
        RdagTemplate::new(8, 25, 0.1),
    ] {
        let d = Defense::Dagguise(template);
        let a = attacker_view(docdist(0), &d, 80);
        let b = attacker_view(docdist(1), &d, 80);
        assert_eq!(a, b, "leak under template {template:?}");
    }
}
