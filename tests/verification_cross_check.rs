//! Cross-checks between the §5 verification model and the full simulator:
//! the abstract model's guarantees and failure modes must mirror the real
//! shaper's.

use dg_verif::{check_base, check_unwinding, ModelConfig, ShaperKind, StateScope};

#[test]
fn model_base_step_passes_for_dagguise_up_to_k5() {
    let cfg = ModelConfig::paper(ShaperKind::Dagguise);
    for k in 1..=5 {
        assert!(check_base(&cfg, k).is_ok(), "base step failed at k={k}");
    }
}

#[test]
fn model_unwinding_passes_for_dagguise() {
    assert!(check_unwinding(&ModelConfig::paper(ShaperKind::Dagguise)).is_ok());
}

#[test]
fn model_catches_leaky_variant_both_ways() {
    let leaky = ModelConfig::paper(ShaperKind::LeakyForwarding);
    // The unwinding condition fails...
    assert!(check_unwinding(&leaky).is_err());
    // ...and bounded model checking finds a concrete attack.
    let found = (1..=6).any(|k| check_base(&leaky, k).is_err());
    assert!(found, "BMC must find the leak within 6 cycles");
}

#[test]
fn model_induction_with_strengthening_holds() {
    let cfg = ModelConfig::tiny(ShaperKind::Dagguise);
    for k in 1..=2 {
        assert!(
            dg_verif::check_induction(&cfg, k, StateScope::ProjectionEqual).is_ok(),
            "strengthened induction failed at k={k}"
        );
    }
}

#[test]
fn model_counterexample_replays_concretely() {
    // Extract a counterexample against the leaky shaper and replay it
    // through the model step function to confirm it is genuine (the same
    // discipline the Rosette artifact applies to its sat results).
    let leaky = ModelConfig::paper(ShaperKind::LeakyForwarding);
    let cex = (1..=6)
        .find_map(|k| check_base(&leaky, k).err())
        .expect("counterexample exists");
    let a = dg_verif::model::run(&leaky, cex.state_a, &cex.tx_a, &cex.rx);
    let b = dg_verif::model::run(&leaky, cex.state_b, &cex.tx_b, &cex.rx);
    assert_eq!(a[..cex.diverge_at], b[..cex.diverge_at], "prefix agrees");
    assert_ne!(a[cex.diverge_at], b[cex.diverge_at], "divergence is real");
}
