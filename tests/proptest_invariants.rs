//! Property-based tests over the core data structures and the security
//! invariant, using proptest.

use proptest::prelude::*;

use dagguise::{Shaper, ShaperConfig};
use dagguise_repro::prelude::*;
use dg_dram::{AddressMapper, MapScheme, PhysLoc};
use dg_mem::{DomainShaper, MemoryController, MemorySubsystem, SchedPolicy};
use dg_rdag::graph::{Rdag, Vertex};
use dg_rdag::template::RdagTemplate;
use dg_sim::clock::ClockRatio;
use dg_sim::config::RowPolicy;
use dg_sim::types::{ReqId, ReqKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Address mapping is a bijection on line-aligned addresses.
    #[test]
    fn address_mapping_round_trips(
        addr in (0u64..1u64 << 32).prop_map(|a| a & !63),
        interleaved in any::<bool>(),
    ) {
        let scheme = if interleaved { MapScheme::BankInterleaved } else { MapScheme::RowBankCol };
        let m = AddressMapper::new(scheme, 8, 8192, 64);
        let loc = m.decode(addr);
        prop_assert_eq!(m.encode(loc), addr);
        prop_assert!(loc.bank < 8);
        prop_assert!(loc.col < 128);
    }

    /// Fake-address generation always lands in the prescribed bank.
    #[test]
    fn encode_respects_bank(bank in 0u32..8, row in 0u64..65536, col in 0u64..128) {
        let m = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        let addr = m.encode(PhysLoc { bank, row, col });
        prop_assert_eq!(m.decode(addr).bank, bank);
    }

    /// Random DAGs built bottom-up (edges only to later vertices) always
    /// validate, and the ideal schedule respects every edge.
    #[test]
    fn random_dag_schedules_respect_dependencies(
        n in 2usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30, 1u64..500), 1..60),
        service in 1u64..200,
    ) {
        let mut g = Rdag::new();
        for i in 0..n {
            g.add_vertex(Vertex { bank: (i % 8) as u32, req_type: ReqType::Read });
        }
        let mut used = Vec::new();
        for (a, b, w) in edges {
            let (a, b) = (a % n, b % n);
            if a < b {
                g.add_edge(
                    dg_rdag::graph::VertexId(a as u32),
                    dg_rdag::graph::VertexId(b as u32),
                    w,
                ).expect("forward edge is valid");
                used.push((a, b, w));
            }
        }
        prop_assert!(g.validate().is_ok());
        let sched = g.ideal_schedule(service).expect("acyclic");
        for (a, b, w) in used {
            prop_assert!(sched[b] >= sched[a] + service + w);
        }
    }

    /// The shaper's emission schedule (times, banks, types) is a pure
    /// function of the defense rDAG and response timing — independent of
    /// whatever the victim enqueues.
    #[test]
    fn shaper_schedule_independent_of_victim(
        seqs in prop::sample::select(vec![1u32, 2, 4, 8]),
        weight in prop::sample::select(vec![0u64, 25, 100, 250]),
        write_ratio in prop::sample::select(vec![0.0f64, 0.1, 0.5]),
        latency in 20u64..200,
        victim_addrs in prop::collection::vec(0u64..1u64 << 24, 0..40),
        victim_period in 1u64..60,
    ) {
        let mut cfg = SystemConfig::two_core();
        cfg.clock_ratio = ClockRatio::new(1);
        let template = RdagTemplate::new(seqs, weight, write_ratio);
        let horizon = 4_000u64;

        let run = |inject: bool| -> Vec<(u64, u32, ReqType)> {
            let mut shaper = Shaper::new(ShaperConfig::from_system(DomainId(0), template, &cfg));
            let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
            let mut schedule = Vec::new();
            let mut in_flight: Vec<(u64, MemRequest)> = Vec::new();
            let mut k = 0u64;
            for now in 0..horizon {
                let mut i = 0;
                while i < in_flight.len() {
                    if in_flight[i].0 <= now {
                        let (when, req) = in_flight.swap_remove(i);
                        let resp = MemResponse {
                            id: req.id,
                            domain: req.domain,
                            addr: req.addr,
                            req_type: req.req_type,
                            kind: req.kind,
                            arrived_at: when - latency,
                            completed_at: when,
                        };
                        shaper.on_response(&resp, now);
                    } else {
                        i += 1;
                    }
                }
                if inject && now % victim_period == 0 && (k as usize) < victim_addrs.len() {
                    let req = MemRequest::read(DomainId(0), victim_addrs[k as usize] & !63, now)
                        .with_id(ReqId::compose(DomainId(0), k + 1));
                    let _ = shaper.try_accept(req, now);
                    k += 1;
                }
                for req in shaper.tick(now, usize::MAX) {
                    schedule.push((now, mapper.decode(req.addr).bank, req.req_type));
                    in_flight.push((now + latency, req));
                }
            }
            schedule
        };

        prop_assert_eq!(run(false), run(true));
    }

    /// The memory controller conserves transactions under random traffic:
    /// everything accepted eventually completes, exactly once.
    #[test]
    fn controller_conserves_random_traffic(
        seed in any::<u64>(),
        closed in any::<bool>(),
        fcfs in any::<bool>(),
        load_period in 1u64..40,
    ) {
        let mut cfg = SystemConfig::two_core();
        cfg.clock_ratio = ClockRatio::new(1);
        cfg.row_policy = if closed { RowPolicy::Closed } else { RowPolicy::Open };
        let policy = if fcfs { SchedPolicy::Fcfs } else { SchedPolicy::FrFcfs };
        let mut mc = MemoryController::new(&cfg, policy);
        let mut rng = dg_sim::rng::DetRng::new(seed);
        let mut sent = std::collections::HashSet::new();
        let mut done = std::collections::HashSet::new();
        let mut seq = 0u64;
        let horizon = 40_000u64;
        for now in 0..horizon {
            if now % load_period == 0 && mc.free_space() > 0 && seq < 400 {
                seq += 1;
                let addr = (rng.next_u64() % (1 << 26)) & !63;
                let req = if rng.next_bool(0.3) {
                    MemRequest::write(DomainId(0), addr, now)
                } else {
                    MemRequest::read(DomainId(0), addr, now)
                }
                .with_id(ReqId(seq));
                if mc.try_send(req, now).is_ok() {
                    sent.insert(seq);
                }
            }
            for resp in mc.tick(now) {
                prop_assert!(done.insert(resp.id.0), "duplicate completion {}", resp.id.0);
                prop_assert!(resp.completed_at <= now);
                prop_assert!(resp.latency() > 0);
            }
        }
        // Drain.
        for now in horizon..horizon + 100_000 {
            for resp in mc.tick(now) {
                prop_assert!(done.insert(resp.id.0));
            }
            if done.len() == sent.len() {
                break;
            }
        }
        prop_assert_eq!(done.len(), sent.len(), "every accepted request completes once");
    }

    /// Fake requests never reach cores: whatever responses escape a shaped
    /// memory path are real and belong to a real sender.
    #[test]
    fn fakes_never_escape_to_cores(seed in any::<u64>()) {
        use dg_mem::{PassThrough, ShapedMemory};
        let cfg = SystemConfig::two_core();
        let mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
        let shapers: Vec<Box<dyn DomainShaper>> = vec![
            Box::new(Shaper::new(ShaperConfig::from_system(
                DomainId(0),
                RdagTemplate::new(4, 25, 0.2),
                &cfg,
            ))),
            Box::new(PassThrough::new(DomainId(1), 16)),
        ];
        let mut mem = ShapedMemory::new(mc, shapers);
        let mut rng = dg_sim::rng::DetRng::new(seed);
        let mut seq = 0u64;
        for now in 0..30_000u64 {
            if rng.next_bool(0.05) {
                seq += 1;
                let domain = DomainId((seq % 2) as u16);
                let req = MemRequest::read(domain, (rng.next_u64() % (1 << 24)) & !63, now)
                    .with_id(ReqId::compose(domain, seq));
                let _ = mem.try_send(req, now);
            }
            for resp in mem.tick(now) {
                prop_assert_eq!(resp.kind, ReqKind::Real, "a fake escaped");
            }
        }
    }
}
