//! End-to-end attack demo: a probe attacker tries to distinguish two
//! victim secrets through memory-controller contention, against the
//! insecure baseline (succeeds), Camouflage (succeeds), DAGguise and
//! Fixed Service (fails bit-exactly).
//!
//! Run with: `cargo run --release --example attack_demo`

use dagguise::{Shaper, ShaperConfig};
use dagguise_repro::prelude::*;
use dg_attacks::{distinguishable, LeakVerdict, ProbeCore};
use dg_cache::SetAssocCache;
use dg_cpu::TraceCore;
use dg_defenses::{CamouflageShaper, FixedService, FsConfig, IntervalDistribution};
use dg_mem::{
    DomainShaper, MemoryController, MemorySubsystem, PassThrough, SchedPolicy, ShapedMemory,
};

#[derive(Clone, Copy)]
enum Defense {
    Insecure,
    Camouflage,
    Dagguise,
    FsBta,
}

/// Runs the DocDist victim (chosen secret) on core 0 and the probe
/// attacker on core 1; returns the attacker's ordered latency trace.
fn observe(secret: u64, defense: Defense) -> Vec<u64> {
    let mut cfg = SystemConfig::two_core();
    if !matches!(defense, Defense::Insecure) {
        cfg.row_policy = dg_sim::config::RowPolicy::Closed;
    }
    let victim_trace = dg_workloads::DocDistWorkload::small(secret).record().0;
    let mut victim = TraceCore::new(DomainId(0), victim_trace, &cfg);
    let mut attacker = ProbeCore::new(DomainId(1), 0x40, 120, 300);
    let mut l3 = SetAssocCache::new(cfg.cache.l3_per_core, "L3");

    let mut mem: Box<dyn MemorySubsystem> = match defense {
        Defense::Insecure => Box::new(MemoryController::new(&cfg, SchedPolicy::FrFcfs)),
        Defense::FsBta => {
            let fs = FsConfig::fs_bta(&cfg, 2);
            Box::new(FixedService::new(&cfg, fs))
        }
        Defense::Camouflage => {
            let mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
            let shapers: Vec<Box<dyn DomainShaper>> = vec![
                Box::new(CamouflageShaper::new(
                    DomainId(0),
                    IntervalDistribution::new(vec![150, 300]),
                    &cfg,
                    42,
                )),
                Box::new(PassThrough::new(DomainId(1), 32)),
            ];
            Box::new(ShapedMemory::new(mc, shapers))
        }
        Defense::Dagguise => {
            let mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
            let shapers: Vec<Box<dyn DomainShaper>> = vec![
                Box::new(Shaper::new(ShaperConfig::from_system(
                    DomainId(0),
                    RdagTemplate::new(4, 50, 0.25),
                    &cfg,
                ))),
                Box::new(PassThrough::new(DomainId(1), 32)),
            ];
            Box::new(ShapedMemory::new(mc, shapers))
        }
    };

    use dg_cpu::Core as _;
    let mut now = 0u64;
    while !attacker.finished() && now < 2_000_000_000 {
        for resp in mem.tick(now) {
            match resp.domain {
                DomainId(0) => victim.on_response(&resp, now),
                DomainId(1) => attacker.on_response(&resp, now),
                _ => {}
            }
        }
        victim.tick(now, &mut l3, mem.as_mut());
        attacker.tick(now, &mut l3, mem.as_mut());
        now += 1;
    }
    attacker.latencies()
}

fn verdict(defense: Defense, name: &str) {
    let a = observe(0, defense);
    let b = observe(1, defense);
    match distinguishable(&a, &b) {
        LeakVerdict::Indistinguishable => {
            println!("{name:>10}: attacker latency traces IDENTICAL across secrets — no leak")
        }
        LeakVerdict::Distinguishable { mean_abs_diff } => println!(
            "{name:>10}: attacker latency traces DIFFER (mean |Δ| = {mean_abs_diff:.2} cycles) — secret leaks"
        ),
    }
}

fn main() {
    println!("Attacker: fixed-pattern probe to one bank, 300 probes, 120-cycle think time.");
    println!("Victim:   DocDist computing over a private document (secret 0 vs secret 1).\n");

    verdict(Defense::Insecure, "insecure");
    verdict(Defense::Camouflage, "camouflage");
    verdict(Defense::Dagguise, "dagguise");
    verdict(Defense::FsBta, "fs-bta");

    println!(
        "\nDAGguise and Fixed Service close the channel; the insecure \
         baseline and Camouflage leak the secret through the attacker's \
         own request latencies."
    );
}
