//! Quickstart: build a defense rDAG, protect a victim with the DAGguise
//! shaper, and run it against the simulated memory system.
//!
//! Run with: `cargo run --release --example quickstart`

use dagguise_repro::prelude::*;

fn main() {
    // 1. A system configuration — Table 2 of the paper: two 2.4 GHz cores,
    //    three cache levels, single-channel 8-bank DDR3-1600.
    let cfg = SystemConfig::two_core();

    // 2. A defense rDAG from the §4.3 template family: four parallel
    //    sequences of strictly dependent requests, each alternating
    //    between two banks, 100 DRAM cycles between a completion and the
    //    next arrival, 1 write vertex per 1000.
    let defense = RdagTemplate::new(4, 100, 0.001);
    println!(
        "defense rDAG: {} sequences x weight {} (density {:.4} req/DRAM-cycle)",
        defense.sequences,
        defense.weight,
        defense.density(26)
    );

    // 3. A victim workload: a pointer-chase-ish trace whose addresses we
    //    pretend are secret-dependent.
    let mut victim = MemTrace::new();
    for i in 0..2_000u64 {
        victim.load((i * 64 * 131) % (16 << 20), 40);
    }

    // 4. A co-running (unprotected) streaming application.
    let mut co = MemTrace::new();
    for i in 0..8_000u64 {
        co.load((1 << 30) + (i % 8192) * 64, 12);
    }

    // 5. Assemble: victim on core 0 behind a DAGguise shaper, co-runner on
    //    core 1 untouched, sharing the memory controller.
    let mut system = SystemBuilder::new(cfg)
        .trace_core(victim)
        .trace_core(co)
        .memory(MemoryKind::Dagguise {
            protected: vec![Some(defense), None],
        })
        .build();

    // 6. Run to completion and report.
    let end = system
        .run_until_finished(2_000_000_000)
        .expect("run completes");
    println!("finished in {end} cycles");
    for i in 0..2 {
        println!(
            "core {i}: {} instructions, IPC {:.3}",
            system.cores()[i].instructions_retired(),
            system.ipc(i)
        );
    }
    let stats = system.memory().stats();
    let d0 = stats.domain(DomainId(0));
    println!(
        "victim domain: {} reads + {} writes forwarded, {} fake requests \
         covered its pattern",
        d0.reads, d0.writes, d0.fakes
    );
    println!(
        "memory latency seen by the victim: mean {:.0} cycles",
        d0.mean_latency().unwrap_or(0.0)
    );
}
