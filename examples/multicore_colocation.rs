//! Eight-core co-location (the §6.3 setting, scaled down): four protected
//! victims behind DAGguise shapers next to four unprotected SPEC-like
//! applications, compared against FS-BTA and the insecure baseline.
//!
//! Run with: `cargo run --release --example multicore_colocation`

use dagguise_repro::prelude::*;
use dg_system::run_colocation;
use dg_workloads::{DnaWorkload, DocDistWorkload, SpecPreset};

fn main() {
    let cfg = SystemConfig::eight_core();

    // Two DocDist and two DNA victims (distinct secrets), small scale.
    let doc = |secret| {
        DocDistWorkload {
            vocab: 32 * 1024,
            doc_words: 1_500,
            secret,
        }
        .record()
        .0
    };
    let dna = |secret| {
        DnaWorkload {
            genome_len: 8 * 1024,
            k: 10,
            buckets: 2048,
            read_len: 300,
            secret,
        }
        .record()
        .0
    };
    // Four instances of a moderately memory-bound SPEC-like co-runner.
    let spec = |slot: u64| {
        SpecPreset::by_name("wrf").expect("preset exists").generate(
            300_000,
            (10 + slot) << 32,
            99 + slot,
        )
    };

    let traces = || {
        vec![
            doc(0),
            doc(1),
            dna(0),
            dna(1),
            spec(0),
            spec(1),
            spec(2),
            spec(3),
        ]
    };
    let doc_def = RdagTemplate::new(4, 25, 0.25);
    let dna_def = RdagTemplate::new(8, 50, 0.125);
    let protection = vec![
        Some(doc_def),
        Some(doc_def),
        Some(dna_def),
        Some(dna_def),
        None,
        None,
        None,
        None,
    ];

    let insecure =
        run_colocation(&cfg, traces(), MemoryKind::Insecure, u64::MAX / 2).expect("insecure run");
    let fs = run_colocation(&cfg, traces(), MemoryKind::FsBta, u64::MAX / 2).expect("fs run");
    let dag = run_colocation(
        &cfg,
        traces(),
        MemoryKind::Dagguise {
            protected: protection,
        },
        u64::MAX / 2,
    )
    .expect("dagguise run");

    let names = [
        "DocDist#0",
        "DocDist#1",
        "DNA#0",
        "DNA#1",
        "wrf#0",
        "wrf#1",
        "wrf#2",
        "wrf#3",
    ];
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "core", "insecure IPC", "FS-BTA IPC", "DAGguise IPC", "FS norm", "DAG norm"
    );
    let mut fs_sum = 0.0;
    let mut dag_sum = 0.0;
    for (i, name) in names.iter().enumerate() {
        let fs_n = fs.cores[i].ipc / insecure.cores[i].ipc;
        let dag_n = dag.cores[i].ipc / insecure.cores[i].ipc;
        fs_sum += fs_n;
        dag_sum += dag_n;
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>10.3} {:>10.3}",
            name, insecure.cores[i].ipc, fs.cores[i].ipc, dag.cores[i].ipc, fs_n, dag_n
        );
    }
    println!(
        "\naverage normalized IPC: FS-BTA {:.3}, DAGguise {:.3} ({:+.1}% relative)",
        fs_sum / 8.0,
        dag_sum / 8.0,
        (dag_sum / fs_sum - 1.0) * 100.0
    );
    println!(
        "DAGguise scales: under FS-BTA each of the 8 domains is pinned to \
         1/8 of the slots; under DAGguise the four shapers and four \
         unprotected domains share bandwidth dynamically."
    );
}
