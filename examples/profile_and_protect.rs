//! The full DAGguise deployment workflow from §4.3: profile a victim
//! offline, pick a defense rDAG from the cost-effective bandwidth band,
//! and deploy it.
//!
//! Run with: `cargo run --release --example profile_and_protect`

use dagguise_repro::prelude::*;
use dg_system::profile::{baseline_alone, profile_victim, select_defense_rdag};
use dg_system::run_colocation;
use dg_workloads::DnaWorkload;

fn main() {
    let cfg = SystemConfig::two_core();

    // The application to protect: DNA read alignment over a private read.
    let victim = DnaWorkload {
        genome_len: 16 * 1024,
        k: 10,
        buckets: 4096,
        read_len: 600,
        secret: 7,
    }
    .record()
    .0;
    println!("victim: DNA matching, {} memory operations", victim.len());

    // Step 1 — baseline: the victim alone on the insecure system.
    let base = baseline_alone(&cfg, victim.clone(), u64::MAX / 2).expect("baseline run");
    println!("baseline IPC (insecure, alone): {base:.3}\n");

    // Step 2 — sweep a small template search space, victim alone under
    // each candidate defense rDAG (no knowledge of co-runners needed!).
    println!(
        "{:>10} {:>8} {:>10} {:>12}",
        "sequences", "weight", "norm. IPC", "alloc (GB/s)"
    );
    let mut points = Vec::new();
    for &seqs in &[1u32, 2, 4, 8] {
        for &weight in &[25u64, 100, 200] {
            let t = RdagTemplate::new(seqs, weight, 0.125);
            let p =
                profile_victim(&cfg, victim.clone(), t, base, u64::MAX / 2).expect("profile run");
            println!(
                "{seqs:>10} {weight:>8} {:>10.3} {:>12.2}",
                p.normalized_ipc, p.allocated_gbps
            );
            points.push(p);
        }
    }

    // Step 3 — select from the 2-4 GB/s cost-effective band (Figure 7c).
    let chosen = select_defense_rdag(&points, 2.0, 4.0);
    println!(
        "\nselected defense rDAG: {} sequences x weight {} ({:.2} GB/s, norm. IPC {:.3})",
        chosen.template.sequences,
        chosen.template.weight,
        chosen.allocated_gbps,
        chosen.normalized_ipc
    );

    // Step 4 — deploy: victim protected by the chosen rDAG next to an
    // unprotected co-runner.
    let mut co = MemTrace::new();
    for i in 0..20_000u64 {
        co.load((1 << 30) + (i % 16384) * 64, 10);
    }
    let r = run_colocation(
        &cfg,
        vec![victim, co],
        MemoryKind::Dagguise {
            protected: vec![Some(chosen.template), None],
        },
        u64::MAX / 2,
    )
    .expect("deployment run");
    println!(
        "\ndeployed: victim IPC {:.3}, co-runner IPC {:.3}, victim bandwidth {:.2} GB/s (incl. fakes)",
        r.cores[0].ipc, r.cores[1].ipc, r.bandwidth_gbps[0]
    );
    println!(
        "the co-runner was never profiled — the rDAG's versatility adapts \
         the bandwidth split at run time (§4.1)"
    );
}
