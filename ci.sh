#!/usr/bin/env bash
# Local CI: the gate every change must pass before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests ==="
cargo test -q --workspace

echo "=== format ==="
cargo fmt --all --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI passed."
