#!/usr/bin/env bash
# Local CI: the gate every change must pass before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests ==="
cargo test -q --workspace

echo "=== format ==="
cargo fmt --all --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== smoke sweep (dg-run: retry + resume + determinism) ==="
# Four tiny jobs; examples/smoke.toml under-budgets one of them so the
# first attempt hits SimError::Deadline and the escalated retry succeeds.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
DG_RUN=target/release/dg-run
"$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 --escalation 1000 \
  --journal "$SMOKE_DIR/smoke.jsonl" --out "$SMOKE_DIR/smoke.json"
grep -q '"attempts": 2' "$SMOKE_DIR/smoke.json" \
  || { echo "smoke: expected the under-budgeted job to need a retry"; exit 1; }
# Resuming from the journal skips everything and reproduces the report
# byte-for-byte at a different worker count.
"$DG_RUN" examples/smoke.toml --quiet --jobs 1 --retries 2 --escalation 1000 \
  --resume "$SMOKE_DIR/smoke.jsonl" --out "$SMOKE_DIR/smoke_resumed.json"
cmp "$SMOKE_DIR/smoke.json" "$SMOKE_DIR/smoke_resumed.json" \
  || { echo "smoke: resumed report differs from the original"; exit 1; }

echo "CI passed."
