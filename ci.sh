#!/usr/bin/env bash
# Local CI: the gate every change must pass before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== tests ==="
cargo test -q --workspace

echo "=== format ==="
cargo fmt --all --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== smoke sweep (dg-run: retry + resume + determinism) ==="
# Four tiny jobs; examples/smoke.toml under-budgets one of them so the
# first attempt hits SimError::Deadline and the escalated retry succeeds.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
DG_RUN=target/release/dg-run
"$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 --escalation 1000 \
  --journal "$SMOKE_DIR/smoke.jsonl" --out "$SMOKE_DIR/smoke.json" \
  --profile "$SMOKE_DIR/profile.json"
grep -q '"attempts": 2' "$SMOKE_DIR/smoke.json" \
  || { echo "smoke: expected the under-budgeted job to need a retry"; exit 1; }

# Latency gate: the merged report's per-defense leaderboard must carry a
# finite, nonzero p99 for every defense in the grid.
awk '/^  "latency": \[/ {f=1} /^  "jobs": \[/ {f=0}
  f && $1 == "\"p99\":" {gsub(/,/, "", $2); n++; if ($2 !~ /^[0-9]+$/ || $2 + 0 <= 0) bad=$2}
  END {
    if (n != 2) { print "latency: expected p99 for 2 defenses, saw " n; exit 1 }
    if (bad != "") { print "latency: non-finite or zero p99: " bad; exit 1 }
    print "latency: p99 present and finite for " n " defenses"
  }' "$SMOKE_DIR/smoke.json"

# Profiler gate: every profiled job (and each per-defense merge) must
# attribute >= 90% of its wall time to known spans — anything less means
# a hot phase lost its instrumentation.
awk '$1 == "\"coverage\":" {gsub(/,/, "", $2); n++; if ($2 + 0 < 0.9) {bad=1; v=$2}}
  END {
    if (n == 0) { print "profile: no coverage entries recorded"; exit 1 }
    if (bad) { print "profile: only " v " of wall time attributed (need >= 0.9)"; exit 1 }
    print "profile: " n " attribution trees, all >= 90% span coverage"
  }' "$SMOKE_DIR/profile.json"
test -s "$SMOKE_DIR/profile.folded" \
  || { echo "profile: collapsed-stack artifact missing or empty"; exit 1; }
# Resuming from the journal skips everything and reproduces the report
# byte-for-byte at a different worker count.
"$DG_RUN" examples/smoke.toml --quiet --jobs 1 --retries 2 --escalation 1000 \
  --resume "$SMOKE_DIR/smoke.jsonl" --out "$SMOKE_DIR/smoke_resumed.json"
cmp "$SMOKE_DIR/smoke.json" "$SMOKE_DIR/smoke_resumed.json" \
  || { echo "smoke: resumed report differs from the original"; exit 1; }

echo "=== live telemetry (dg-run --live --events: no observer effect) ==="
# The same sweep with the dashboard, the events stream, and an (ample)
# stall watchdog all enabled must reproduce the report byte-for-byte:
# monitoring is strictly observational.
"$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 --escalation 1000 \
  --live --events "$SMOKE_DIR/events.jsonl" --stall-s 120 \
  --out "$SMOKE_DIR/smoke_live.json"
cmp "$SMOKE_DIR/smoke.json" "$SMOKE_DIR/smoke_live.json" \
  || { echo "live: monitored report differs from the bare run"; exit 1; }
grep -q '"seq"' "$SMOKE_DIR/events.jsonl" \
  || { echo "live: events stream missing snapshots"; exit 1; }
echo "live: monitored report byte-identical; events stream populated"

echo "=== stall watchdog smoke (dg-run --stall-s: stalled job aborted) ==="
# DG_MON_TEST_STALL makes the matching job hold its simulated clock at
# zero until a supervisor cancels it. The watchdog must diagnose the
# stall within its budget, the sweep must exit with the documented stall
# class (4, not a generic failure), and the other three jobs must still
# succeed.
rc=0
DG_MON_TEST_STALL='+xz/dagguise' timeout 120 \
  "$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 --escalation 1000 \
  --stall-s 2 --out "$SMOKE_DIR/stalled.json" || rc=$?
[ "$rc" -eq 4 ] \
  || { echo "watchdog: expected exit class 4 (stall), got $rc"; exit 1; }
grep -q 'stall watchdog' "$SMOKE_DIR/stalled.json" \
  || { echo "watchdog: stall diagnosis missing from the report"; exit 1; }
ok_jobs=$(grep -c '"error": null' "$SMOKE_DIR/stalled.json")
[ "$ok_jobs" -eq 3 ] \
  || { echo "watchdog: expected 3 surviving jobs, saw $ok_jobs"; exit 1; }
# The stalled job must land in the default quarantine with a diagnostics
# bundle naming the stall.
stall_bundle=$(ls "$SMOKE_DIR"/quarantine/smoke/*.json 2>/dev/null | head -1)
[ -n "$stall_bundle" ] && grep -q 'stall watchdog' "$stall_bundle" \
  || { echo "watchdog: quarantine bundle missing or without diagnosis"; exit 1; }
echo "watchdog: stalled job aborted (exit 4), quarantined, 3 healthy jobs finished"

echo "=== chaos gate (dg-fault: ENOSPC degradation + healthy resume) ==="
# A planned disk-full fault lands mid-sweep on the journal stream. The
# sweep must still finish every job and emit the canonical report, flip
# the journal to degraded in-memory mode (exit class 3, infra), and a
# later resume on a healthy disk must converge from the surviving
# journal prefix to the byte-identical report with exit 0.
full_journal=$(wc -c < "$SMOKE_DIR/smoke.jsonl")
cut=$((full_journal / 2))
rc=0
"$DG_RUN" examples/smoke.toml --quiet --jobs 1 --retries 2 --escalation 1000 \
  --journal "$SMOKE_DIR/chaos.jsonl" --fault-io "journal@${cut}:enospc" \
  --out "$SMOKE_DIR/chaos.json" || rc=$?
[ "$rc" -eq 3 ] \
  || { echo "chaos: expected exit class 3 (infra), got $rc"; exit 1; }
cmp "$SMOKE_DIR/smoke.json" "$SMOKE_DIR/chaos.json" \
  || { echo "chaos: degraded run's report is not canonical"; exit 1; }
degraded_journal=$(wc -c < "$SMOKE_DIR/chaos.jsonl")
[ "$degraded_journal" -lt "$full_journal" ] \
  || { echo "chaos: journal kept growing past the planned ENOSPC"; exit 1; }
"$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 --escalation 1000 \
  --resume "$SMOKE_DIR/chaos.jsonl" --out "$SMOKE_DIR/chaos_resumed.json"
cmp "$SMOKE_DIR/smoke.json" "$SMOKE_DIR/chaos_resumed.json" \
  || { echo "chaos: healthy resume diverged from the reference report"; exit 1; }
echo "chaos: ENOSPC at byte $cut degraded gracefully; healthy resume byte-identical"

echo "=== killpoint gate (resume from arbitrary crash prefixes) ==="
# Three crash prefixes carved from the healthy journal — early, middle,
# late — each must resume to the byte-identical merged report. (The
# in-tree harness covers 56 seeded offsets; this is the end-to-end
# binary-level spot check.)
for cut in $((full_journal / 5)) $((full_journal / 2)) $((full_journal * 4 / 5)); do
  head -c "$cut" "$SMOKE_DIR/smoke.jsonl" > "$SMOKE_DIR/kp.jsonl"
  "$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 --escalation 1000 \
    --resume "$SMOKE_DIR/kp.jsonl" --out "$SMOKE_DIR/kp.json"
  cmp "$SMOKE_DIR/smoke.json" "$SMOKE_DIR/kp.json" \
    || { echo "killpoint: crash at journal byte $cut did not resume identically"; exit 1; }
done
echo "killpoint: 3 crash prefixes all resumed byte-identical"

echo "=== leakage smoke (dg-run --leak: security regression gate) ==="
# Two tiny jobs with the covert-channel leakage probe forced on: the
# insecure controller must carry real MI capacity and DAGguise must
# collapse it. This is the repo's core security claim as a CI assertion.
"$DG_RUN" examples/leak_smoke.toml --quiet --jobs 2 \
  --out "$SMOKE_DIR/leak_smoke.json" --leak "$SMOKE_DIR/leak.json"
mean_of() {
  awk -v d="\"$1\"," '$1 == "\"defense\":" && $2 == d {f=1}
    f && $1 == "\"mean_capacity_bps\":" {gsub(/,/, "", $2); print $2; exit}' \
    "$SMOKE_DIR/leak.json"
}
insecure_bps=$(mean_of insecure)
dagguise_bps=$(mean_of dagguise)
awk -v i="$insecure_bps" -v d="$dagguise_bps" 'BEGIN {
  if (i == "" || d == "") { print "leakage: leaderboard missing a defense"; exit 1 }
  if (i + 0 < 50000) { print "leakage: insecure capacity too low: " i " bits/s"; exit 1 }
  if (d + 0 > 0.1 * i) { print "leakage: DAGguise failed to collapse capacity: " d " vs " i " bits/s"; exit 1 }
  print "leakage: insecure " i " bits/s, dagguise " d " bits/s"
}'

echo "=== sharded differential (DG_SHARDS=1 vs 4: byte-identical reports) ==="
# The same smoke sweep on the conservative-PDES sharded runtime, once with
# a single shard and once with four. The merged reports must be
# byte-identical: partitioning may only change wall-clock, never results.
DG_SHARDS=1 "$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 \
  --escalation 1000 --out "$SMOKE_DIR/sharded1.json"
DG_SHARDS=4 "$DG_RUN" examples/smoke.toml --quiet --jobs 2 --retries 2 \
  --escalation 1000 --out "$SMOKE_DIR/sharded4.json"
cmp "$SMOKE_DIR/sharded1.json" "$SMOKE_DIR/sharded4.json" \
  || { echo "sharded: 4-shard report differs from 1-shard reference"; exit 1; }
echo "sharded: 1-shard and 4-shard merged reports byte-identical"

echo "=== perf smoke (event-driven engine vs naive loop) ==="
# The event-driven engine must hold a real wall-clock win on the idle-heavy
# temporal-partition scenario. The differential test suite already proves
# the two engines byte-identical; this gate catches quiescence-detection
# regressions that silently fall back to per-cycle stepping. The 2x bar is
# deliberately far below the typical >100x so scheduler noise cannot flake.
target/release/perf_throughput --quick --out "$SMOKE_DIR/perf.json"
# The history document appends one record per invocation; take the latest.
tp_idle=$(awk '$1 == "\"temporal_partition/idle\":" {gsub(/,/, "", $2); v=$2} END {print v}' \
  "$SMOKE_DIR/perf.json")
awk -v s="$tp_idle" 'BEGIN {
  if (s == "") { print "perf: temporal_partition/idle speedup missing"; exit 1 }
  if (s + 0 < 2) { print "perf: event engine only " s "x over naive (need >= 2x)"; exit 1 }
  print "perf: temporal_partition/idle speedup " s "x"
}'

# Sharded scaling gate: the scale64/sharded scenario records PDES
# self-relative speedup (same 4-shard partition, 1 thread vs all) next to
# the host's measured 2-thread compute-scaling ceiling. The bar is
# min(1.5, 0.65 * ceiling): 1.5x on a healthy multi-core host, and scaled
# down when the host itself cannot run two threads concurrently (shared
# CI runners under co-tenant load measure ceilings well below 2.0) — a
# real scheduling regression lands far below 0.65 * ceiling, while an
# absolute bar on a starved host would only measure the co-tenants.
scale64=$(awk '$1 == "\"scale64/sharded\":" {gsub(/,/, "", $2); v=$2} END {print v}' \
  "$SMOKE_DIR/perf.json")
ceiling=$(grep -o '"parallel_scaling_2t": [0-9.]*' "$SMOKE_DIR/perf.json" \
  | tail -1 | awk '{print $2}')
awk -v s="$scale64" -v c="$ceiling" 'BEGIN {
  if (s == "" || c == "") { print "perf: scale64/sharded speedup or host ceiling missing"; exit 1 }
  bar = 0.65 * c; if (bar > 1.5) bar = 1.5
  if (s + 0 < bar) { print "perf: sharded speedup " s "x below bar " bar "x (host ceiling " c "x)"; exit 1 }
  print "perf: scale64/sharded speedup " s "x (host ceiling " c "x, bar " bar "x)"
}'

echo "=== perf trend gate (dg-trend: noise-aware regression verdicts) ==="
# The committed benchmark history must read clean (trailing-window median
# +/- MAD verdicts), and a synthetically injected 20% slowdown on every
# series must be flagged with a nonzero exit — the shape of the gate a
# perf regression would trip after `perf_throughput` appends a bad run.
DG_TREND=target/release/dg-trend
"$DG_TREND" BENCH_perf.json
if "$DG_TREND" BENCH_perf.json --inject 20 --quiet; then
  echo "trend: injected 20% regression was not flagged"; exit 1
fi
echo "trend: history clean; injected 20% regression flagged"

echo "CI passed."
