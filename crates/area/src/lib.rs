//! Area model for the DAGguise hardware (Table 3).
//!
//! The paper synthesizes the shaper computation logic with Yosys against
//! the 45 nm FreePDK45 cell library and sizes the private-queue SRAM with
//! CACTI, reporting for an eight-shaper configuration (eight banks,
//! 16-bit rDAG weights, eight queue entries each):
//!
//! | Component            | Resources             | Area (mm²) |
//! |----------------------|-----------------------|------------|
//! | Computation logic    | 13424 gates           | 0.02022    |
//! | Private queues (8×8) | 4608 B (72 B × 64)    | 0.01705    |
//! | **Total**            |                       | **0.03727**|
//!
//! This crate rebuilds both numbers analytically, from first-principles
//! counts of the state the §4.4 architecture needs: per bank-tracker a
//! waiting bit, a read/write bit and a weight-countdown register, plus
//! per-shaper control; and per queue entry a 64-bit address plus a 64-byte
//! write-data line (72 B). Gate and bit area coefficients are calibrated
//! to the FreePDK45/CACTI outputs the paper reports, so the model
//! extrapolates to other configurations (the ablation harness sweeps
//! domain count and queue depth).

use serde::{Deserialize, Serialize};

/// NAND2-equivalent gate cost of one flip-flop (FreePDK45 DFF ≈ 6 NAND2).
const GATES_PER_FF: u64 = 6;
/// Gates per bit of a decrementer (half-subtractor + mux).
const GATES_PER_DEC_BIT: u64 = 3;
/// Gates for a 16-ish-bit zero comparator (NOR tree), per bit.
const GATES_PER_CMP_BIT: u64 = 1;
/// Fixed control overhead per bank tracker (emission FSM, queue-match
/// enable, fake-request mux control).
const GATES_TRACKER_CONTROL: u64 = 15;
/// Per-shaper control: sequence arbitration, domain-ID match, response
/// routing, configuration registers.
const GATES_SHAPER_CONTROL: u64 = 182;
/// Post-synthesis area per NAND2-equivalent gate at 45 nm, including
/// routing/utilization overhead, calibrated to the paper's Yosys result
/// (0.02022 mm² / 13424 gates ≈ 1.506 µm²).
const UM2_PER_GATE: f64 = 1.506;
/// SRAM area per bit at 45 nm including periphery, calibrated to the
/// paper's CACTI result (0.01705 mm² / 36864 bits ≈ 0.4625 µm²).
const UM2_PER_SRAM_BIT: f64 = 0.4625;

/// Configuration of the DAGguise hardware pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaConfig {
    /// Parallel shaper instances (protected security domains).
    pub domains: u32,
    /// Banks tracked per shaper.
    pub banks: u32,
    /// Bits per rDAG weight register.
    pub weight_bits: u32,
    /// Private queue entries per domain.
    pub queue_entries: u32,
    /// Bytes per queue entry (64-bit address + 64 B write data = 72 B).
    pub entry_bytes: u32,
}

impl AreaConfig {
    /// The paper's Table 3 configuration: 8 shapers × 8 banks, 16-bit
    /// weights, 8 × 72 B queue entries.
    pub fn paper() -> Self {
        Self {
            domains: 8,
            banks: 8,
            weight_bits: 16,
            queue_entries: 8,
            entry_bytes: 72,
        }
    }
}

/// The Table 3 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// NAND2-equivalent gates of computation logic.
    pub logic_gates: u64,
    /// Computation logic area in mm².
    pub logic_mm2: f64,
    /// Private queue capacity in bytes.
    pub sram_bytes: u64,
    /// Private queue area in mm².
    pub sram_mm2: f64,
}

impl AreaReport {
    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.logic_mm2 + self.sram_mm2
    }
}

/// Computes the area breakdown for a configuration.
pub fn area_report(cfg: &AreaConfig) -> AreaReport {
    let logic_gates = computation_logic_gates(cfg);
    let sram_bytes =
        u64::from(cfg.domains) * u64::from(cfg.queue_entries) * u64::from(cfg.entry_bytes);
    AreaReport {
        logic_gates,
        logic_mm2: logic_gates as f64 * UM2_PER_GATE / 1e6,
        sram_bytes,
        sram_mm2: sram_bytes as f64 * 8.0 * UM2_PER_SRAM_BIT / 1e6,
    }
}

/// Gate count of the computation logic (§4.4): per bank a tracker holding
/// the waiting bit, the read/write bit and the weight countdown, plus
/// per-shaper control.
pub fn computation_logic_gates(cfg: &AreaConfig) -> u64 {
    let w = u64::from(cfg.weight_bits);
    // State bits per tracker: waiting + r/w + counter.
    let tracker_ffs = (2 + w) * GATES_PER_FF;
    let tracker_logic = w * GATES_PER_DEC_BIT + w * GATES_PER_CMP_BIT + GATES_TRACKER_CONTROL;
    let per_tracker = tracker_ffs + tracker_logic;
    let per_shaper = u64::from(cfg.banks) * per_tracker + GATES_SHAPER_CONTROL;
    u64::from(cfg.domains) * per_shaper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table3() {
        let r = area_report(&AreaConfig::paper());
        // Resources reproduce exactly.
        assert_eq!(r.sram_bytes, 4608);
        assert_eq!(r.logic_gates, 13_424);
        // Areas within 1% of the published numbers (coefficients are
        // calibrated, so this checks arithmetic, not fit).
        assert!(
            (r.logic_mm2 - 0.02022).abs() / 0.02022 < 0.01,
            "{}",
            r.logic_mm2
        );
        assert!(
            (r.sram_mm2 - 0.01705).abs() / 0.01705 < 0.01,
            "{}",
            r.sram_mm2
        );
        assert!(
            (r.total_mm2() - 0.03727).abs() / 0.03727 < 0.01,
            "{}",
            r.total_mm2()
        );
    }

    #[test]
    fn area_scales_linearly_with_domains() {
        let one = area_report(&AreaConfig {
            domains: 1,
            ..AreaConfig::paper()
        });
        let eight = area_report(&AreaConfig::paper());
        assert_eq!(eight.logic_gates, one.logic_gates * 8);
        assert_eq!(eight.sram_bytes, one.sram_bytes * 8);
    }

    #[test]
    fn wider_weights_cost_more_logic() {
        let narrow = computation_logic_gates(&AreaConfig {
            weight_bits: 8,
            ..AreaConfig::paper()
        });
        let wide = computation_logic_gates(&AreaConfig {
            weight_bits: 32,
            ..AreaConfig::paper()
        });
        assert!(wide > narrow);
    }

    #[test]
    fn deeper_queues_cost_more_sram_only() {
        let shallow = area_report(&AreaConfig {
            queue_entries: 4,
            ..AreaConfig::paper()
        });
        let deep = area_report(&AreaConfig {
            queue_entries: 16,
            ..AreaConfig::paper()
        });
        assert_eq!(shallow.logic_gates, deep.logic_gates);
        assert_eq!(deep.sram_bytes, shallow.sram_bytes * 4);
        assert!(deep.total_mm2() > shallow.total_mm2());
    }

    #[test]
    fn total_is_sum() {
        let r = area_report(&AreaConfig::paper());
        assert!((r.total_mm2() - (r.logic_mm2 + r.sram_mm2)).abs() < 1e-12);
    }
}
