//! DAGguise — the paper's defense mechanism.
//!
//! DAGguise places a *request shaper* between a protected domain's LLC and
//! the shared memory controller (Figure 3). The shaper buffers the domain's
//! requests in a private transaction queue and emits requests following the
//! timing dependencies of a public, secret-independent *defense rDAG*:
//! when the rDAG prescribes a request and a matching real request (same
//! bank, same read/write type) is buffered, that request is forwarded;
//! otherwise a fake request to a random address in the prescribed bank is
//! fabricated. Because everything the receiver can observe — emission
//! times, banks, types — is a function of the defense rDAG and of
//! receiver-visible contention alone, the victim's traffic is perfectly
//! hidden (§5; verified in `dg-verif`).
//!
//! # Quick start
//!
//! ```
//! use dagguise::{Shaper, ShaperConfig};
//! use dg_rdag::template::RdagTemplate;
//! use dg_sim::config::SystemConfig;
//! use dg_sim::types::DomainId;
//!
//! let cfg = SystemConfig::two_core();
//! // Figure 6(a): 4 parallel sequences, weight 100 DRAM cycles.
//! let template = RdagTemplate::new(4, 100, 0.001);
//! let shaper = Shaper::new(ShaperConfig::from_system(DomainId(0), template, &cfg));
//! assert_eq!(shaper.stats().fakes_emitted, 0);
//! ```

pub mod manager;
pub mod shaper;

pub use manager::{ShaperManager, ShaperSnapshot};
pub use shaper::{Shaper, ShaperConfig, ShaperStats};
