//! The DAGguise request shaper (§4.4).

use std::collections::{HashMap, VecDeque};

use dg_dram::{AddressMapper, MapScheme, PhysLoc};
use dg_mem::DomainShaper;
use dg_obs::{EventKind, ShaperReport, ShaperTimeline, ShaperTimelineReport, Tracer};
use dg_rdag::exec::{RdagExecutor, SlotDemand};
use dg_rdag::template::RdagTemplate;
use dg_sim::clock::{ClockRatio, Cycle};
use dg_sim::rng::DetRng;
use dg_sim::types::{DomainId, MemRequest, MemResponse, ReqId, ReqKind};
use serde::{Deserialize, Serialize};

/// Configuration of one shaper instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaperConfig {
    /// The security domain this shaper protects.
    pub domain: DomainId,
    /// The defense rDAG template (public, secret-independent).
    pub template: RdagTemplate,
    /// Private transaction queue capacity (8 in the paper's Table 3 sizing).
    pub queue_capacity: usize,
    /// Banks in the DRAM device.
    pub banks: u32,
    /// DRAM row size in bytes (for fake address generation).
    pub row_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Rows per bank addressable by fake requests.
    pub rows: u64,
    /// CPU:DRAM clock ratio for edge-weight conversion.
    pub clock_ratio: ClockRatio,
    /// Seed for fake-address generation. The stream is independent of any
    /// secret: it is consumed only when a fake is emitted, and *whether* a
    /// fake is emitted at a slot is invisible to the receiver.
    pub seed: u64,
}

impl ShaperConfig {
    /// Derives a shaper configuration from a system configuration.
    pub fn from_system(
        domain: DomainId,
        template: RdagTemplate,
        cfg: &dg_sim::config::SystemConfig,
    ) -> Self {
        let rows =
            cfg.dram_org.capacity_bytes / (u64::from(cfg.dram_org.banks) * cfg.dram_org.row_bytes);
        Self {
            domain,
            template,
            queue_capacity: cfg.queues.private_queue,
            banks: cfg.dram_org.banks,
            row_bytes: cfg.dram_org.row_bytes,
            line_bytes: cfg.dram_org.line_bytes,
            rows: rows.max(1),
            clock_ratio: cfg.clock_ratio,
            seed: 0xDA65_u64 ^ (u64::from(domain.0) << 32),
        }
    }
}

/// Counters describing a shaper's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShaperStats {
    /// Real victim requests forwarded into prescribed slots.
    pub real_forwarded: u64,
    /// Fake requests fabricated to fill unmatched slots.
    pub fakes_emitted: u64,
    /// Victim requests accepted into the private queue.
    pub accepted: u64,
    /// Acceptances refused because the private queue was full
    /// (back-pressure to the victim core; invisible to other domains).
    pub rejected: u64,
    /// Sum over forwarded requests of (emission cycle − creation cycle):
    /// the shaping delay experienced by the victim.
    pub delay_sum: Cycle,
}

impl ShaperStats {
    /// Fraction of emitted requests that were fake.
    pub fn fake_fraction(&self) -> f64 {
        let total = self.real_forwarded + self.fakes_emitted;
        if total == 0 {
            0.0
        } else {
            self.fakes_emitted as f64 / total as f64
        }
    }

    /// Mean shaping delay of forwarded requests in CPU cycles.
    pub fn mean_delay(&self) -> f64 {
        if self.real_forwarded == 0 {
            0.0
        } else {
            self.delay_sum as f64 / self.real_forwarded as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct InFlight {
    seq: usize,
}

/// The DAGguise request shaper: a proxy agent for one protected domain.
///
/// The shaper implements [`DomainShaper`] and plugs into
/// [`dg_mem::ShapedMemory`]. Its externally visible behaviour — *when* it
/// emits, to *which bank*, with *which type* — is driven exclusively by the
/// defense rDAG's execution state, which advances on receiver-visible
/// completions. The victim's buffered requests determine only the payload
/// (real vs fake) of each prescribed slot.
#[derive(Debug)]
pub struct Shaper {
    config: ShaperConfig,
    executor: RdagExecutor,
    queue: VecDeque<MemRequest>,
    mapper: AddressMapper,
    in_flight: HashMap<ReqId, InFlight>,
    rng: DetRng,
    fake_seq: u64,
    stats: ShaperStats,
    tracer: Tracer,
    /// Windowed emission telemetry, recorded only when enabled. Purely
    /// observational: it never influences what or when the shaper emits.
    timeline: Option<ShaperTimeline>,
}

impl Shaper {
    /// Builds a shaper from its configuration.
    pub fn new(config: ShaperConfig) -> Self {
        let executor = RdagExecutor::new(
            config.template.sequence_specs(config.banks),
            config.clock_ratio,
        );
        let mapper = AddressMapper::new(
            MapScheme::BankInterleaved,
            config.banks,
            config.row_bytes,
            config.line_bytes,
        );
        let rng = DetRng::new(config.seed);
        Self {
            config,
            executor,
            queue: VecDeque::new(),
            mapper,
            in_flight: HashMap::new(),
            rng,
            fake_seq: 0,
            stats: ShaperStats::default(),
            tracer: Tracer::noop(),
            timeline: None,
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &ShaperStats {
        &self.stats
    }

    /// The configuration this shaper runs.
    pub fn config(&self) -> &ShaperConfig {
        &self.config
    }

    /// The defense-rDAG execution state (for harness introspection).
    pub fn executor(&self) -> &RdagExecutor {
        &self.executor
    }

    /// Finds the oldest buffered victim request matching the prescribed
    /// bank and type, removing and returning it.
    fn take_matching(&mut self, demand: &SlotDemand) -> Option<MemRequest> {
        let pos = self.queue.iter().position(|r| {
            r.req_type == demand.req_type && self.mapper.decode(r.addr).bank == demand.bank
        })?;
        self.queue.remove(pos)
    }

    /// Fabricates a fake request to a random address in the prescribed bank
    /// (§4.4: "the fake request accesses a random address in the targeted
    /// bank").
    fn make_fake(&mut self, demand: &SlotDemand, now: Cycle) -> MemRequest {
        let row = self.rng.next_below(self.config.rows);
        let col = self
            .rng
            .next_below(self.config.row_bytes / self.config.line_bytes);
        let addr = self.mapper.encode(PhysLoc {
            bank: demand.bank,
            row,
            col,
        });
        self.fake_seq += 1;
        // Fake ids live in a reserved id space so they can never collide
        // with core-issued ids of the same domain.
        let id = ReqId::compose(DomainId(self.config.domain.0 | 0x8000), self.fake_seq);
        let mut req = MemRequest::fake(self.config.domain, addr, demand.req_type, now);
        req.id = id;
        req
    }
}

impl DomainShaper for Shaper {
    fn domain(&self) -> DomainId {
        self.config.domain
    }

    fn try_accept(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            self.tracer.record(now, || EventKind::ShaperReject {
                id: req.id,
                domain: req.domain,
            });
            return Err(req);
        }
        debug_assert_eq!(
            req.domain, self.config.domain,
            "request routed to wrong shaper"
        );
        self.tracer.record(now, || EventKind::ShaperAccept {
            id: req.id,
            domain: req.domain,
        });
        self.queue.push_back(req);
        self.stats.accepted += 1;
        self.tracer.record(now, || EventKind::ShaperQueueDepth {
            domain: self.config.domain,
            depth: self.queue.len() as u32,
        });
        Ok(())
    }

    fn tick_into(&mut self, now: Cycle, space: usize, out: &mut Vec<MemRequest>) {
        let _prof = dg_prof::span("rdag_exec");
        let start = out.len();
        // Iterating by sequence index matches the order `poll` returned
        // demands in, so the emission schedule is unchanged — but without
        // allocating a demand vector on every tick.
        for seq in 0..self.executor.sequence_count() {
            if out.len() - start >= space {
                // Transaction queue full: the slot stays due and will be
                // retried next cycle. The stall depends only on global
                // congestion, never on this domain's secrets.
                break;
            }
            let Some(demand) = self.executor.demand(seq, now) else {
                continue;
            };
            // Telemetry inputs, captured before the slot is filled: how
            // deep the private queue was and how long the slot sat due.
            let depth = self.queue.len();
            let slack = now - self.executor.due_at(demand.seq).unwrap_or(now);
            let req = match self.take_matching(&demand) {
                Some(real) => {
                    self.stats.real_forwarded += 1;
                    self.stats.delay_sum += now.saturating_sub(real.created_at);
                    self.tracer.record(now, || EventKind::ShaperEmitReal {
                        id: real.id,
                        domain: real.domain,
                        bank: demand.bank,
                    });
                    // Forwarding popped the private queue: sample the new
                    // depth for the counter track.
                    self.tracer.record(now, || EventKind::ShaperQueueDepth {
                        domain: self.config.domain,
                        depth: self.queue.len() as u32,
                    });
                    real
                }
                None => {
                    self.stats.fakes_emitted += 1;
                    let fake = self.make_fake(&demand, now);
                    self.tracer.record(now, || EventKind::ShaperEmitFake {
                        id: fake.id,
                        domain: self.config.domain,
                        bank: demand.bank,
                    });
                    fake
                }
            };
            if let Some(tl) = &mut self.timeline {
                tl.record_emission(now, depth, slack, req.kind.is_fake());
            }
            self.executor.emitted(demand.seq, now);
            self.in_flight.insert(req.id, InFlight { seq: demand.seq });
            out.push(req);
        }
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // The shaper acts only when a defense-rDAG slot comes due. With
        // every sequence waiting on a response there is no self-scheduled
        // event: completions arrive through the inner controller, whose own
        // `next_event_at` covers them.
        self.executor.earliest_due().map(|at| at.max(now))
    }

    fn on_response(&mut self, resp: &MemResponse, now: Cycle) -> Option<MemResponse> {
        let inflight = self
            .in_flight
            .remove(&resp.id)
            .expect("response for a request this shaper never emitted");
        self.executor.completed(inflight.seq, now);
        match resp.kind {
            ReqKind::Real => Some(*resp),
            ReqKind::Fake => None,
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn enable_timeline(&mut self, window: Cycle) {
        self.timeline = Some(ShaperTimeline::new(self.config.domain.0, window));
    }

    fn timeline(&self) -> Option<ShaperTimelineReport> {
        self.timeline.as_ref().map(|tl| tl.report())
    }

    fn report(&self) -> Option<ShaperReport> {
        Some(ShaperReport {
            domain: self.config.domain.0,
            real_forwarded: self.stats.real_forwarded,
            fakes_emitted: self.stats.fakes_emitted,
            accepted: self.stats.accepted,
            rejected: self.stats.rejected,
            fake_fraction: self.stats.fake_fraction(),
            mean_delay: (self.stats.real_forwarded > 0).then(|| self.stats.mean_delay()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::config::SystemConfig;
    use dg_sim::types::ReqType;

    fn cfg_with(template: RdagTemplate) -> ShaperConfig {
        let mut sys = SystemConfig::two_core();
        sys.clock_ratio = ClockRatio::new(1);
        ShaperConfig::from_system(DomainId(0), template, &sys)
    }

    fn shaper(seqs: u32, weight: u64) -> Shaper {
        Shaper::new(cfg_with(RdagTemplate::new(seqs, weight, 0.0)))
    }

    /// Drives the shaper standalone: every emitted request completes
    /// `latency` cycles later.
    fn run_standalone(s: &mut Shaper, cycles: Cycle, latency: Cycle) -> Vec<(Cycle, MemRequest)> {
        let mut emissions = Vec::new();
        let mut completions: VecDeque<(Cycle, MemRequest)> = VecDeque::new();
        for now in 0..cycles {
            while let Some(&(when, req)) = completions.front() {
                if when > now {
                    break;
                }
                completions.pop_front();
                let resp = MemResponse {
                    id: req.id,
                    domain: req.domain,
                    addr: req.addr,
                    req_type: req.req_type,
                    kind: req.kind,
                    arrived_at: when - latency,
                    completed_at: when,
                };
                s.on_response(&resp, now);
            }
            for req in s.tick(now, usize::MAX) {
                emissions.push((now, req));
                completions.push_back((now + latency, req));
            }
        }
        emissions
    }

    #[test]
    fn emits_fakes_when_idle() {
        let mut s = shaper(1, 150);
        let emissions = run_standalone(&mut s, 1000, 100);
        assert!(!emissions.is_empty());
        assert!(emissions.iter().all(|(_, r)| r.kind.is_fake()));
        assert_eq!(s.stats().fakes_emitted, emissions.len() as u64);
        // Steady state: one emission every latency + weight cycles.
        let gaps: Vec<Cycle> = emissions.windows(2).map(|w| w[1].0 - w[0].0).collect();
        assert!(gaps.iter().all(|&g| g == 250), "gaps {gaps:?}");
    }

    #[test]
    fn forwards_matching_real_requests() {
        let mut s = shaper(1, 150);
        // Find the bank the first slot demands and enqueue a matching read.
        let demand = s.executor.poll(0)[0];
        let addr = s.mapper.encode(PhysLoc {
            bank: demand.bank,
            row: 3,
            col: 1,
        });
        let req = MemRequest::read(DomainId(0), addr, 0).with_id(ReqId::compose(DomainId(0), 1));
        s.try_accept(req, 0).unwrap();
        let out = s.tick(0, usize::MAX);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, req.id);
        assert_eq!(out[0].kind, ReqKind::Real);
        assert_eq!(s.stats().real_forwarded, 1);
        assert_eq!(s.stats().fakes_emitted, 0);
    }

    #[test]
    fn mismatched_bank_gets_fake_instead() {
        let mut s = shaper(1, 150);
        let demand = s.executor.poll(0)[0];
        let wrong_bank = (demand.bank + 1) % 8;
        let addr = s.mapper.encode(PhysLoc {
            bank: wrong_bank,
            row: 3,
            col: 1,
        });
        let req = MemRequest::read(DomainId(0), addr, 0).with_id(ReqId::compose(DomainId(0), 1));
        s.try_accept(req, 0).unwrap();
        let out = s.tick(0, usize::MAX);
        assert_eq!(out.len(), 1);
        assert!(out[0].kind.is_fake());
        // The fake targets the prescribed bank.
        assert_eq!(s.mapper.decode(out[0].addr).bank, demand.bank);
        assert_eq!(s.pending(), 1, "victim request stays buffered");
    }

    #[test]
    fn mismatched_type_gets_fake_instead() {
        let mut s = Shaper::new(cfg_with(RdagTemplate::new(1, 150, 0.0))); // reads only
        let demand = s.executor.poll(0)[0];
        let addr = s.mapper.encode(PhysLoc {
            bank: demand.bank,
            row: 1,
            col: 0,
        });
        let w = MemRequest::write(DomainId(0), addr, 0).with_id(ReqId::compose(DomainId(0), 1));
        s.try_accept(w, 0).unwrap();
        let out = s.tick(0, usize::MAX);
        assert!(out[0].kind.is_fake());
        assert_eq!(out[0].req_type, ReqType::Read);
    }

    #[test]
    fn fake_responses_are_consumed() {
        let mut s = shaper(1, 100);
        let out = s.tick(0, usize::MAX);
        let fake = out[0];
        assert!(fake.kind.is_fake());
        let resp = MemResponse {
            id: fake.id,
            domain: fake.domain,
            addr: fake.addr,
            req_type: fake.req_type,
            kind: fake.kind,
            arrived_at: 0,
            completed_at: 50,
        };
        assert_eq!(s.on_response(&resp, 50), None);
    }

    #[test]
    fn private_queue_backpressure() {
        let mut s = shaper(1, 100);
        let cap = s.config().queue_capacity;
        for i in 0..cap as u64 {
            let req =
                MemRequest::read(DomainId(0), i * 64, 0).with_id(ReqId::compose(DomainId(0), i));
            s.try_accept(req, 0).unwrap();
        }
        let extra =
            MemRequest::read(DomainId(0), 0x9000, 0).with_id(ReqId::compose(DomainId(0), 99));
        assert!(s.try_accept(extra, 0).is_err());
        assert_eq!(s.stats().rejected, 1);
    }

    #[test]
    fn emission_times_independent_of_victim_traffic() {
        // The core security property, exercised at the unit level: the
        // shaper's emission schedule (cycle, bank, type) is identical
        // whether or not the victim enqueues requests.
        let t = RdagTemplate::new(2, 120, 0.1);
        let mut idle = Shaper::new(cfg_with(t));
        let idle_emissions = run_standalone(&mut idle, 3000, 80);

        let mut busy = Shaper::new(cfg_with(t));
        let mut emissions = Vec::new();
        let mut completions: VecDeque<(Cycle, MemRequest)> = VecDeque::new();
        let mut injected = 0u64;
        for now in 0..3000 {
            // The victim floods the shaper with requests to varied banks.
            if now % 7 == 0 && busy.pending() < busy.config().queue_capacity {
                injected += 1;
                let req = MemRequest::read(DomainId(0), (injected * 64) % 65536, now)
                    .with_id(ReqId::compose(DomainId(0), injected));
                let _ = busy.try_accept(req, now);
            }
            while let Some(&(when, req)) = completions.front() {
                if when > now {
                    break;
                }
                completions.pop_front();
                let resp = MemResponse {
                    id: req.id,
                    domain: req.domain,
                    addr: req.addr,
                    req_type: req.req_type,
                    kind: req.kind,
                    arrived_at: when - 80,
                    completed_at: when,
                };
                busy.on_response(&resp, now);
            }
            for req in busy.tick(now, usize::MAX) {
                emissions.push((now, req));
                completions.push_back((now + 80, req));
            }
        }
        assert!(injected > 0);
        assert!(busy.stats().real_forwarded > 0, "some requests forwarded");
        // Compare the receiver-visible schedule: (cycle, bank, type).
        let visible = |e: &[(Cycle, MemRequest)]| -> Vec<(Cycle, u32, ReqType)> {
            e.iter()
                .map(|(c, r)| (*c, busy.mapper.decode(r.addr).bank, r.req_type))
                .collect()
        };
        assert_eq!(visible(&idle_emissions), visible(&emissions));
    }

    #[test]
    fn timeline_records_windows_without_changing_emissions() {
        let t = RdagTemplate::new(1, 150, 0.0);
        let mut plain = Shaper::new(cfg_with(t));
        let plain_emissions = run_standalone(&mut plain, 2000, 100);

        let mut observed = Shaper::new(cfg_with(t));
        observed.enable_timeline(500);
        let observed_emissions = run_standalone(&mut observed, 2000, 100);

        // Observer effect: enabling telemetry changes nothing visible.
        let key = |e: &[(Cycle, MemRequest)]| -> Vec<(Cycle, u64)> {
            e.iter().map(|(c, r)| (*c, r.addr)).collect()
        };
        assert_eq!(key(&plain_emissions), key(&observed_emissions));

        let tl = observed.timeline().expect("timeline enabled");
        assert_eq!(tl.domain, 0);
        assert_eq!(tl.window, 500);
        assert!(tl.windows.len() >= 2);
        let total: u64 = tl.windows.iter().map(|w| w.real + w.fake).sum();
        assert_eq!(total, observed_emissions.len() as u64);
    }

    #[test]
    fn delay_accounting() {
        let mut s = shaper(1, 100);
        let demand = s.executor.poll(0)[0];
        let addr = s.mapper.encode(PhysLoc {
            bank: demand.bank,
            row: 0,
            col: 0,
        });
        // Created at 0 but only forwarded at cycle 40.
        let req = MemRequest::read(DomainId(0), addr, 0).with_id(ReqId::compose(DomainId(0), 1));
        s.try_accept(req, 10).unwrap();
        let out = s.tick(40, usize::MAX);
        assert_eq!(out.len(), 1);
        assert_eq!(s.stats().delay_sum, 40);
        assert_eq!(s.stats().mean_delay(), 40.0);
    }

    #[test]
    fn zero_space_stalls_slot_without_losing_it() {
        let mut s = shaper(1, 100);
        assert!(s.tick(0, 0).is_empty());
        // Slot still due next cycle.
        let out = s.tick(1, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fake_fraction_stat() {
        let mut st = ShaperStats::default();
        assert_eq!(st.fake_fraction(), 0.0);
        st.fakes_emitted = 3;
        st.real_forwarded = 1;
        assert!((st.fake_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "never emitted")]
    fn foreign_response_panics() {
        let mut s = shaper(1, 100);
        let resp = MemResponse {
            id: ReqId(424242),
            domain: DomainId(0),
            addr: 0,
            req_type: ReqType::Read,
            kind: ReqKind::Real,
            arrived_at: 0,
            completed_at: 1,
        };
        s.on_response(&resp, 1);
    }
}
