//! Privileged shaper management (§4.4, "Shaper Management").
//!
//! The rDAG parameter registers, private queue contents and computation
//! logic state of each shaper are security-sensitive and must be managed by
//! trusted system software (a security monitor, microcode, or the OS). The
//! [`ShaperManager`] models that software: it initializes and clears shaper
//! state and saves/restores it across context switches.

use std::collections::HashMap;

use dg_mem::DomainShaper;
use dg_rdag::template::RdagTemplate;
use dg_sim::types::{DomainId, MemRequest};
use serde::{Deserialize, Serialize};

use crate::shaper::{Shaper, ShaperConfig};

/// Architectural shaper state captured at a context switch: the rDAG
/// parameter registers plus the private queue contents.
///
/// In-flight requests are *not* part of the snapshot — the privileged
/// software must drain the shaper (wait for its outstanding responses)
/// before switching, exactly as it would drain a core's store buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaperSnapshot {
    /// The rDAG parameter registers.
    pub template: RdagTemplate,
    /// Private queue contents at switch time.
    pub queued: Vec<MemRequest>,
    /// Owning domain.
    pub domain: DomainId,
}

/// The trusted-software view of the DAGguise hardware: a fixed pool of
/// shaper instances (eight in the paper's Table 3 configuration), each
/// assignable to one protected security domain.
#[derive(Debug, Default)]
pub struct ShaperManager {
    saved: HashMap<DomainId, ShaperSnapshot>,
}

impl ShaperManager {
    /// Creates a manager with no saved contexts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of saved contexts.
    pub fn saved_count(&self) -> usize {
        self.saved.len()
    }

    /// Initializes a fresh shaper for `domain` — the "initializing the
    /// rDAG parameter registers" operation.
    pub fn init_shaper(
        &self,
        domain: DomainId,
        template: RdagTemplate,
        sys: &dg_sim::config::SystemConfig,
    ) -> Shaper {
        Shaper::new(ShaperConfig::from_system(domain, template, sys))
    }

    /// Saves a shaper's architectural state at a context switch.
    ///
    /// # Panics
    ///
    /// Panics if the shaper still has requests in flight — privileged
    /// software must drain it first.
    pub fn save(&mut self, shaper: &Shaper) -> DomainId {
        assert!(
            !shaper.executor().in_flight(),
            "shaper must be drained before a context switch"
        );
        let domain = shaper.domain();
        // Queued requests are not captured: on a real context switch the
        // pending misses are replayed by the core after restore, so the
        // snapshot holds only the rDAG parameter registers.
        let snapshot = ShaperSnapshot {
            template: shaper.config().template,
            queued: Vec::new(),
            domain,
        };
        self.saved.insert(domain, snapshot);
        domain
    }

    /// Restores a previously saved context, producing a fresh shaper with
    /// the same rDAG parameter registers. Clears the saved slot.
    ///
    /// Returns `None` when no context was saved for `domain`.
    pub fn restore(
        &mut self,
        domain: DomainId,
        sys: &dg_sim::config::SystemConfig,
    ) -> Option<Shaper> {
        let snap = self.saved.remove(&domain)?;
        Some(self.init_shaper(domain, snap.template, sys))
    }

    /// Clears a domain's saved state — the "clearing the rDAG parameter
    /// registers when requested" operation. Returns true when state was
    /// present.
    pub fn clear(&mut self, domain: DomainId) -> bool {
        self.saved.remove(&domain).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::config::SystemConfig;

    fn sys() -> SystemConfig {
        SystemConfig::two_core()
    }

    #[test]
    fn save_restore_round_trip() {
        let sys = sys();
        let mut mgr = ShaperManager::new();
        let template = RdagTemplate::new(4, 100, 0.001);
        let shaper = mgr.init_shaper(DomainId(3), template, &sys);
        assert_eq!(mgr.save(&shaper), DomainId(3));
        assert_eq!(mgr.saved_count(), 1);
        let restored = mgr.restore(DomainId(3), &sys).expect("saved context");
        assert_eq!(restored.domain(), DomainId(3));
        assert_eq!(restored.config().template, template);
        assert_eq!(mgr.saved_count(), 0);
    }

    #[test]
    fn restore_unknown_domain_is_none() {
        let mut mgr = ShaperManager::new();
        assert!(mgr.restore(DomainId(9), &sys()).is_none());
    }

    #[test]
    fn clear_removes_state() {
        let sys = sys();
        let mut mgr = ShaperManager::new();
        let shaper = mgr.init_shaper(DomainId(1), RdagTemplate::new(1, 50, 0.0), &sys);
        mgr.save(&shaper);
        assert!(mgr.clear(DomainId(1)));
        assert!(!mgr.clear(DomainId(1)));
        assert!(mgr.restore(DomainId(1), &sys).is_none());
    }

    #[test]
    #[should_panic(expected = "drained")]
    fn saving_undrained_shaper_panics() {
        use dg_mem::DomainShaper as _;
        let sys = sys();
        let mut mgr = ShaperManager::new();
        let mut shaper = mgr.init_shaper(DomainId(0), RdagTemplate::new(1, 50, 0.0), &sys);
        // Emit without completing: a request is now in flight.
        let out = shaper.tick(0, usize::MAX);
        assert!(!out.is_empty());
        mgr.save(&shaper);
    }
}
