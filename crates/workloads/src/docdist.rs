//! Document Distance (DocDist) — the paper's first victim (§6.1).
//!
//! DocDist "compares documents for similarity, computing the distance
//! between a private input document and a public reference document. \[It\]
//! precomputes a feature vector counting the frequency of each word in the
//! reference document. Upon receiving an input document, it first computes
//! a feature vector for that document, then computes the euclidean
//! distance between the input and the reference feature vectors. The
//! access pattern to the feature vectors can leak information."
//!
//! This module implements exactly that kernel over synthetic documents and
//! records its data accesses. The *secret* is the private document: its
//! word mix selects which feature-vector slots are incremented, so
//! different secrets produce different (bank- and row-visible) access
//! patterns — the channel DAGguise must close.

use dg_cpu::MemTrace;
use dg_sim::rng::DetRng;
use serde::{Deserialize, Serialize};

use crate::recorder::AccessRecorder;

/// Configuration of the DocDist victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocDistWorkload {
    /// Vocabulary size (feature vector length).
    pub vocab: u64,
    /// Words in the private input document.
    pub doc_words: u64,
    /// Secret selecting the private document's content.
    pub secret: u64,
}

impl DocDistWorkload {
    /// The configuration used by the experiment harnesses: a 512k-entry
    /// feature vector (8-byte counters → 4 MB, well past the LLC) and a
    /// document long enough to stream it.
    pub fn standard(secret: u64) -> Self {
        Self {
            vocab: 512 * 1024,
            doc_words: 60_000,
            secret,
        }
    }

    /// A small configuration for fast tests.
    pub fn small(secret: u64) -> Self {
        Self {
            vocab: 16 * 1024,
            doc_words: 2_000,
            secret,
        }
    }

    /// Runs the kernel, recording its memory behaviour.
    ///
    /// Returns the trace and the computed distance (so tests can check the
    /// algorithm actually does its job).
    pub fn record(&self) -> (MemTrace, f64) {
        let mut rec = AccessRecorder::new();
        let counter_bytes = 8u64;

        // Public reference feature vector, precomputed (its construction is
        // not secret-dependent, but its accesses during the distance phase
        // are part of the workload).
        let ref_base = rec.alloc(self.vocab * counter_bytes);
        // Private input feature vector.
        let in_base = rec.alloc(self.vocab * counter_bytes);

        // The reference counts are a fixed pseudo-document.
        let mut ref_counts = vec![0u64; self.vocab as usize];
        let mut ref_rng = DetRng::new(0xD0C_D157);
        for _ in 0..self.doc_words {
            let w = zipf_word(&mut ref_rng, self.vocab);
            ref_counts[w as usize] += 1;
        }

        // Phase 1: build the input document's feature vector. Each word is
        // hashed into the vector; the increment is a load + store to the
        // counter — the secret-dependent access pattern.
        let mut in_counts = vec![0u64; self.vocab as usize];
        let mut doc_rng = DetRng::new(self.secret.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        for _ in 0..self.doc_words {
            let w = zipf_word(&mut doc_rng, self.vocab);
            rec.compute(45); // read characters, tokenize, hash the word
            let addr = in_base + w * counter_bytes;
            rec.load(addr);
            rec.compute(3);
            rec.store(addr);
            in_counts[w as usize] += 1;
        }

        // Phase 2: euclidean distance — a linear stream over both vectors.
        let mut sum_sq = 0f64;
        for w in 0..self.vocab {
            rec.compute(9); // subtract, square, accumulate (scalar fp)
            rec.load(in_base + w * counter_bytes);
            rec.load(ref_base + w * counter_bytes);
            let d = in_counts[w as usize] as f64 - ref_counts[w as usize] as f64;
            sum_sq += d * d;
        }
        rec.compute(20);
        (rec.finish(), sum_sq.sqrt())
    }
}

/// Draws a word index with a Zipf-like distribution (documents reuse a
/// small set of words heavily), implemented as the min of two uniforms
/// biased by a secret-dependent offset.
fn zipf_word(rng: &mut DetRng, vocab: u64) -> u64 {
    let a = rng.next_below(vocab);
    let b = rng.next_below(vocab);
    a.min(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_a_distance() {
        let (trace, dist) = DocDistWorkload::small(1).record();
        assert!(dist > 0.0);
        assert!(!trace.is_empty());
        // Build phase: 2 accesses per word; distance phase: 2 per slot.
        assert_eq!(trace.len() as u64, 2 * 2_000 + 2 * 16 * 1024);
    }

    #[test]
    fn same_secret_same_trace() {
        let (a, da) = DocDistWorkload::small(7).record();
        let (b, db) = DocDistWorkload::small(7).record();
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn different_secrets_different_access_patterns() {
        let (a, _) = DocDistWorkload::small(0).record();
        let (b, _) = DocDistWorkload::small(1).record();
        assert_ne!(a, b, "the secret must shape the access pattern");
        // Same *shape* (count) — only addresses/order differ.
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn distance_reflects_document_similarity() {
        // The reference pseudo-document is drawn with seed 0xD0CD157; two
        // unrelated secrets should both be far from it but finite.
        let (_, d1) = DocDistWorkload::small(123).record();
        let (_, d2) = DocDistWorkload::small(456).record();
        assert!(d1.is_finite() && d2.is_finite());
        assert!(d1 > 1.0 && d2 > 1.0);
    }

    #[test]
    fn standard_config_is_llc_sized() {
        let w = DocDistWorkload::standard(0);
        assert!(w.vocab * 8 > 2 * 1024 * 1024, "feature vector exceeds LLC");
    }
}
