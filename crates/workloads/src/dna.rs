//! DNA sequence matching — the paper's second victim (§6.1).
//!
//! "DNA sequence matching takes a private DNA sequence as input and aligns
//! it with a public DNA sequence. Specifically, the public DNA sequence is
//! divided into substrings and stored in a hash table. To do the
//! alignment, the hash table is searched for common substrings with the
//! private DNA sequence. The access pattern to the hash table can leak
//! information." (mrsFAST-style seed-and-extend alignment.)
//!
//! The kernel below builds that hash table over a pseudo-random public
//! genome, then probes it with every k-mer of the private read. Which
//! buckets are probed — and how long each chain walk is — depends on the
//! private read: the leak DAGguise must close.

use dg_cpu::MemTrace;
use dg_sim::rng::DetRng;
use serde::{Deserialize, Serialize};

use crate::recorder::AccessRecorder;

const BASES: [u8; 4] = *b"ACGT";

/// Configuration of the DNA matching victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnaWorkload {
    /// Length of the public genome in bases.
    pub genome_len: usize,
    /// k-mer length (mrsFAST uses short fixed-length seeds).
    pub k: usize,
    /// Hash table bucket count (power of two).
    pub buckets: u64,
    /// Length of the private read in bases.
    pub read_len: usize,
    /// Secret selecting the private read.
    pub secret: u64,
}

impl DnaWorkload {
    /// Harness configuration: 256k-base genome, 12-mers, 64k buckets.
    pub fn standard(secret: u64) -> Self {
        Self {
            genome_len: 256 * 1024,
            k: 12,
            buckets: 64 * 1024,
            read_len: 3_000,
            secret,
        }
    }

    /// A small configuration for fast tests.
    pub fn small(secret: u64) -> Self {
        Self {
            genome_len: 4 * 1024,
            k: 8,
            buckets: 1024,
            read_len: 200,
            secret,
        }
    }

    /// Runs the aligner, recording the probe-phase memory behaviour.
    ///
    /// Returns the trace and the number of k-mer matches found.
    pub fn record(&self) -> (MemTrace, u64) {
        assert!(
            self.buckets.is_power_of_two(),
            "buckets must be a power of two"
        );
        assert!(self.k < self.genome_len && self.k <= self.read_len);

        // Public genome.
        let mut grng = DetRng::new(0xD7A_5EED);
        let genome: Vec<u8> = (0..self.genome_len)
            .map(|_| BASES[grng.next_below(4) as usize])
            .collect();

        // Build the hash table: bucket -> list of genome positions. The
        // build phase is public (same for every secret) so it is not
        // recorded; only the secret-dependent probe phase is.
        let mut table: Vec<Vec<u32>> = vec![Vec::new(); self.buckets as usize];
        for pos in 0..=(self.genome_len - self.k) {
            let h = hash_kmer(&genome[pos..pos + self.k]) & (self.buckets - 1);
            table[h as usize].push(pos as u32);
        }

        // Private read: either a perturbed genome slice (realistic) mixed
        // with random bases selected by the secret.
        let mut rrng = DetRng::new(self.secret.wrapping_mul(0x5DEECE66D).wrapping_add(0xB));
        let start = (rrng.next_below((self.genome_len - self.read_len) as u64)) as usize;
        let read: Vec<u8> = (0..self.read_len)
            .map(|i| {
                if rrng.next_bool(0.15) {
                    BASES[rrng.next_below(4) as usize] // mutation
                } else {
                    genome[start + i]
                }
            })
            .collect();

        // Probe phase (recorded): for each k-mer of the read, hash, walk
        // the bucket chain, compare candidates.
        let mut rec = AccessRecorder::new();
        let bucket_hdr = rec.alloc(self.buckets * 16); // bucket headers
        let chain_base = rec.alloc((self.genome_len as u64) * 8); // chain nodes
        let genome_base = rec.alloc(self.genome_len as u64);

        let mut matches = 0u64;
        let mut chain_cursor = 0u64;
        for i in 0..=(self.read_len - self.k) {
            let kmer = &read[i..i + self.k];
            rec.compute(6 * self.k as u64); // extract and hash the k-mer
            let h = hash_kmer(kmer) & (self.buckets - 1);
            rec.load(bucket_hdr + h * 16);
            for &pos in &table[h as usize] {
                // Walk the chain node, then verify against the genome.
                rec.load(chain_base + chain_cursor % ((self.genome_len as u64) * 8 / 8) * 8);
                chain_cursor += 1;
                rec.compute(14);
                rec.load(genome_base + u64::from(pos));
                if &genome[pos as usize..pos as usize + self.k] == kmer {
                    matches += 1;
                    rec.compute(10); // record the hit
                }
            }
        }
        rec.compute(50);
        (rec.finish(), matches)
    }
}

/// FNV-1a over the k-mer bytes.
fn hash_kmer(kmer: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in kmer {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_matches_for_genome_derived_reads() {
        let (trace, matches) = DnaWorkload::small(5).record();
        assert!(matches > 0, "a mostly-unmutated read must match somewhere");
        assert!(!trace.is_empty());
    }

    #[test]
    fn deterministic_per_secret() {
        let (a, ma) = DnaWorkload::small(9).record();
        let (b, mb) = DnaWorkload::small(9).record();
        assert_eq!(a, b);
        assert_eq!(ma, mb);
    }

    #[test]
    fn secret_shapes_probe_pattern() {
        let (a, _) = DnaWorkload::small(1).record();
        let (b, _) = DnaWorkload::small(2).record();
        assert_ne!(a, b);
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        let h1 = hash_kmer(b"ACGTACGT");
        let h2 = hash_kmer(b"ACGTACGA");
        assert_ne!(h1, h2);
        assert_eq!(h1, hash_kmer(b"ACGTACGT"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_buckets_rejected() {
        let mut w = DnaWorkload::small(0);
        w.buckets = 1000;
        w.record();
    }
}
