//! Victim and co-runner workloads.
//!
//! The paper evaluates DAGguise with two security-sensitive victims whose
//! memory access patterns depend on private inputs (§6.1):
//!
//! * [`docdist`] — **Document Distance**: computes the euclidean distance
//!   between feature vectors of a private input document and a public
//!   reference. The hash-indexed accesses into the feature vector leak the
//!   input's word distribution.
//! * [`dna`] — **DNA sequence matching** (mrsFAST-style): substrings of a
//!   public genome live in a hash table; aligning a *private* read probes
//!   buckets selected by the read's k-mers, leaking the read.
//!
//! Both are real (small) implementations of the algorithms, executed
//! against an [`recorder::AccessRecorder`] that captures every data-array
//! access into a [`dg_cpu::MemTrace`] for the simulated core to replay.
//!
//! Co-runners come from [`spec`]: fifteen synthetic generators named after
//! the SPEC CPU2017-rate applications used in Figures 9/10, each
//! parameterised to match the qualitative memory behaviour reported for
//! that application (memory-bound streaming for `lbm`, compute-bound for
//! `leela`, …). SPEC itself is proprietary; see DESIGN.md.

pub mod dna;
pub mod docdist;
pub mod recorder;
pub mod spec;

pub use dna::DnaWorkload;
pub use docdist::DocDistWorkload;
pub use recorder::AccessRecorder;
pub use spec::{spec_names, SpecPreset};
