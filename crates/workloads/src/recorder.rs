//! Access recording: turns an instrumented algorithm run into a
//! [`MemTrace`] the simulated core can replay.

use dg_cpu::MemTrace;
use dg_sim::types::Addr;

/// Records the memory behaviour of an instrumented kernel.
///
/// The kernel calls [`compute`](Self::compute) for arithmetic work and
/// [`load`](Self::load)/[`store`](Self::store) for each data-structure
/// access it wants visible to the memory system; the recorder assembles
/// the [`MemTrace`]. Region allocation keeps distinct data structures at
/// distinct, page-aligned base addresses so their cache and bank behaviour
/// is realistic.
#[derive(Debug, Default)]
pub struct AccessRecorder {
    trace: MemTrace,
    pending_instrs: u64,
    next_base: Addr,
}

impl AccessRecorder {
    /// Creates an empty recorder. The first allocated region starts at 1 MB
    /// (clear of the zero page).
    pub fn new() -> Self {
        Self {
            trace: MemTrace::new(),
            pending_instrs: 0,
            next_base: 1 << 20,
        }
    }

    /// Allocates a `bytes`-sized region, returning its base address.
    /// Regions are 2 MB-aligned so different structures never share a page.
    pub fn alloc(&mut self, bytes: u64) -> Addr {
        let base = self.next_base;
        let aligned = bytes.next_multiple_of(2 << 20);
        self.next_base += aligned;
        base
    }

    /// Accounts `n` arithmetic/control instructions.
    pub fn compute(&mut self, n: u64) {
        self.pending_instrs += n;
    }

    /// Records a load at `addr`.
    pub fn load(&mut self, addr: Addr) {
        self.trace.load(addr, self.pending_instrs);
        self.pending_instrs = 0;
    }

    /// Records a store at `addr`.
    pub fn store(&mut self, addr: Addr) {
        self.trace.store(addr, self.pending_instrs);
        self.pending_instrs = 0;
    }

    /// Finishes recording and returns the trace.
    pub fn finish(mut self) -> MemTrace {
        self.trace.tail_instrs = self.pending_instrs;
        self.trace
    }

    /// Accesses recorded so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty() && self.pending_instrs == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_compute() {
        let mut r = AccessRecorder::new();
        assert!(r.is_empty());
        r.compute(10);
        r.load(0x100);
        r.compute(5);
        r.store(0x200);
        r.compute(2);
        let t = r.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0].instrs_before, 10);
        assert!(!t.ops()[0].is_write);
        assert_eq!(t.ops()[1].instrs_before, 5);
        assert!(t.ops()[1].is_write);
        assert_eq!(t.tail_instrs, 2);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut r = AccessRecorder::new();
        let a = r.alloc(100);
        let b = r.alloc(5 << 20);
        let c = r.alloc(64);
        assert!(a < b && b < c);
        assert!(b - a >= 100);
        assert!(c - b >= 5 << 20);
        assert_eq!(a % (1 << 20), 0);
    }
}
