//! Synthetic SPEC CPU2017-rate co-runners.
//!
//! SPEC itself is proprietary, so the fifteen applications of Figures 9/10
//! are replaced by parameterised trace generators. Each preset fixes the
//! qualitative memory behaviour the literature reports for that
//! application: misses per kilo-instruction (MPKI), working-set size,
//! access regularity (streaming vs pointer-chasing), and write share.
//! What the experiments need is the *spread* — some co-runners that hammer
//! the memory controller and some that barely touch it — and a ranking
//! that matches the paper's bar charts.

use dg_cpu::MemTrace;
use dg_sim::rng::DetRng;
use serde::{Deserialize, Serialize};

/// Access regularity of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential streaming with the given stride in bytes.
    Stream {
        /// Stride between consecutive accesses.
        stride: u64,
    },
    /// Uniform random accesses over the working set.
    Random,
    /// Mostly sequential with occasional random jumps.
    Mixed {
        /// Probability of a random jump per access.
        jump_prob: f64,
    },
}

/// A synthetic SPEC-like application preset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecPreset {
    /// Application name (matches the paper's x-axis labels).
    pub name: &'static str,
    /// LLC misses per kilo-instruction the generator targets.
    pub mpki: f64,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Access regularity.
    pub pattern: AccessPattern,
    /// Fraction of memory operations that are stores.
    pub write_share: f64,
}

/// The fifteen SPEC CPU2017-rate applications of Figure 9, with
/// memory-intensity parameters reflecting their published characterisation
/// (memory-bound: lbm, fotonik3d, roms, cactuBSSN, cam4; moderate:
/// blender, wrf, xz, x264, nab, namd; compute-bound: deepsjeng,
/// exchange2, leela, povray).
pub const SPEC_PRESETS: [SpecPreset; 15] = [
    SpecPreset {
        name: "blender",
        mpki: 3.0,
        working_set: 24 << 20,
        pattern: AccessPattern::Mixed { jump_prob: 0.2 },
        write_share: 0.25,
    },
    SpecPreset {
        name: "cactuBSSN",
        mpki: 11.0,
        working_set: 64 << 20,
        pattern: AccessPattern::Stream { stride: 64 },
        write_share: 0.30,
    },
    SpecPreset {
        name: "cam4",
        mpki: 7.0,
        working_set: 48 << 20,
        pattern: AccessPattern::Mixed { jump_prob: 0.3 },
        write_share: 0.28,
    },
    SpecPreset {
        name: "deepsjeng",
        mpki: 0.7,
        working_set: 6 << 20,
        pattern: AccessPattern::Random,
        write_share: 0.20,
    },
    SpecPreset {
        name: "exchange2",
        mpki: 0.05,
        working_set: 1 << 20,
        pattern: AccessPattern::Random,
        write_share: 0.15,
    },
    SpecPreset {
        name: "fotonik3d",
        mpki: 14.0,
        working_set: 96 << 20,
        pattern: AccessPattern::Stream { stride: 64 },
        write_share: 0.33,
    },
    SpecPreset {
        name: "lbm",
        mpki: 20.0,
        working_set: 128 << 20,
        pattern: AccessPattern::Stream { stride: 64 },
        write_share: 0.45,
    },
    SpecPreset {
        name: "leela",
        mpki: 0.3,
        working_set: 2 << 20,
        pattern: AccessPattern::Random,
        write_share: 0.18,
    },
    SpecPreset {
        name: "nab",
        mpki: 1.5,
        working_set: 8 << 20,
        pattern: AccessPattern::Mixed { jump_prob: 0.4 },
        write_share: 0.22,
    },
    SpecPreset {
        name: "namd",
        mpki: 1.2,
        working_set: 8 << 20,
        pattern: AccessPattern::Mixed { jump_prob: 0.2 },
        write_share: 0.20,
    },
    SpecPreset {
        name: "povray",
        mpki: 0.1,
        working_set: 1 << 20,
        pattern: AccessPattern::Random,
        write_share: 0.12,
    },
    SpecPreset {
        name: "roms",
        mpki: 12.0,
        working_set: 80 << 20,
        pattern: AccessPattern::Stream { stride: 64 },
        write_share: 0.35,
    },
    SpecPreset {
        name: "wrf",
        mpki: 5.0,
        working_set: 32 << 20,
        pattern: AccessPattern::Mixed { jump_prob: 0.25 },
        write_share: 0.30,
    },
    SpecPreset {
        name: "x264",
        mpki: 1.8,
        working_set: 12 << 20,
        pattern: AccessPattern::Stream { stride: 128 },
        write_share: 0.35,
    },
    SpecPreset {
        name: "xz",
        mpki: 4.0,
        working_set: 32 << 20,
        pattern: AccessPattern::Random,
        write_share: 0.25,
    },
];

/// Names of the fifteen presets, in Figure 9 order.
pub fn spec_names() -> Vec<&'static str> {
    SPEC_PRESETS.iter().map(|p| p.name).collect()
}

impl SpecPreset {
    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<SpecPreset> {
        SPEC_PRESETS.iter().copied().find(|p| p.name == name)
    }

    /// Generates a trace of roughly `instructions` instructions.
    ///
    /// The generator emits one memory operation every `1000 / mpki`
    /// instructions (LLC-missing ones, given the working set exceeds the
    /// LLC for memory-bound presets) at addresses following the preset's
    /// pattern, offset by `region_base` so co-running instances do not
    /// share data.
    pub fn generate(&self, instructions: u64, region_base: u64, seed: u64) -> MemTrace {
        let mut rng = DetRng::new(seed ^ 0x5bec);
        let mut trace = MemTrace::new();
        // Instructions between memory ops. MPKI is misses/kilo-instr; our
        // generator's accesses mostly miss (big working sets), so we use it
        // directly as the op rate for memory-bound presets.
        let gap = (1000.0 / self.mpki.max(0.01)).round().max(1.0) as u64;
        let n_ops = instructions / (gap + 1);
        let lines = (self.working_set / 64).max(1);
        let mut cursor = 0u64;
        for _ in 0..n_ops {
            let line = match self.pattern {
                AccessPattern::Stream { stride } => {
                    cursor = (cursor + stride / 64) % lines;
                    cursor
                }
                AccessPattern::Random => rng.next_below(lines),
                AccessPattern::Mixed { jump_prob } => {
                    if rng.next_bool(jump_prob) {
                        cursor = rng.next_below(lines);
                    } else {
                        cursor = (cursor + 1) % lines;
                    }
                    cursor
                }
            };
            let addr = region_base + line * 64;
            if rng.next_bool(self.write_share) {
                trace.store(addr, gap);
            } else {
                trace.load(addr, gap);
            }
        }
        trace.tail_instrs = instructions.saturating_sub(n_ops * (gap + 1));
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_presets_with_unique_names() {
        let names = spec_names();
        assert_eq!(names.len(), 15);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 15);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(SpecPreset::by_name("lbm").unwrap().name, "lbm");
        assert!(SpecPreset::by_name("doom").is_none());
    }

    #[test]
    fn memory_bound_presets_emit_more_ops() {
        let lbm = SpecPreset::by_name("lbm").unwrap().generate(100_000, 0, 1);
        let leela = SpecPreset::by_name("leela")
            .unwrap()
            .generate(100_000, 0, 1);
        assert!(
            lbm.len() > leela.len() * 10,
            "lbm {} vs leela {}",
            lbm.len(),
            leela.len()
        );
    }

    #[test]
    fn instruction_budget_respected() {
        for p in &SPEC_PRESETS {
            let t = p.generate(50_000, 0, 7);
            let total = t.total_instructions();
            assert!(
                (45_000..=55_000).contains(&total),
                "{}: {total} instructions",
                p.name
            );
        }
    }

    #[test]
    fn streaming_addresses_are_sequential() {
        let t = SpecPreset::by_name("lbm")
            .unwrap()
            .generate(10_000, 1 << 30, 3);
        let reads: Vec<u64> = t.ops().iter().map(|o| o.addr).collect();
        assert!(reads.len() > 10);
        for w in reads.windows(2) {
            assert_eq!(w[1] - w[0], 64, "streaming stride");
        }
        assert!(reads[0] >= 1 << 30, "region offset respected");
    }

    #[test]
    fn determinism_per_seed() {
        let p = SpecPreset::by_name("xz").unwrap();
        assert_eq!(p.generate(10_000, 0, 5), p.generate(10_000, 0, 5));
        assert_ne!(p.generate(10_000, 0, 5), p.generate(10_000, 0, 6));
    }

    #[test]
    fn write_share_roughly_matched() {
        let p = SpecPreset::by_name("lbm").unwrap();
        let t = p.generate(500_000, 0, 11);
        let writes = t.ops().iter().filter(|o| o.is_write).count() as f64;
        let share = writes / t.len() as f64;
        assert!((share - 0.45).abs() < 0.05, "share = {share}");
    }
}
