//! Simulation clock and clock-domain arithmetic.
//!
//! The global simulation clock runs in **CPU cycles** (2.4 GHz in the paper's
//! Table 2 configuration). DRAM timing parameters and rDAG edge weights are
//! expressed in **DRAM command-bus cycles** (800 MHz for DDR3-1600); the
//! [`ClockRatio`] type converts between the two domains.

use serde::{Deserialize, Serialize};

/// A point in time or a duration, measured in global (CPU) cycles.
///
/// The simulation never runs long enough for `u64` to overflow: at 2.4 GHz a
/// `u64` covers roughly 240 years of simulated time.
pub type Cycle = u64;

/// Ratio between the CPU clock and the DRAM command clock.
///
/// For the paper's configuration (2.4 GHz cores, DDR3-1600 whose command bus
/// runs at 800 MHz) the ratio is 3 CPU cycles per DRAM cycle.
///
/// # Example
///
/// ```
/// use dg_sim::clock::ClockRatio;
///
/// let r = ClockRatio::default();
/// assert_eq!(r.cpu_per_dram(), 3);
/// assert_eq!(r.dram_to_cpu(100), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockRatio {
    cpu_per_dram: u64,
}

impl ClockRatio {
    /// Creates a new ratio of `cpu_per_dram` CPU cycles per DRAM cycle.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_per_dram` is zero.
    pub fn new(cpu_per_dram: u64) -> Self {
        assert!(cpu_per_dram > 0, "clock ratio must be positive");
        Self { cpu_per_dram }
    }

    /// Number of CPU cycles per DRAM command-bus cycle.
    pub fn cpu_per_dram(self) -> u64 {
        self.cpu_per_dram
    }

    /// Converts a duration in DRAM cycles to CPU cycles.
    pub fn dram_to_cpu(self, dram_cycles: u64) -> Cycle {
        dram_cycles * self.cpu_per_dram
    }

    /// Converts a duration in CPU cycles to whole DRAM cycles, rounding up.
    ///
    /// Rounding up is the conservative direction for timing constraints: a
    /// constraint of `x` CPU cycles is satisfied after `ceil(x / ratio)` DRAM
    /// cycles.
    pub fn cpu_to_dram_ceil(self, cpu_cycles: Cycle) -> u64 {
        cpu_cycles.div_ceil(self.cpu_per_dram)
    }

    /// Returns true when `cycle` falls on a DRAM command-bus edge.
    pub fn is_dram_edge(self, cycle: Cycle) -> bool {
        cycle.is_multiple_of(self.cpu_per_dram)
    }

    /// The first DRAM command-bus edge at or after `cycle`.
    pub fn next_dram_edge(self, cycle: Cycle) -> Cycle {
        cycle.next_multiple_of(self.cpu_per_dram)
    }
}

impl Default for ClockRatio {
    /// The Table 2 configuration: 2.4 GHz cores with an 800 MHz DRAM command
    /// bus, i.e. 3 CPU cycles per DRAM cycle.
    fn default() -> Self {
        Self::new(3)
    }
}

/// Merges two optional next-event times, keeping the earlier one.
///
/// `None` means "no self-scheduled event": a component that only reacts to
/// external input contributes nothing to the merge. Used by the event-driven
/// engine to fold per-component `next_event_at` answers into a single warp
/// target.
///
/// # Example
///
/// ```
/// use dg_sim::clock::earliest_event;
///
/// assert_eq!(earliest_event(None, None), None);
/// assert_eq!(earliest_event(Some(7), None), Some(7));
/// assert_eq!(earliest_event(Some(7), Some(3)), Some(3));
/// ```
pub fn earliest_event(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Converts a bandwidth expressed in bytes per CPU cycle into GB/s for the
/// paper's 2.4 GHz clock.
///
/// Figure 7(b) of the paper reports allocated bandwidth in GB/s; this helper
/// keeps the conversion in one place.
///
/// # Example
///
/// ```
/// use dg_sim::clock::bytes_per_cycle_to_gbps;
///
/// // One 64-byte line every 30 CPU cycles at 2.4GHz is ~5.12 GB/s.
/// let gbps = bytes_per_cycle_to_gbps(64.0 / 30.0, 2.4e9);
/// assert!((gbps - 5.12).abs() < 0.01);
/// ```
pub fn bytes_per_cycle_to_gbps(bytes_per_cycle: f64, clock_hz: f64) -> f64 {
    bytes_per_cycle * clock_hz / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratio_is_three() {
        assert_eq!(ClockRatio::default().cpu_per_dram(), 3);
    }

    #[test]
    fn dram_to_cpu_scales() {
        let r = ClockRatio::new(3);
        assert_eq!(r.dram_to_cpu(0), 0);
        assert_eq!(r.dram_to_cpu(39), 117);
    }

    #[test]
    fn cpu_to_dram_rounds_up() {
        let r = ClockRatio::new(3);
        assert_eq!(r.cpu_to_dram_ceil(0), 0);
        assert_eq!(r.cpu_to_dram_ceil(1), 1);
        assert_eq!(r.cpu_to_dram_ceil(3), 1);
        assert_eq!(r.cpu_to_dram_ceil(4), 2);
    }

    #[test]
    fn dram_edges() {
        let r = ClockRatio::new(3);
        assert!(r.is_dram_edge(0));
        assert!(!r.is_dram_edge(1));
        assert!(!r.is_dram_edge(2));
        assert!(r.is_dram_edge(3));
        assert_eq!(r.next_dram_edge(0), 0);
        assert_eq!(r.next_dram_edge(1), 3);
        assert_eq!(r.next_dram_edge(3), 3);
        assert_eq!(r.next_dram_edge(4), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_panics() {
        let _ = ClockRatio::new(0);
    }

    #[test]
    fn bandwidth_conversion() {
        // 1 byte per cycle at 1 GHz is exactly 1 GB/s.
        assert!((bytes_per_cycle_to_gbps(1.0, 1e9) - 1.0).abs() < 1e-12);
    }
}
