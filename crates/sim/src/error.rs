//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value is inconsistent or out of range.
    InvalidConfig(String),
    /// A component queue overflowed where the model requires back-pressure
    /// instead (indicates a wiring bug, not a workload property).
    QueueOverflow(&'static str),
    /// The simulation exceeded its cycle budget without completing.
    Deadline { budget: u64 },
    /// A request id was not found where it was expected.
    UnknownRequest(u64),
    /// The run was cancelled by a supervisor (e.g. a wall-clock timeout)
    /// before the simulation completed. Unlike [`SimError::Deadline`],
    /// aborts are host-dependent and are never retried.
    Aborted(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::QueueOverflow(which) => write!(f, "queue overflow in {which}"),
            SimError::Deadline { budget } => {
                write!(f, "simulation exceeded cycle budget of {budget}")
            }
            SimError::UnknownRequest(id) => write!(f, "unknown request id {id}"),
            SimError::Aborted(why) => write!(f, "run aborted: {why}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::InvalidConfig("bad".into()).to_string(),
            "invalid configuration: bad"
        );
        assert_eq!(
            SimError::QueueOverflow("txq").to_string(),
            "queue overflow in txq"
        );
        assert_eq!(
            SimError::Deadline { budget: 5 }.to_string(),
            "simulation exceeded cycle budget of 5"
        );
        assert_eq!(
            SimError::UnknownRequest(9).to_string(),
            "unknown request id 9"
        );
        assert_eq!(
            SimError::Aborted("wall-clock timeout".into()).to_string(),
            "run aborted: wall-clock timeout"
        );
    }

    #[test]
    fn error_trait_object() {
        fn take(_: &dyn Error) {}
        take(&SimError::QueueOverflow("x"));
    }
}
