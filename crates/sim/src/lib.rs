//! Foundation crate for the DAGguise reproduction.
//!
//! This crate provides the pieces every other crate in the workspace builds
//! on: the simulation clock and clock-domain arithmetic ([`clock`]), the
//! shared memory-request/response vocabulary ([`types`]), a deterministic
//! seedable random number generator ([`rng`]), statistics collectors
//! ([`stats`]), and the architecture configuration from Table 2 of the paper
//! ([`config`]).
//!
//! # Example
//!
//! ```
//! use dg_sim::config::SystemConfig;
//! use dg_sim::types::{DomainId, MemRequest, ReqType};
//!
//! let cfg = SystemConfig::two_core();
//! assert_eq!(cfg.cores, 2);
//! let req = MemRequest::read(DomainId(0), 0x1000, 0);
//! assert_eq!(req.req_type, ReqType::Read);
//! ```

pub mod clock;
pub mod config;
pub mod error;
pub mod rng;
pub mod stats;
pub mod types;

pub use clock::{ClockRatio, Cycle};
pub use config::SystemConfig;
pub use error::SimError;
pub use rng::DetRng;
pub use types::{Addr, DomainId, MemRequest, MemResponse, ReqId, ReqKind, ReqType};
