//! Architecture configuration, mirroring Table 2 of the paper.
//!
//! All defaults reproduce the paper's baseline: 2/8 out-of-order cores at
//! 2.4 GHz, a three-level cache hierarchy, and a single-channel, single-rank,
//! eight-bank DDR3-1600 DRAM with the exact timing parameters listed in
//! Table 2.

use crate::clock::ClockRatio;
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Core parameters (Table 2, "Core" row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue width (instructions per cycle).
    pub issue_width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_entries: u32,
    /// Maximum outstanding LLC misses per core (MSHR-limited MLP).
    pub max_outstanding_misses: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            issue_width: 8,
            rob_entries: 192,
            max_outstanding_misses: 16,
            clock_hz: 2.4e9,
        }
    }
}

/// Parameters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Round-trip hit latency in CPU cycles.
    pub hit_latency: u64,
}

impl CacheLevelConfig {
    /// Number of sets implied by size, line and ways.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }
}

/// Cache hierarchy parameters (Table 2, cache rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Private L1 data cache: 32 KB, 8-way, 4-cycle round trip.
    pub l1: CacheLevelConfig,
    /// Private L2: 256 KB, 16-way, 13-cycle round trip.
    pub l2: CacheLevelConfig,
    /// Shared L3: 1 MB per core, 16-way, 42-cycle round trip.
    pub l3_per_core: CacheLevelConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                hit_latency: 4,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                ways: 16,
                hit_latency: 13,
            },
            l3_per_core: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                line_bytes: 64,
                ways: 16,
                hit_latency: 42,
            },
        }
    }
}

/// DRAM timing parameters in **DRAM command-bus cycles**, exactly as listed
/// in Table 2 (DDR3-1600).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct DramTiming {
    /// ACT-to-ACT delay, same bank (row cycle time).
    pub tRC: u64,
    /// ACT-to-RD/WR delay (RAS-to-CAS).
    pub tRCD: u64,
    /// ACT-to-PRE minimum (row active time).
    pub tRAS: u64,
    /// Four-activate window.
    pub tFAW: u64,
    /// Write recovery: end of write data to PRE.
    pub tWR: u64,
    /// PRE-to-ACT delay (row precharge).
    pub tRP: u64,
    /// Rank-to-rank switch (single rank: read-to-write bus turnaround pad).
    pub tRTRS: u64,
    /// CAS latency: RD to first data beat.
    pub tCAS: u64,
    /// Read-to-PRE delay.
    pub tRTP: u64,
    /// Data burst length on the bus (cycles per 64B line).
    pub tBURST: u64,
    /// CAS-to-CAS delay (column command spacing).
    pub tCCD: u64,
    /// Write-to-read turnaround, same rank.
    pub tWTR: u64,
    /// ACT-to-ACT delay, different banks same rank.
    pub tRRD: u64,
    /// Refresh interval in DRAM cycles (7.8 us at 800 MHz).
    pub tREFI: u64,
    /// Refresh cycle time in DRAM cycles (260 ns at 800 MHz).
    pub tRFC: u64,
    /// Write CAS latency: WR command to first data beat.
    pub tCWD: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        Self {
            tRC: 39,
            tRCD: 11,
            tRAS: 28,
            tFAW: 24,
            tWR: 12,
            tRP: 11,
            tRTRS: 2,
            tCAS: 11,
            tRTP: 6,
            tBURST: 4,
            tCCD: 4,
            tWTR: 6,
            tRRD: 5,
            // 7.8us * 800MHz = 6240 DRAM cycles.
            tREFI: 6240,
            // 260ns * 800MHz = 208 DRAM cycles.
            tRFC: 208,
            // DDR3: CWL is typically CL-1.
            tCWD: 10,
        }
    }
}

impl DramTiming {
    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a constraint that the bank
    /// state machine relies on is violated (e.g. `tRC < tRAS + tRP`).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tRC < self.tRAS + self.tRP {
            return Err(SimError::InvalidConfig(format!(
                "tRC ({}) must cover tRAS + tRP ({})",
                self.tRC,
                self.tRAS + self.tRP
            )));
        }
        if self.tRAS < self.tRCD {
            return Err(SimError::InvalidConfig("tRAS must be at least tRCD".into()));
        }
        if self.tBURST == 0 || self.tCAS == 0 || self.tRCD == 0 || self.tRP == 0 {
            return Err(SimError::InvalidConfig(
                "core timing parameters must be positive".into(),
            ));
        }
        if self.tFAW < self.tRRD {
            return Err(SimError::InvalidConfig("tFAW must be at least tRRD".into()));
        }
        if self.tRFC >= self.tREFI {
            return Err(SimError::InvalidConfig(
                "tRFC must be smaller than tREFI".into(),
            ));
        }
        Ok(())
    }

    /// Minimum closed-row read service time in DRAM cycles:
    /// ACT → (tRCD) → RD → (tCAS + tBURST) → data done, with the bank busy
    /// until the auto-precharge completes.
    pub fn closed_row_read_latency(&self) -> u64 {
        self.tRCD + self.tCAS + self.tBURST
    }
}

/// DRAM organization (Table 2, "DRAM Configuration").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramOrg {
    /// Number of channels (paper: 1).
    pub channels: u32,
    /// Ranks per channel (paper: 1).
    pub ranks: u32,
    /// Banks per rank (paper: 8).
    pub banks: u32,
    /// Row size (DRAM page) in bytes.
    pub row_bytes: u64,
    /// Total capacity in bytes (4 GB for 2-core, 8 GB for 8-core).
    pub capacity_bytes: u64,
    /// Cache-line / transaction size in bytes.
    pub line_bytes: u64,
}

impl Default for DramOrg {
    fn default() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            banks: 8,
            row_bytes: 8 * 1024,
            capacity_bytes: 4 * 1024 * 1024 * 1024,
            line_bytes: 64,
        }
    }
}

/// Row-buffer management policy (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Rows stay open after access; temporally adjacent same-row accesses
    /// hit in the row buffer. Used by the insecure baseline.
    Open,
    /// Rows are precharged immediately after each access, hiding row-buffer
    /// state. Required for DAGguise and FS-BTA (§6.1).
    Closed,
}

/// Memory controller queue sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Global transaction queue capacity.
    pub transaction_queue: usize,
    /// Per-bank command queue capacity.
    pub per_bank_queue: usize,
    /// Per-protected-domain private (shaper) queue capacity (§6.4: 8).
    pub private_queue: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            transaction_queue: 32,
            per_bank_queue: 16,
            private_queue: 8,
        }
    }
}

/// Complete system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy.
    pub cache: CacheConfig,
    /// DRAM organization.
    pub dram_org: DramOrg,
    /// DRAM timing in DRAM cycles.
    pub timing: DramTiming,
    /// CPU:DRAM clock ratio.
    pub clock_ratio: ClockRatio,
    /// Queue capacities.
    pub queues: QueueConfig,
    /// Row-buffer policy.
    pub row_policy: RowPolicy,
}

impl SystemConfig {
    /// The two-core configuration used in §6.2 (4 GB DRAM).
    pub fn two_core() -> Self {
        Self {
            cores: 2,
            core: CoreConfig::default(),
            cache: CacheConfig::default(),
            dram_org: DramOrg::default(),
            timing: DramTiming::default(),
            clock_ratio: ClockRatio::default(),
            queues: QueueConfig::default(),
            row_policy: RowPolicy::Open,
        }
    }

    /// The eight-core configuration used in §6.3 (8 GB DRAM).
    pub fn eight_core() -> Self {
        let mut cfg = Self::two_core();
        cfg.cores = 8;
        cfg.dram_org.capacity_bytes = 8 * 1024 * 1024 * 1024;
        cfg
    }

    /// A scale-out configuration beyond the paper's evaluation: `cores`
    /// cores over `channels` line-interleaved memory channels (1 GB of
    /// DRAM per core), the topology the sharded runtime targets.
    ///
    /// # Panics
    ///
    /// Panics unless `channels` is a nonzero power of two (bit-sliced
    /// interleaving needs exact field widths).
    pub fn scale_out(cores: usize, channels: u32) -> Self {
        assert!(
            channels.is_power_of_two(),
            "channel count must be a power of two, got {channels}"
        );
        let mut cfg = Self::two_core();
        cfg.cores = cores;
        cfg.dram_org.channels = channels;
        cfg.dram_org.capacity_bytes = cores as u64 * 1024 * 1024 * 1024;
        cfg
    }

    /// Switches to a closed-row policy (for protected configurations).
    pub fn with_row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = policy;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for inconsistent parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig("need at least one core".into()));
        }
        if !self.dram_org.banks.is_power_of_two() {
            return Err(SimError::InvalidConfig(
                "bank count must be a power of two".into(),
            ));
        }
        if !self.dram_org.channels.is_power_of_two() {
            return Err(SimError::InvalidConfig(
                "channel count must be a power of two".into(),
            ));
        }
        if !self.dram_org.line_bytes.is_power_of_two() || !self.dram_org.row_bytes.is_power_of_two()
        {
            return Err(SimError::InvalidConfig(
                "line and row sizes must be powers of two".into(),
            ));
        }
        if self.dram_org.row_bytes < self.dram_org.line_bytes {
            return Err(SimError::InvalidConfig(
                "row must hold at least one line".into(),
            ));
        }
        self.timing.validate()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::two_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_core_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.clock_hz, 2.4e9);
    }

    #[test]
    fn table2_cache_defaults() {
        let c = CacheConfig::default();
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 8);
        assert_eq!(c.l1.hit_latency, 4);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.hit_latency, 13);
        assert_eq!(c.l3_per_core.size_bytes, 1024 * 1024);
        assert_eq!(c.l3_per_core.hit_latency, 42);
        assert_eq!(c.l1.sets(), 64);
    }

    #[test]
    fn table2_dram_timing_defaults() {
        let t = DramTiming::default();
        assert_eq!(t.tRC, 39);
        assert_eq!(t.tRCD, 11);
        assert_eq!(t.tRAS, 28);
        assert_eq!(t.tFAW, 24);
        assert_eq!(t.tWR, 12);
        assert_eq!(t.tRP, 11);
        assert_eq!(t.tRTRS, 2);
        assert_eq!(t.tCAS, 11);
        assert_eq!(t.tRTP, 6);
        assert_eq!(t.tBURST, 4);
        assert_eq!(t.tCCD, 4);
        assert_eq!(t.tWTR, 6);
        assert_eq!(t.tRRD, 5);
        assert_eq!(t.tREFI, 6240);
        assert_eq!(t.tRFC, 208);
        t.validate().unwrap();
    }

    #[test]
    fn two_and_eight_core_configs() {
        let two = SystemConfig::two_core();
        assert_eq!(two.cores, 2);
        assert_eq!(two.dram_org.capacity_bytes, 4 * 1024 * 1024 * 1024);
        two.validate().unwrap();

        let eight = SystemConfig::eight_core();
        assert_eq!(eight.cores, 8);
        assert_eq!(eight.dram_org.capacity_bytes, 8 * 1024 * 1024 * 1024);
        eight.validate().unwrap();
    }

    #[test]
    fn invalid_timing_rejected() {
        let t = DramTiming {
            tRC: 10,
            ..DramTiming::default()
        };
        assert!(t.validate().is_err());

        let t = DramTiming {
            tRAS: 5,
            ..DramTiming::default()
        };
        assert!(t.validate().is_err());

        let mut t = DramTiming::default();
        t.tRFC = t.tREFI;
        assert!(t.validate().is_err());
    }

    #[test]
    fn invalid_org_rejected() {
        let mut cfg = SystemConfig::two_core();
        cfg.dram_org.banks = 6;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::two_core();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::two_core();
        cfg.dram_org.row_bytes = 32;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn closed_row_latency() {
        let t = DramTiming::default();
        assert_eq!(t.closed_row_read_latency(), 11 + 11 + 4);
    }

    #[test]
    fn row_policy_switch() {
        let cfg = SystemConfig::two_core().with_row_policy(RowPolicy::Closed);
        assert_eq!(cfg.row_policy, RowPolicy::Closed);
    }
}
