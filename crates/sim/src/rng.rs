//! Deterministic random number generation.
//!
//! Every stochastic choice in the simulator — synthetic workload addresses,
//! fake-request addresses, Camouflage interval sampling — draws from a
//! [`DetRng`], a SplitMix64 generator. Determinism matters here more than
//! statistical sophistication: experiments must be exactly reproducible from
//! a seed, and the security property tests rely on replaying identical
//! random streams across runs.

use serde::{Deserialize, Serialize};

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period over its state, and is
/// a handful of arithmetic operations per draw — ideal for a simulator inner
/// loop.
///
/// # Example
///
/// ```
/// use dg_sim::rng::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Any seed, including zero, is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique, which is unbiased enough for
    /// simulation purposes and branch-free.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a value uniformly distributed in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; useful for giving each
    /// component its own stream from one experiment seed.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        // Overwhelmingly unlikely to collide on the first 4 draws.
        let av: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut r = DetRng::new(99);
        for _ in 0..1000 {
            let v = r.next_below(17);
            assert!(v < 17);
            let w = r.next_range(5, 9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_probabilities_extremes() {
        let mut r = DetRng::new(11);
        for _ in 0..100 {
            assert!(!r.next_bool(0.0));
            assert!(r.next_bool(1.0));
        }
    }

    #[test]
    fn bool_probability_roughly_matches() {
        let mut r = DetRng::new(42);
        let hits = (0..10_000).filter(|_| r.next_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DetRng::new(7);
        let mut c = a.fork();
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_below(0);
    }

    #[test]
    fn roughly_uniform() {
        let mut r = DetRng::new(2024);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9000..11000).contains(&b), "bucket = {b}");
        }
    }
}
