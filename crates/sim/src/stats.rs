//! Statistics collectors used by every simulated component.
//!
//! The evaluation reports three families of metrics: per-core IPC normalized
//! to an insecure baseline (Figures 9/10), allocated DRAM bandwidth in GB/s
//! (Figure 7b), and request latency distributions (the receiver-observable
//! quantity in Figure 1). [`IpcMeter`], [`BandwidthMeter`] and [`Histogram`]
//! collect them respectively.

use crate::clock::Cycle;
use serde::{Deserialize, Serialize};

/// Running mean/min/max/variance of a stream of `f64` samples.
///
/// Variance uses Welford's online algorithm, which stays numerically stable
/// for long streams of near-equal samples (exactly the shape a shaped-memory
/// latency stream has).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Welford running mean.
    welford_mean: f64,
    /// Welford sum of squared deviations from the running mean.
    m2: f64,
}

impl RunningStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let delta = v - self.welford_mean;
        self.welford_mean += delta / self.count as f64;
        self.m2 += delta * (v - self.welford_mean);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (`m2 / n`), or `None` if no samples were
    /// recorded.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if no samples were
    /// recorded.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// A fixed-bucket latency histogram.
///
/// Buckets are `bucket_width`-cycle wide; samples beyond the last bucket are
/// clamped into it so the histogram never loses a sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `n_buckets` buckets of `bucket_width` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `n_buckets` is zero.
    pub fn new(bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        Self {
            bucket_width,
            buckets: vec![0; n_buckets],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = ((v / self.bucket_width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of each bucket in cycles.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Returns `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64 * self.bucket_width, c))
            .collect()
    }

    /// Approximate p-th percentile (`p` in `[0, 100]`), by bucket lower
    /// bound. Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 100.0) / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(i as u64 * self.bucket_width);
            }
        }
        Some((self.buckets.len() as u64 - 1) * self.bucket_width)
    }

    /// Merges another histogram into this one bucket-wise. The operation
    /// is associative and commutative, so per-channel (or per-shard)
    /// fragments can be combined in any grouping and yield identical
    /// totals.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ: merging histograms with
    /// different resolutions would silently mis-bin samples.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "histogram merge requires identical bucket widths"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram merge requires identical bucket counts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Instructions-per-cycle meter for one core.
///
/// # Example
///
/// ```
/// use dg_sim::stats::IpcMeter;
///
/// let mut m = IpcMeter::new();
/// m.retire(800);
/// m.set_cycles(1000);
/// assert!((m.ipc() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcMeter {
    instructions: u64,
    cycles: Cycle,
}

impl IpcMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` retired instructions.
    pub fn retire(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Sets the elapsed cycle count.
    pub fn set_cycles(&mut self, cycles: Cycle) {
        self.cycles = cycles;
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> Cycle {
        self.cycles
    }

    /// Instructions per cycle; 0 when no cycles have elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// DRAM bandwidth meter: counts bytes transferred over a window of cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthMeter {
    bytes: u64,
    cycles: Cycle,
}

impl BandwidthMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transfer of `bytes` bytes.
    pub fn transfer(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Sets the elapsed cycle count of the measurement window.
    pub fn set_cycles(&mut self, cycles: Cycle) {
        self.cycles = cycles;
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average bytes per cycle over the window; 0 when the window is empty.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes as f64 / self.cycles as f64
        }
    }

    /// Average bandwidth in GB/s for a clock of `clock_hz`.
    pub fn gbps(&self, clock_hz: f64) -> f64 {
        crate::clock::bytes_per_cycle_to_gbps(self.bytes_per_cycle(), clock_hz)
    }
}

/// Geometric mean of a slice of positive values, as used for the
/// `geomean` bars in Figures 9 and 10.
///
/// Returns `None` for an empty slice or any non-positive element.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), None);
        s.record(2.0);
        s.record(4.0);
        s.record(9.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    fn welford_variance_matches_two_pass() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &v in &samples {
            s.record(v);
        }
        // Two-pass reference: mean 5.0, population variance 4.0.
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_empty_and_single() {
        let mut s = RunningStats::new();
        assert_eq!(s.variance(), None);
        assert_eq!(s.stddev(), None);
        s.record(3.5);
        assert_eq!(s.variance(), Some(0.0));
        assert_eq!(s.stddev(), Some(0.0));
    }

    #[test]
    fn welford_stable_on_offset_data() {
        // A large constant offset defeats the naive sum-of-squares formula;
        // Welford must still report the exact variance of {0,1,2}.
        let mut s = RunningStats::new();
        for v in [1e9, 1e9 + 1.0, 1e9 + 2.0] {
            s.record(v);
        }
        assert!((s.variance().unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_clamp() {
        let mut h = Histogram::new(10, 4);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(35);
        h.record(1000); // clamped into last bucket
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets(), &[2, 1, 0, 2]);
        assert_eq!(h.nonzero(), vec![(0, 2), (10, 1), (30, 2)]);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(50.0), Some(49));
        assert_eq!(h.percentile(100.0), Some(99));
        assert_eq!(Histogram::new(1, 1).percentile(50.0), None);
    }

    #[test]
    fn ipc_meter() {
        let mut m = IpcMeter::new();
        assert_eq!(m.ipc(), 0.0);
        m.retire(100);
        m.retire(50);
        m.set_cycles(300);
        assert!((m.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(m.instructions(), 150);
        assert_eq!(m.cycles(), 300);
    }

    #[test]
    fn bandwidth_meter() {
        let mut b = BandwidthMeter::new();
        b.transfer(64);
        b.transfer(64);
        b.set_cycles(64);
        assert!((b.bytes_per_cycle() - 2.0).abs() < 1e-12);
        // 2 bytes/cycle at 1 GHz = 2 GB/s.
        assert!((b.gbps(1e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        let g = geomean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }
}
