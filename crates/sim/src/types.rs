//! The shared memory-request vocabulary used across the workspace.
//!
//! Every component — cores, caches, shapers, defenses, the memory
//! controller — exchanges [`MemRequest`] and [`MemResponse`] values. A
//! request is tagged with the [`DomainId`] of the security domain that
//! emitted it (§4.4 of the paper: "every memory request is tagged with a
//! security domain ID") and with a [`ReqKind`] distinguishing real requests
//! from the fake requests a shaper fabricates.

use crate::clock::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical memory address (byte granularity).
pub type Addr = u64;

/// Identifier of a security domain.
///
/// In the paper's threat model each core (or enclave) belongs to one security
/// domain; requests carry the domain ID so the memory controller front-end
/// can route protected domains through their private shaper queues.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DomainId(pub u16);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Unique identifier of an in-flight memory request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl ReqId {
    /// Composes a workspace-unique id from an issuer domain and a per-issuer
    /// sequence number. Cores and shapers each own the sequence space of
    /// their domain, so ids never collide across components.
    pub fn compose(domain: DomainId, seq: u64) -> Self {
        debug_assert!(seq < 1 << 48, "sequence number overflow");
        ReqId((u64::from(domain.0) << 48) | seq)
    }

    /// The domain encoded by [`compose`](Self::compose).
    pub fn domain(self) -> DomainId {
        DomainId((self.0 >> 48) as u16)
    }
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Read or write, the two transaction types the DRAM command scheduler
/// distinguishes (§4.1: "each vertex is associated with a bank ID and a tag
/// to indicate whether it is a read or write request").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqType {
    /// A read transaction (cache-line fill).
    Read,
    /// A write transaction (dirty line write-back).
    Write,
}

impl ReqType {
    /// Returns true for [`ReqType::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, ReqType::Write)
    }
}

impl fmt::Display for ReqType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReqType::Read => write!(f, "R"),
            ReqType::Write => write!(f, "W"),
        }
    }
}

/// Whether a request carries a real payload or was fabricated by a shaper to
/// preserve conformance with the defense rDAG (§4.4, "Fake Requests").
///
/// Fake requests contend for memory-controller resources exactly like real
/// ones — that indistinguishability is what makes the defense sound — but
/// their responses are consumed by the shaper instead of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReqKind {
    /// An ordinary request originating from a core.
    #[default]
    Real,
    /// A shaper-fabricated request; its response never reaches a core.
    Fake,
}

impl ReqKind {
    /// Returns true for [`ReqKind::Fake`].
    pub fn is_fake(self) -> bool {
        matches!(self, ReqKind::Fake)
    }
}

/// A memory request as seen by the memory controller front-end.
///
/// # Example
///
/// ```
/// use dg_sim::types::{DomainId, MemRequest, ReqKind, ReqType};
///
/// let r = MemRequest::read(DomainId(1), 0x40, 100);
/// assert_eq!(r.req_type, ReqType::Read);
/// assert_eq!(r.kind, ReqKind::Real);
/// assert_eq!(r.created_at, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRequest {
    /// Unique id, assigned by the issuing component (0 until assigned).
    pub id: ReqId,
    /// Security domain of the issuer.
    pub domain: DomainId,
    /// Physical byte address.
    pub addr: Addr,
    /// Read or write.
    pub req_type: ReqType,
    /// Real or shaper-fabricated.
    pub kind: ReqKind,
    /// CPU cycle at which the request was created by the core / shaper.
    pub created_at: Cycle,
}

impl MemRequest {
    /// Creates a real read request.
    pub fn read(domain: DomainId, addr: Addr, created_at: Cycle) -> Self {
        Self {
            id: ReqId(0),
            domain,
            addr,
            req_type: ReqType::Read,
            kind: ReqKind::Real,
            created_at,
        }
    }

    /// Creates a real write request.
    pub fn write(domain: DomainId, addr: Addr, created_at: Cycle) -> Self {
        Self {
            id: ReqId(0),
            domain,
            addr,
            req_type: ReqType::Write,
            kind: ReqKind::Real,
            created_at,
        }
    }

    /// Creates a fake request of the given type, as fabricated by a shaper.
    pub fn fake(domain: DomainId, addr: Addr, req_type: ReqType, created_at: Cycle) -> Self {
        Self {
            id: ReqId(0),
            domain,
            addr,
            req_type,
            kind: ReqKind::Fake,
            created_at,
        }
    }

    /// Returns a copy with the id replaced.
    pub fn with_id(mut self, id: ReqId) -> Self {
        self.id = id;
        self
    }
}

/// A completed memory transaction, reported by the memory controller when
/// the response leaves it (the *completion time* of §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemResponse {
    /// Id of the completed request.
    pub id: ReqId,
    /// Security domain of the original issuer.
    pub domain: DomainId,
    /// Address of the completed request.
    pub addr: Addr,
    /// Read or write.
    pub req_type: ReqType,
    /// Real or fake.
    pub kind: ReqKind,
    /// CPU cycle at which the request entered the memory controller
    /// transaction queue (the *arrival time* of §4.1).
    pub arrived_at: Cycle,
    /// CPU cycle at which the response left the memory controller.
    pub completed_at: Cycle,
}

impl MemResponse {
    /// Memory latency observed for this request, in CPU cycles.
    ///
    /// This is the receiver-observable quantity that memory timing side
    /// channels exploit (§2.2).
    pub fn latency(&self) -> Cycle {
        self.completed_at - self.arrived_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let r = MemRequest::read(DomainId(3), 0x1234, 7);
        assert_eq!(r.domain, DomainId(3));
        assert_eq!(r.addr, 0x1234);
        assert_eq!(r.req_type, ReqType::Read);
        assert!(!r.kind.is_fake());

        let w = MemRequest::write(DomainId(0), 0x40, 0);
        assert!(w.req_type.is_write());

        let f = MemRequest::fake(DomainId(1), 0x80, ReqType::Read, 9);
        assert!(f.kind.is_fake());
        assert_eq!(f.created_at, 9);
    }

    #[test]
    fn with_id_replaces_id() {
        let r = MemRequest::read(DomainId(0), 0, 0).with_id(ReqId(42));
        assert_eq!(r.id, ReqId(42));
    }

    #[test]
    fn response_latency() {
        let resp = MemResponse {
            id: ReqId(1),
            domain: DomainId(0),
            addr: 0,
            req_type: ReqType::Read,
            kind: ReqKind::Real,
            arrived_at: 100,
            completed_at: 190,
        };
        assert_eq!(resp.latency(), 90);
    }

    #[test]
    fn display_impls() {
        assert_eq!(DomainId(2).to_string(), "D2");
        assert_eq!(ReqId(5).to_string(), "r5");
        assert_eq!(ReqType::Read.to_string(), "R");
        assert_eq!(ReqType::Write.to_string(), "W");
    }
}
