//! The §5.3 verification recipe: bounded model checking (base step) and
//! k-induction (induction step), by exhaustive enumeration.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::model::{run, ModelConfig, Req, State};

/// A concrete violation of the indistinguishability property.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Starting state of the first run.
    pub state_a: State,
    /// Starting state of the second run.
    pub state_b: State,
    /// Transmitter inputs of the first run.
    pub tx_a: Vec<Req>,
    /// Transmitter inputs of the second run.
    pub tx_b: Vec<Req>,
    /// Shared receiver inputs.
    pub rx: Vec<Req>,
    /// First cycle at which the receiver traces differ.
    pub diverge_at: usize,
}

/// Which starting states the induction step quantifies over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateScope {
    /// Arbitrary state pairs, as written in the paper's formula. For a
    /// contending FCFS controller this is stronger than the property that
    /// actually holds: two states whose transmitter-service *phases*
    /// differ are silently distinguishable by a probe placed right at the
    /// horizon, so expect counterexamples at small k and use this scope to
    /// study where they appear.
    AllPairs,
    /// Pairs that agree on the receiver-visible projection (shaper
    /// schedule state, MC queue, bank service) and differ only in the
    /// transmitter's private queue — the standard observable-equivalence
    /// strengthening. Combined with [`crate::unwinding::check_unwinding`]
    /// (which proves the projection is preserved), this discharges the
    /// full property.
    ProjectionEqual,
}

/// Enumerates all input traces of length `n` over {none, bank0, bank1}.
fn input_traces(n: usize) -> Vec<Vec<Req>> {
    let opts: [Req; 3] = [None, Some(false), Some(true)];
    let mut out: Vec<Vec<Req>> = vec![Vec::new()];
    for _ in 0..n {
        let mut next = Vec::with_capacity(out.len() * 3);
        for t in &out {
            for o in opts {
                let mut t2 = t.clone();
                t2.push(o);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

/// **Base step**: bounded model checking of `P(S_reset, k)` — for every
/// pair of transmitter traces and every receiver trace of length `k`, the
/// receiver's response traces from reset must coincide.
///
/// Complexity is tamed by grouping: for each receiver trace, simulate all
/// transmitter traces once and demand a single common output; this covers
/// all `(ReqTx, ReqTx')` pairs without enumerating pairs.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
pub fn check_base(cfg: &ModelConfig, k: usize) -> Result<(), Box<Counterexample>> {
    let txs = input_traces(k);
    let rxs = input_traces(k);
    for rx in &rxs {
        let mut witness: Option<(&Vec<Req>, Vec<[bool; 2]>)> = None;
        for tx in &txs {
            let out = run(cfg, State::reset(), tx, rx);
            match &witness {
                None => witness = Some((tx, out)),
                Some((tx0, out0)) => {
                    if out != *out0 {
                        let diverge_at = out0
                            .iter()
                            .zip(&out)
                            .position(|(a, b)| a != b)
                            .expect("traces differ");
                        return Err(Box::new(Counterexample {
                            state_a: State::reset(),
                            state_b: State::reset(),
                            tx_a: (*tx0).clone(),
                            tx_b: tx.clone(),
                            rx: rx.clone(),
                            diverge_at,
                        }));
                    }
                }
            }
        }
    }
    Ok(())
}

/// **Induction step**: for starting-state pairs in `scope` and all inputs
/// of length `k+1`, if the receiver traces agree on the first `k` cycles
/// they must agree on cycle `k`.
///
/// Implemented with the bucket trick: every `(state, ReqTx)` run is keyed
/// by `(bucket key, ReqRx, prefix)`; all runs in a bucket must agree on
/// the final observation, which covers all pairs in the scope at once.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found (two runs in one bucket
/// disagreeing at cycle `k`).
pub fn check_induction(
    cfg: &ModelConfig,
    k: usize,
    scope: StateScope,
) -> Result<(), Box<Counterexample>> {
    let states = State::enumerate(cfg);
    let txs = input_traces(k + 1);
    let rxs = input_traces(k + 1);

    /// Bucket key: (scope key, output prefix); value: one witness run.
    type BucketKey = (u64, Vec<[bool; 2]>);
    type Witness<'a> = (State, &'a Vec<Req>, [bool; 2]);
    for rx in &rxs {
        let mut buckets: HashMap<BucketKey, Witness<'_>> = HashMap::new();
        for s in &states {
            let scope_key = match scope {
                StateScope::AllPairs => 0u64,
                StateScope::ProjectionEqual => {
                    // Hash the projection into the key so only
                    // projection-equal states share a bucket.
                    use std::collections::hash_map::DefaultHasher;
                    use std::hash::{Hash, Hasher};
                    let mut h = DefaultHasher::new();
                    s.projection().hash(&mut h);
                    h.finish()
                }
            };
            for tx in &txs {
                let out = run(cfg, *s, tx, rx);
                let (prefix, last) = (out[..k].to_vec(), out[k]);
                match buckets.get(&(scope_key, prefix.clone())) {
                    None => {
                        buckets.insert((scope_key, prefix), (*s, tx, last));
                    }
                    Some((s0, tx0, last0)) => {
                        if *last0 != last {
                            return Err(Box::new(Counterexample {
                                state_a: *s0,
                                state_b: *s,
                                tx_a: (*tx0).clone(),
                                tx_b: tx.clone(),
                                rx: rx.clone(),
                                diverge_at: k,
                            }));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Searches for the minimal `k` (up to `max_k`) at which both the base
/// and the induction step succeed, mirroring the paper's "incrementing the
/// value of k until the induction step succeeds".
///
/// Returns `Some(k)` on success, `None` if no `k ≤ max_k` works.
pub fn minimal_k(cfg: &ModelConfig, scope: StateScope, max_k: usize) -> Option<usize> {
    (1..=max_k).find(|&k| check_base(cfg, k).is_ok() && check_induction(cfg, k, scope).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ShaperKind;

    #[test]
    fn base_step_passes_for_dagguise() {
        let cfg = ModelConfig::paper(ShaperKind::Dagguise);
        for k in 1..=5 {
            assert!(check_base(&cfg, k).is_ok(), "base step failed at k={k}");
        }
    }

    #[test]
    fn base_step_catches_leaky_shaper() {
        let cfg = ModelConfig::paper(ShaperKind::LeakyForwarding);
        let mut found = false;
        for k in 1..=6 {
            if let Err(cex) = check_base(&cfg, k) {
                // The counterexample must be genuine: replay it.
                let a = run(&cfg, cex.state_a, &cex.tx_a, &cex.rx);
                let b = run(&cfg, cex.state_b, &cex.tx_b, &cex.rx);
                assert_ne!(a, b);
                assert_eq!(a[..cex.diverge_at], b[..cex.diverge_at]);
                assert_ne!(a[cex.diverge_at], b[cex.diverge_at]);
                found = true;
                break;
            }
        }
        assert!(found, "BMC must expose the leaky shaper");
    }

    #[test]
    fn induction_passes_with_projection_strengthening() {
        let cfg = ModelConfig::tiny(ShaperKind::Dagguise);
        assert!(check_induction(&cfg, 1, StateScope::ProjectionEqual).is_ok());
        assert!(check_induction(&cfg, 2, StateScope::ProjectionEqual).is_ok());
    }

    #[test]
    fn induction_all_pairs_finds_phase_counterexample() {
        // Arbitrary state pairs include transmitter-service phases the
        // receiver has not yet probed; a probe at the horizon separates
        // them, so the unstrengthened induction step fails at small k —
        // the same "k too small → counterexample" behaviour as the
        // paper's artifact (C.4).
        let cfg = ModelConfig::tiny(ShaperKind::Dagguise);
        let r = check_induction(&cfg, 1, StateScope::AllPairs);
        if let Err(cex) = r {
            let a = run(&cfg, cex.state_a, &cex.tx_a, &cex.rx);
            let b = run(&cfg, cex.state_b, &cex.tx_b, &cex.rx);
            assert_eq!(a[..1], b[..1]);
            assert_ne!(a[1], b[1]);
        }
        // (If it passes, minimal_k below documents the bound instead.)
    }

    #[test]
    fn leaky_shaper_fails_even_strengthened_induction() {
        // A saturating chain (weight 0) with two MC slots surfaces the
        // forwarded victim bank within two cycles of receiver probing.
        let cfg = ModelConfig {
            weight: 0,
            queue_cap: 1,
            latency: 1,
            mc_cap: 2,
            shaper: ShaperKind::LeakyForwarding,
        };
        let mut failed = false;
        for k in 1..=3 {
            if check_induction(&cfg, k, StateScope::ProjectionEqual).is_err()
                || check_base(&cfg, k).is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "leaky shaper must not verify");
    }

    #[test]
    fn minimal_k_exists_for_dagguise() {
        let cfg = ModelConfig::tiny(ShaperKind::Dagguise);
        let k = minimal_k(&cfg, StateScope::ProjectionEqual, 3);
        assert!(k.is_some(), "a minimal k must exist");
    }

    #[test]
    fn input_trace_enumeration() {
        assert_eq!(input_traces(0).len(), 1);
        assert_eq!(input_traces(1).len(), 3);
        assert_eq!(input_traces(3).len(), 27);
    }
}
