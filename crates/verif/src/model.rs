//! The simplified DAGguise transition system of §5.1.
//!
//! The system is a shaper followed by an FCFS memory controller with
//! constant per-bank service latency, over two banks. Inputs per cycle are
//! the transmitter's and receiver's request vectors — `Option<bank>`, i.e.
//! a valid bit and a bank ID bit, exactly the `(valid_i, bankID_i)`
//! encoding of the paper. The receiver-visible output per cycle is which
//! banks completed one of *its* requests.
//!
//! Everything is deliberately small and `Copy` so the checkers in
//! [`crate::kinduction`] and [`crate::unwinding`] can enumerate the entire
//! state space.

use serde::{Deserialize, Serialize};

/// Maximum supported MC transaction-queue capacity.
pub const MAX_MC_CAP: usize = 4;
/// Maximum supported shaper private-queue capacity.
pub const MAX_QUEUE_CAP: usize = 4;

/// A request input: `None` = no request this cycle, `Some(bank)` = a
/// request to one of the two banks.
pub type Req = Option<bool>;

/// Which shaper the model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShaperKind {
    /// The DAGguise shaper: emission times and banks come from the defense
    /// rDAG (a strictly-dependent alternating-bank chain); the private
    /// queue only selects the invisible payload.
    Dagguise,
    /// A deliberately broken strawman that forwards the *victim's own*
    /// bank when a request is queued (the Camouflage failure mode). The
    /// checkers must find counterexamples against this one.
    LeakyForwarding,
}

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Defense rDAG edge weight (cycles between a completion and the next
    /// prescribed emission).
    pub weight: u8,
    /// Shaper private queue capacity.
    pub queue_cap: u8,
    /// Constant per-bank service latency (the paper uses 2).
    pub latency: u8,
    /// MC transaction queue capacity.
    pub mc_cap: u8,
    /// Which shaper to model.
    pub shaper: ShaperKind,
}

impl ModelConfig {
    /// The configuration mirroring the paper's §5 model: latency 2, a
    /// strict-chain defense rDAG.
    pub fn paper(shaper: ShaperKind) -> Self {
        Self {
            weight: 1,
            queue_cap: 2,
            latency: 2,
            mc_cap: 2,
            shaper,
        }
    }

    /// A minimal configuration for fast exhaustive induction sweeps.
    pub fn tiny(shaper: ShaperKind) -> Self {
        Self {
            weight: 1,
            queue_cap: 1,
            latency: 1,
            mc_cap: 1,
            shaper,
        }
    }

    fn check(&self) {
        assert!(self.mc_cap as usize <= MAX_MC_CAP, "mc_cap too large");
        assert!(
            self.queue_cap as usize <= MAX_QUEUE_CAP,
            "queue_cap too large"
        );
        assert!(self.latency >= 1, "latency must be at least 1");
    }
}

/// An MC transaction-queue entry: owner (true = transmitter/shaper) and
/// bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct McEntry {
    /// True when the entry belongs to the shaper (transmitter side).
    pub from_tx: bool,
    /// Target bank.
    pub bank: bool,
}

/// The receiver-visible projection of a [`State`]: per-bank service,
/// the MC queue, and the shaper's schedule state — everything except the
/// shaper's private queue contents.
pub type Projection = (
    [Option<(bool, u8)>; 2],
    [McEntry; MAX_MC_CAP],
    u8,
    bool,
    u8,
    bool,
);

/// The complete system state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct State {
    /// Shaper: a request is in flight (the strict chain allows one).
    pub waiting: bool,
    /// Shaper: cycles until the next prescribed emission (when not
    /// waiting).
    pub counter: u8,
    /// Shaper: bank of the next rDAG vertex (the chain alternates banks).
    pub vertex: bool,
    /// Shaper private queue: bank bits of buffered victim requests
    /// (index 0 = front).
    pub queue: [bool; MAX_QUEUE_CAP],
    /// Shaper private queue occupancy.
    pub queue_len: u8,
    /// MC transaction queue (index 0 = oldest).
    pub mcq: [McEntry; MAX_MC_CAP],
    /// MC queue occupancy.
    pub mcq_len: u8,
    /// Per-bank service: `Some((from_tx, remaining))`.
    pub service: [Option<(bool, u8)>; 2],
}

impl State {
    /// The reset state.
    pub fn reset() -> Self {
        Self {
            waiting: false,
            counter: 0,
            vertex: false,
            queue: [false; MAX_QUEUE_CAP],
            queue_len: 0,
            mcq: [McEntry::default(); MAX_MC_CAP],
            mcq_len: 0,
            service: [None; 2],
        }
    }

    /// The receiver-visible projection: everything except the shaper's
    /// private queue contents. The unwinding proof shows the projection's
    /// evolution and the receiver's outputs depend only on this projection
    /// and the receiver's own inputs.
    pub fn projection(&self) -> Projection {
        (
            self.service,
            self.mcq,
            self.mcq_len,
            self.waiting,
            self.counter,
            self.vertex,
        )
    }

    /// Enumerates every state within the configuration's bounds (reachable
    /// or not — k-induction quantifies over arbitrary states).
    pub fn enumerate(cfg: &ModelConfig) -> Vec<State> {
        cfg.check();
        let mut out = Vec::new();
        let service_opts = |latency: u8| -> Vec<Option<(bool, u8)>> {
            let mut v = vec![None];
            for from_tx in [false, true] {
                for rem in 1..=latency {
                    v.push(Some((from_tx, rem)));
                }
            }
            v
        };
        let svc = service_opts(cfg.latency);
        for waiting in [false, true] {
            for counter in 0..=cfg.weight {
                for vertex in [false, true] {
                    for queue_len in 0..=cfg.queue_cap {
                        for qbits in 0..(1u32 << queue_len) {
                            for mcq_len in 0..=cfg.mc_cap {
                                for mbits in 0..(1u32 << (2 * mcq_len)) {
                                    for s0 in &svc {
                                        for s1 in &svc {
                                            let mut st = State::reset();
                                            st.waiting = waiting;
                                            st.counter = counter;
                                            st.vertex = vertex;
                                            st.queue_len = queue_len;
                                            for i in 0..queue_len as usize {
                                                st.queue[i] = (qbits >> i) & 1 == 1;
                                            }
                                            st.mcq_len = mcq_len;
                                            for i in 0..mcq_len as usize {
                                                st.mcq[i] = McEntry {
                                                    from_tx: (mbits >> (2 * i)) & 1 == 1,
                                                    bank: (mbits >> (2 * i + 1)) & 1 == 1,
                                                };
                                            }
                                            st.service = [*s0, *s1];
                                            out.push(st);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn mcq_push(&mut self, e: McEntry, cap: u8) -> bool {
        if self.mcq_len >= cap {
            return false;
        }
        self.mcq[self.mcq_len as usize] = e;
        self.mcq_len += 1;
        true
    }

    fn mcq_pop_first_bank(&mut self, bank: bool) -> Option<McEntry> {
        let len = self.mcq_len as usize;
        let idx = (0..len).find(|&i| self.mcq[i].bank == bank)?;
        let e = self.mcq[idx];
        for i in idx..len - 1 {
            self.mcq[i] = self.mcq[i + 1];
        }
        self.mcq_len -= 1;
        self.mcq[self.mcq_len as usize] = McEntry::default();
        Some(e)
    }

    fn queue_pop_front(&mut self) -> Option<bool> {
        if self.queue_len == 0 {
            return None;
        }
        let b = self.queue[0];
        for i in 0..self.queue_len as usize - 1 {
            self.queue[i] = self.queue[i + 1];
        }
        self.queue_len -= 1;
        self.queue[self.queue_len as usize] = false;
        Some(b)
    }

    fn queue_pop_matching(&mut self, bank: bool) -> Option<bool> {
        let len = self.queue_len as usize;
        let idx = (0..len).find(|&i| self.queue[i] == bank)?;
        let b = self.queue[idx];
        for i in idx..len - 1 {
            self.queue[i] = self.queue[i + 1];
        }
        self.queue_len -= 1;
        self.queue[self.queue_len as usize] = false;
        Some(b)
    }
}

/// Per-cycle outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StepOutput {
    /// Receiver completions this cycle, per bank — the trace the security
    /// property constrains.
    pub resp_rx: [bool; 2],
    /// Transmitter-side completions (not part of the property).
    pub resp_tx: [bool; 2],
}

/// Advances the system one cycle.
pub fn step(cfg: &ModelConfig, s: &mut State, req_tx: Req, req_rx: Req) -> StepOutput {
    let mut out = StepOutput::default();

    // 1. Service progress and completions.
    for bank in 0..2 {
        if let Some((from_tx, rem)) = s.service[bank] {
            let rem = rem - 1;
            if rem == 0 {
                s.service[bank] = None;
                if from_tx {
                    out.resp_tx[bank] = true;
                    // The chain's next vertex becomes due `weight` cycles
                    // after this completion.
                    s.waiting = false;
                    s.counter = cfg.weight;
                } else {
                    out.resp_rx[bank] = true;
                }
            } else {
                s.service[bank] = Some((from_tx, rem));
            }
        }
    }

    // 2. Receiver request enters the MC queue (dropped when full — the
    //    receiver sees its own drop through the missing response, and the
    //    occupancy causing it is independent of the transmitter's secret).
    if let Some(bank) = req_rx {
        s.mcq_push(
            McEntry {
                from_tx: false,
                bank,
            },
            cfg.mc_cap,
        );
    }

    // 3. Transmitter request enters the shaper's private queue
    //    (back-pressure drop at capacity; invisible outside the domain).
    if let Some(bank) = req_tx {
        if s.queue_len < cfg.queue_cap {
            s.queue[s.queue_len as usize] = bank;
            s.queue_len += 1;
        }
    }

    // 4. Shaper emission, as prescribed by the defense rDAG.
    if !s.waiting {
        if s.counter > 0 {
            s.counter -= 1;
        } else if s.mcq_len < cfg.mc_cap {
            let bank = match cfg.shaper {
                ShaperKind::Dagguise => {
                    // Bank comes from the rDAG vertex; a matching queued
                    // victim request is consumed invisibly.
                    let b = s.vertex;
                    let _ = s.queue_pop_matching(b);
                    b
                }
                ShaperKind::LeakyForwarding => {
                    // Broken: the victim's own bank escapes to the MC.
                    s.queue_pop_front().unwrap_or(s.vertex)
                }
            };
            s.mcq_push(
                McEntry {
                    from_tx: true,
                    bank,
                },
                cfg.mc_cap,
            );
            s.waiting = true;
            s.vertex = !s.vertex;
        }
        // MC queue full: the emission stays due (stall), which depends
        // only on receiver-visible congestion.
    }

    // 5. Issue to idle banks, FCFS per bank.
    for bank in [false, true] {
        let idx = usize::from(bank);
        if s.service[idx].is_none() {
            if let Some(e) = s.mcq_pop_first_bank(bank) {
                s.service[idx] = Some((e.from_tx, cfg.latency));
            }
        }
    }

    out
}

/// Simulates `inputs` cycles from `start`, returning the receiver trace.
pub fn run(cfg: &ModelConfig, start: State, tx: &[Req], rx: &[Req]) -> Vec<[bool; 2]> {
    assert_eq!(tx.len(), rx.len(), "input traces must align");
    let mut s = start;
    tx.iter()
        .zip(rx)
        .map(|(&t, &r)| step(cfg, &mut s, t, r).resp_rx)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::paper(ShaperKind::Dagguise)
    }

    #[test]
    fn reset_then_shaper_emits_fake_chain() {
        let c = cfg();
        let mut s = State::reset();
        // Cycle 0: counter 0 → emit a fake to bank 0 (vertex), issue.
        let o = step(&c, &mut s, None, None);
        assert_eq!(o.resp_rx, [false, false]);
        assert!(s.waiting);
        assert_eq!(s.service[0], Some((true, 2)));
        // Cycle 1: service progresses.
        step(&c, &mut s, None, None);
        assert_eq!(s.service[0], Some((true, 1)));
        // Cycle 2: tx completion; the counter reloads to the weight and is
        // consumed the same cycle, so the next emission lands exactly
        // `weight` cycles after the completion.
        let o = step(&c, &mut s, None, None);
        assert_eq!(o.resp_tx, [true, false]);
        assert!(!s.waiting);
        assert_eq!(s.counter, 0);
        // Cycle 3 (= completion + weight): the chain emits its next vertex,
        // alternated to bank 1.
        step(&c, &mut s, None, None);
        assert!(s.waiting);
        assert_eq!(s.service[1], Some((true, 2)));
    }

    #[test]
    fn rx_request_gets_served() {
        let c = cfg();
        let mut s = State::reset();
        let outs = run(
            &c,
            s,
            &[None; 8],
            &[Some(true), None, None, None, None, None, None, None],
        );
        // The rx request to bank 1 is served in parallel with the shaper's
        // bank-0 fake: completes after latency 2 (entered at cycle 0,
        // issued same cycle, completes on cycle 2).
        assert!(outs.iter().any(|o| o[1]), "{outs:?}");
        let _ = &mut s;
    }

    #[test]
    fn banks_serve_in_parallel() {
        let c = cfg();
        let s = State::reset();
        // rx hits bank 1 while the shaper chain occupies bank 0.
        let rx: Vec<Req> = vec![Some(true); 8];
        let outs = run(&c, s, &[None; 8], &rx);
        let rx_completions: usize = outs.iter().filter(|o| o[1]).count();
        assert!(rx_completions >= 3, "bank parallelism: {outs:?}");
    }

    #[test]
    fn enumeration_counts_and_contains_reset() {
        let c = ModelConfig::tiny(ShaperKind::Dagguise);
        let states = State::enumerate(&c);
        // waiting(2) × counter(2) × vertex(2) × queue(1+2) × mcq(1+4) ×
        // service(3each → 9) = 2*2*2*3*5*9 = 1080.
        assert_eq!(states.len(), 1080);
        assert!(states.contains(&State::reset()));
        // All distinct.
        let set: std::collections::HashSet<_> = states.iter().collect();
        assert_eq!(set.len(), states.len());
    }

    #[test]
    fn dagguise_output_independent_of_tx_inputs_smoke() {
        let c = cfg();
        let rx: Vec<Req> = vec![
            Some(false),
            None,
            Some(true),
            None,
            Some(false),
            None,
            None,
            None,
        ];
        let quiet = run(&c, State::reset(), &[None; 8], &rx);
        let busy_tx: Vec<Req> = vec![Some(true); 8];
        let busy = run(&c, State::reset(), &busy_tx, &rx);
        assert_eq!(quiet, busy, "receiver trace must not depend on tx");
    }

    #[test]
    fn leaky_shaper_leaks_smoke() {
        let c = ModelConfig::paper(ShaperKind::LeakyForwarding);
        let rx: Vec<Req> = vec![Some(false); 10];
        let tx_a: Vec<Req> = vec![Some(false); 10]; // victim hammers bank 0
        let tx_b: Vec<Req> = vec![Some(true); 10]; // victim hammers bank 1
        let a = run(&c, State::reset(), &tx_a, &rx);
        let b = run(&c, State::reset(), &tx_b, &rx);
        assert_ne!(a, b, "the strawman must leak the victim's bank");
    }

    #[test]
    fn queue_helpers() {
        let mut s = State::reset();
        s.queue = [true, false, true, false];
        s.queue_len = 3;
        assert_eq!(s.queue_pop_matching(false), Some(false));
        assert_eq!(s.queue_len, 2);
        assert!(s.queue[0]);
        assert!(s.queue[1]);
        assert_eq!(s.queue_pop_front(), Some(true));
        assert_eq!(s.queue_pop_matching(false), None);
    }

    #[test]
    fn mcq_fcfs_per_bank() {
        let mut s = State::reset();
        let c = cfg();
        assert!(s.mcq_push(
            McEntry {
                from_tx: false,
                bank: true
            },
            c.mc_cap
        ));
        assert!(s.mcq_push(
            McEntry {
                from_tx: true,
                bank: false
            },
            c.mc_cap
        ));
        assert!(!s.mcq_push(
            McEntry {
                from_tx: true,
                bank: false
            },
            c.mc_cap
        ));
        let e = s.mcq_pop_first_bank(false).unwrap();
        assert!(e.from_tx);
        assert_eq!(s.mcq_len, 1);
    }
}
