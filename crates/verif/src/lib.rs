//! Mechanical security verification of DAGguise (the Rosette substitute).
//!
//! The paper (§5) models a simplified DAGguise system — a request shaper
//! with a strictly-dependent defense rDAG in front of an FCFS memory
//! controller with constant latency — and verifies with Rosette + an SMT
//! solver that the receiver's response trace is independent of the
//! transmitter's request trace, using k-induction.
//!
//! This crate rebuilds that verification with exhaustive enumeration in
//! place of SMT. The domains are deliberately finite (valid-bit × bank-bit
//! inputs, bounded queues and counters), so enumeration discharges the
//! same proof obligations exactly:
//!
//! * [`model`] — the transition system: shaper + 2-bank FCFS controller.
//!   Two shaper variants are modeled: the DAGguise shaper (emission
//!   schedule and banks come from the defense rDAG alone) and a *leaky*
//!   strawman that forwards the victim's own bank, which the checker must
//!   — and does — catch.
//! * [`kinduction`] — the paper's recipe: a bounded-model-checking *base
//!   step* from the reset state, and an *induction step* over enumerated
//!   starting states. As in the paper, too small a k yields a
//!   counterexample, and the minimal passing k is reported.
//! * [`unwinding`] — a strictly stronger one-shot proof: the
//!   receiver-visible projection of the state evolves as a function of
//!   itself and the receiver's inputs only (an unwinding/simulation
//!   argument). This is checked exhaustively over all states × inputs and
//!   implies the indistinguishability property for *all* horizons at once.

pub mod kinduction;
pub mod model;
pub mod unwinding;

pub use kinduction::{check_base, check_induction, minimal_k, Counterexample, StateScope};
pub use model::{ModelConfig, ShaperKind, State, StepOutput};
pub use unwinding::check_unwinding;
