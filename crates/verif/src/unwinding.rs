//! The unwinding (projection-commutation) proof.
//!
//! Stronger and cheaper than k-induction: we show that the
//! receiver-visible projection of the state (everything except the
//! shaper's private queue contents — see [`State::projection`]) evolves as
//! a *function of itself and the receiver's input alone*, and that the
//! receiver's per-cycle output is a function of the same. Exhaustively
//! checking this over every state × input pair proves, by a standard
//! unwinding argument, that the receiver's response trace is independent
//! of the transmitter's requests for *every* horizon — the §5.2 property
//! `P(S, n)` for all `n` at once.

use std::collections::HashMap;

use crate::model::{step, ModelConfig, Req, State};

/// A violation of the unwinding condition: two states with equal
/// projections whose step (under some shared receiver input and arbitrary
/// transmitter inputs) produced different receiver-visible results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnwindingViolation {
    /// First state.
    pub state_a: State,
    /// Second state (same projection as `state_a`).
    pub state_b: State,
    /// Transmitter input applied to `state_a`.
    pub tx_a: Req,
    /// Transmitter input applied to `state_b`.
    pub tx_b: Req,
    /// Shared receiver input.
    pub rx: Req,
}

/// Checks the unwinding condition exhaustively.
///
/// For every enumerated state and every input pair, the tuple
/// `(resp_rx, next projection)` must be uniquely determined by
/// `(projection, req_rx)`.
///
/// # Errors
///
/// Returns the first violation found — for the DAGguise shaper there is
/// none; for the leaky strawman this fails.
pub fn check_unwinding(cfg: &ModelConfig) -> Result<(), Box<UnwindingViolation>> {
    let states = State::enumerate(cfg);
    let inputs: [Req; 3] = [None, Some(false), Some(true)];

    // Map (projection, req_rx) -> (resp_rx, next projection, witness).
    use crate::model::Projection;
    type Entry = ([bool; 2], Projection, (State, Req));
    let mut table: HashMap<(Projection, Req), Entry> = HashMap::new();

    for s in &states {
        for rx in inputs {
            for tx in inputs {
                let mut s2 = *s;
                let out = step(cfg, &mut s2, tx, rx);
                let key = (s.projection(), rx);
                let val = (out.resp_rx, s2.projection());
                match table.get(&key) {
                    None => {
                        table.insert(key, (val.0, val.1, (*s, tx)));
                    }
                    Some((out0, proj0, (s0, tx0))) => {
                        if *out0 != val.0 || *proj0 != val.1 {
                            return Err(Box::new(UnwindingViolation {
                                state_a: *s0,
                                state_b: *s,
                                tx_a: *tx0,
                                tx_b: tx,
                                rx,
                            }));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ShaperKind;

    #[test]
    fn dagguise_satisfies_unwinding() {
        for cfg in [
            ModelConfig::tiny(ShaperKind::Dagguise),
            ModelConfig::paper(ShaperKind::Dagguise),
        ] {
            assert!(
                check_unwinding(&cfg).is_ok(),
                "unwinding must hold: {cfg:?}"
            );
        }
    }

    #[test]
    fn leaky_shaper_violates_unwinding() {
        let cfg = ModelConfig::paper(ShaperKind::LeakyForwarding);
        let v = check_unwinding(&cfg).expect_err("leak must be caught");
        // The violation is genuine: same projection, same rx input,
        // different receiver-visible evolution.
        assert_eq!(v.state_a.projection(), v.state_b.projection());
        let mut a = v.state_a;
        let mut b = v.state_b;
        let oa = step(&cfg, &mut a, v.tx_a, v.rx);
        let ob = step(&cfg, &mut b, v.tx_b, v.rx);
        assert!(
            oa.resp_rx != ob.resp_rx || a.projection() != b.projection(),
            "replayed violation must reproduce"
        );
    }

    #[test]
    fn unwinding_is_fast_enough_for_paper_config() {
        // The paper config enumerates tens of thousands of states; the
        // whole proof must stay well under a second.
        let cfg = ModelConfig::paper(ShaperKind::Dagguise);
        let t0 = std::time::Instant::now();
        check_unwinding(&cfg).unwrap();
        assert!(t0.elapsed().as_secs() < 30);
    }
}
