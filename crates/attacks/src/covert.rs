//! Covert-channel capacity measurement through the memory controller.
//!
//! Side channels and covert channels share the medium (§2.2's
//! communication model): here a colluding *sender* deliberately modulates
//! memory-controller contention (heavy traffic = bit 1, silence = bit 0,
//! one bit per epoch) and a *receiver* decodes bits by timing its own
//! probes. Measuring the achieved error rate gives a direct, quantitative
//! view of how much information the channel carries — near-zero error on
//! the insecure controller, coin-flip error (zero capacity) once DAGguise
//! shapes the sender.

use dg_mem::MemorySubsystem;
use dg_obs::{LeakEstimator, LeakReport};
use dg_sim::clock::Cycle;
use dg_sim::rng::DetRng;
use dg_sim::types::{DomainId, MemRequest, ReqId};
use serde::{Deserialize, Serialize};

/// Parameters of the covert-channel experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CovertConfig {
    /// Cycles per transmitted bit.
    pub epoch: Cycle,
    /// Number of bits to transmit.
    pub bits: usize,
    /// Sender request gap while transmitting a 1.
    pub sender_gap: Cycle,
    /// Receiver probe think time.
    pub probe_gap: Cycle,
}

impl Default for CovertConfig {
    fn default() -> Self {
        Self {
            epoch: 3_000,
            bits: 64,
            sender_gap: 8,
            probe_gap: 60,
        }
    }
}

/// Result of a covert-channel run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovertResult {
    /// The transmitted bit string.
    pub sent: Vec<bool>,
    /// The decoded bit string.
    pub decoded: Vec<bool>,
    /// Bit error rate in [0, 1].
    pub error_rate: f64,
    /// Raw channel rate in bits per second at the given clock.
    pub raw_bits_per_sec: f64,
}

impl CovertResult {
    /// Approximate channel capacity in bits/s: raw rate × (1 − H(e)),
    /// where H is the binary entropy of the error rate (a binary symmetric
    /// channel bound).
    pub fn capacity_bits_per_sec(&self) -> f64 {
        let e = self.error_rate.clamp(1e-9, 1.0 - 1e-9);
        let h = -e * e.log2() - (1.0 - e) * (1.0 - e).log2();
        self.raw_bits_per_sec * (1.0 - h).max(0.0)
    }
}

/// Runs the covert-channel experiment over `mem`. The sender occupies
/// `sender_domain`; the receiver probes from `receiver_domain`. The
/// message is pseudo-random from `seed`.
///
/// The caller provides the memory path (insecure controller, shaped
/// controller, Fixed Service, …); requests enter through the same
/// `try_send` interface the cores use, so any defense under test shapes
/// the sender exactly as it would a victim.
pub fn run_covert_channel<M: MemorySubsystem + ?Sized>(
    mem: &mut M,
    sender_domain: DomainId,
    receiver_domain: DomainId,
    cfg: &CovertConfig,
    clock_hz: f64,
    seed: u64,
) -> CovertResult {
    run_covert_inner(
        mem,
        sender_domain,
        receiver_domain,
        cfg,
        clock_hz,
        seed,
        None,
    )
}

/// [`run_covert_channel`] with an online [`LeakEstimator`] attached: every
/// receiver probe is fed to the estimator keyed by the bit the sender was
/// transmitting, producing a mutual-information capacity-over-time report
/// alongside the decode-based [`CovertResult`]. The estimator is a pure
/// observer — the simulated traffic is identical to the plain run.
///
/// The report is permutation-null corrected: alongside the true labelling,
/// the same latency stream is estimated under cyclically rotated bit
/// labels. A rotated labelling has the same marginals but no causal
/// alignment with the sender, so any MI it reads is spurious correlation
/// between the (secret-independent) latency pattern and the message — a
/// structural noise floor that shaped memory would otherwise appear to
/// carry. The nulls' mean is subtracted window-by-window (see
/// [`LeakReport::subtract_null`]); samples stay signed, the aggregate
/// mean is clamped at zero.
pub fn run_covert_channel_estimated<M: MemorySubsystem + ?Sized>(
    mem: &mut M,
    sender_domain: DomainId,
    receiver_domain: DomainId,
    cfg: &CovertConfig,
    clock_hz: f64,
    seed: u64,
    leak_window: Cycle,
) -> (CovertResult, LeakReport) {
    let mut taps = LeakTaps::new(leak_window, clock_hz, cfg.bits);
    let result = run_covert_inner(
        mem,
        sender_domain,
        receiver_domain,
        cfg,
        clock_hz,
        seed,
        Some(&mut taps),
    );
    (result, taps.report())
}

/// Latency-bucket width (cycles) and count for the probe's MI histograms.
/// Coarse buckets keep the per-window contingency table well-populated at
/// covert-probe observation rates; finer ones inflate the finite-sample
/// noise floor faster than they add resolution.
const LEAK_BUCKET_WIDTH: Cycle = 64;
const LEAK_BUCKETS: usize = 8;

/// The observed-label estimator plus its permutation-null companions
/// (same latency stream, cyclically rotated bit labels).
struct LeakTaps {
    obs: LeakEstimator,
    /// (label rotation, estimator) pairs.
    nulls: Vec<(usize, LeakEstimator)>,
}

impl LeakTaps {
    fn new(leak_window: Cycle, clock_hz: f64, bits: usize) -> Self {
        let mk = || LeakEstimator::new(leak_window, clock_hz, 2, LEAK_BUCKET_WIDTH, LEAK_BUCKETS);
        let mut rots: Vec<usize> = [bits / 4, bits / 2, 3 * bits / 4]
            .into_iter()
            .filter(|&r| r > 0 && r < bits)
            .collect();
        rots.dedup();
        Self {
            obs: mk(),
            nulls: rots.into_iter().map(|r| (r, mk())).collect(),
        }
    }

    fn observe(&mut self, now: Cycle, idx: usize, sent: &[bool], latency: Cycle) {
        self.obs.observe(now, sent[idx] as usize, latency);
        for (rot, est) in &mut self.nulls {
            est.observe(now, sent[(idx + *rot) % sent.len()] as usize, latency);
        }
    }

    fn report(mut self) -> LeakReport {
        self.obs.finish();
        let nulls: Vec<LeakReport> = self
            .nulls
            .into_iter()
            .map(|(_, mut e)| {
                e.finish();
                e.report()
            })
            .collect();
        self.obs.report().subtract_null(&nulls)
    }
}

fn run_covert_inner<M: MemorySubsystem + ?Sized>(
    mem: &mut M,
    sender_domain: DomainId,
    receiver_domain: DomainId,
    cfg: &CovertConfig,
    clock_hz: f64,
    seed: u64,
    mut taps: Option<&mut LeakTaps>,
) -> CovertResult {
    let mut rng = DetRng::new(seed);
    let sent: Vec<bool> = (0..cfg.bits).map(|_| rng.next_bool(0.5)).collect();

    let mut probe_latencies: Vec<Vec<Cycle>> = vec![Vec::new(); cfg.bits];
    let mut sender_seq = 0u64;
    let mut probe_seq = 0u64;
    let mut sender_next = 0;
    let mut probe_outstanding: Option<ReqId> = None;
    let mut probe_next = 0;
    let horizon = cfg.epoch * cfg.bits as u64;

    for now in 0..horizon {
        let bit_idx = (now / cfg.epoch) as usize;
        for resp in mem.tick(now) {
            if Some(resp.id) == probe_outstanding {
                probe_outstanding = None;
                let idx = ((resp.completed_at / cfg.epoch) as usize).min(cfg.bits - 1);
                probe_latencies[idx].push(resp.latency());
                if let Some(t) = taps.as_deref_mut() {
                    t.observe(resp.completed_at, idx, &sent, resp.latency());
                }
                probe_next = now + cfg.probe_gap;
            }
        }
        // Sender: hammer random lines during 1-epochs, stay silent in 0s.
        if sent[bit_idx] && now >= sender_next {
            sender_seq += 1;
            let addr = (rng.next_u64() % (1 << 26)) & !63;
            let req = MemRequest::read(sender_domain, addr, now)
                .with_id(ReqId::compose(sender_domain, sender_seq));
            if mem.try_send(req, now).is_ok() {
                sender_next = now + cfg.sender_gap;
            }
        }
        // Receiver: constant-pattern probe.
        if probe_outstanding.is_none() && now >= probe_next {
            probe_seq += 1;
            let id = ReqId::compose(receiver_domain, probe_seq);
            let req = MemRequest::read(receiver_domain, 0x40, now).with_id(id);
            if mem.try_send(req, now).is_ok() {
                probe_outstanding = Some(id);
            }
        }
    }

    // Decode: epochs whose mean probe latency exceeds the global median
    // are 1s.
    let means: Vec<f64> = probe_latencies
        .iter()
        .map(|v| {
            if v.is_empty() {
                f64::MAX // starved epoch reads as heavy contention
            } else {
                v.iter().sum::<u64>() as f64 / v.len() as f64
            }
        })
        .collect();
    let mut sorted: Vec<f64> = means.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let decoded: Vec<bool> = means.iter().map(|&m| m > median).collect();

    let errors = sent.iter().zip(&decoded).filter(|(a, b)| a != b).count();
    let error_rate = errors as f64 / cfg.bits as f64;
    let raw = clock_hz / cfg.epoch as f64;
    CovertResult {
        sent,
        decoded,
        error_rate,
        raw_bits_per_sec: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagguise::{Shaper, ShaperConfig};
    use dg_mem::{DomainShaper, MemoryController, PassThrough, SchedPolicy, ShapedMemory};
    use dg_rdag::template::RdagTemplate;
    use dg_sim::config::SystemConfig;

    fn cfg() -> CovertConfig {
        CovertConfig {
            epoch: 2_000,
            bits: 32,
            sender_gap: 6,
            probe_gap: 50,
        }
    }

    #[test]
    fn insecure_channel_transmits_reliably() {
        let sys = SystemConfig::two_core();
        let mut mc = MemoryController::new(&sys, SchedPolicy::FrFcfs);
        let r = run_covert_channel(&mut mc, DomainId(0), DomainId(1), &cfg(), 2.4e9, 11);
        assert!(
            r.error_rate < 0.2,
            "contention channel should decode well: e = {}",
            r.error_rate
        );
        assert!(r.capacity_bits_per_sec() > 1e5);
    }

    #[test]
    fn dagguise_reduces_channel_to_noise() {
        let sys = SystemConfig::two_core();
        let mc = MemoryController::new(&sys, SchedPolicy::FrFcfs);
        let shapers: Vec<Box<dyn DomainShaper>> = vec![
            Box::new(Shaper::new(ShaperConfig::from_system(
                DomainId(0),
                RdagTemplate::new(2, 100, 0.0),
                &sys,
            ))),
            Box::new(PassThrough::new(DomainId(1), 16)),
        ];
        let mut mem = ShapedMemory::new(mc, shapers);
        let r = run_covert_channel(&mut mem, DomainId(0), DomainId(1), &cfg(), 2.4e9, 11);
        // The shaped sender's traffic is invisible; decoding degenerates
        // to the median split, i.e. a coin flip.
        assert!(
            (0.3..=0.7).contains(&r.error_rate),
            "shaped channel must be noise: e = {}",
            r.error_rate
        );
        assert!(r.capacity_bits_per_sec() < 0.25 * r.raw_bits_per_sec);
    }

    fn shaped(sys: &SystemConfig) -> ShapedMemory<MemoryController> {
        let mc = MemoryController::new(sys, SchedPolicy::FrFcfs);
        let shapers: Vec<Box<dyn DomainShaper>> = vec![
            Box::new(Shaper::new(ShaperConfig::from_system(
                DomainId(0),
                RdagTemplate::new(2, 100, 0.0),
                sys,
            ))),
            Box::new(PassThrough::new(DomainId(1), 16)),
        ];
        ShapedMemory::new(mc, shapers)
    }

    #[test]
    fn estimator_separates_insecure_from_dagguise() {
        // Mirrors the sweep probe: merge several repetitions with distinct
        // messages so per-run finite-sample noise averages out.
        let sys = SystemConfig::two_core();
        let seeds = [11u64, 12, 13, 14];
        let probe = |mem: &mut dyn MemorySubsystem, seed| {
            run_covert_channel_estimated(mem, DomainId(0), DomainId(1), &cfg(), 2.4e9, seed, 8_000)
                .1
        };
        let insecure = dg_obs::LeakReport::merged(
            &seeds.map(|s| probe(&mut MemoryController::new(&sys, SchedPolicy::FrFcfs), s)),
        );
        let shaped = dg_obs::LeakReport::merged(&seeds.map(|s| probe(&mut shaped(&sys), s)));

        assert!(
            insecure.mean_capacity_bps > 0.0,
            "insecure channel must leak: {}",
            insecure.mean_capacity_bps
        );
        assert!(!insecure.samples.is_empty());
        assert!(
            shaped.mean_capacity_bps < 0.05 * insecure.mean_capacity_bps,
            "DAGguise must collapse MI capacity: shaped {} vs insecure {}",
            shaped.mean_capacity_bps,
            insecure.mean_capacity_bps
        );
    }

    #[test]
    fn estimator_is_a_pure_observer() {
        let sys = SystemConfig::two_core();
        let mut a = MemoryController::new(&sys, SchedPolicy::FrFcfs);
        let plain = run_covert_channel(&mut a, DomainId(0), DomainId(1), &cfg(), 2.4e9, 11);
        let mut b = MemoryController::new(&sys, SchedPolicy::FrFcfs);
        let (estimated, _) = run_covert_channel_estimated(
            &mut b,
            DomainId(0),
            DomainId(1),
            &cfg(),
            2.4e9,
            11,
            8_000,
        );
        assert_eq!(plain, estimated, "estimator must not perturb the channel");
    }

    #[test]
    fn capacity_bound_behaviour() {
        let r = CovertResult {
            sent: vec![],
            decoded: vec![],
            error_rate: 0.5,
            raw_bits_per_sec: 1000.0,
        };
        assert!(r.capacity_bits_per_sec() < 1e-3);
        let r2 = CovertResult {
            error_rate: 0.0,
            ..r
        };
        assert!((r2.capacity_bits_per_sec() - 1000.0).abs() < 1e-3);
    }
}
