//! The constant-pattern probe attacker.

use dg_cache::SetAssocCache;
use dg_cpu::Core;
use dg_dram::{AddressMapper, MapScheme, PhysLoc};
use dg_mem::{MemoryController, MemorySubsystem, SchedPolicy};
use dg_sim::clock::Cycle;
use dg_sim::config::SystemConfig;
use dg_sim::types::{DomainId, MemRequest, MemResponse, ReqId};
use serde::{Deserialize, Serialize};

/// One probe's receiver-visible observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProbeObservation {
    /// Cycle the probe was issued.
    pub issued: Cycle,
    /// Cycle its response returned.
    pub completed: Cycle,
}

impl ProbeObservation {
    /// The latency the attacker measures.
    pub fn latency(&self) -> Cycle {
        self.completed - self.issued
    }
}

/// The attacker of §2.2 as a simulated core: emits a read to a fixed
/// bank/row, waits for the response, idles `think` cycles, repeats.
/// It bypasses the cache hierarchy (attackers flush or use uncached
/// accesses so every probe reaches the memory controller).
#[derive(Debug)]
pub struct ProbeCore {
    domain: DomainId,
    addr: u64,
    think: Cycle,
    max_probes: usize,
    /// Collected observations, in order.
    pub observations: Vec<ProbeObservation>,
    outstanding: Option<ReqId>,
    next_issue: Cycle,
    next_seq: u64,
    pending_send: Option<MemRequest>,
    finished_at: Option<Cycle>,
}

impl ProbeCore {
    /// Builds a probe core for `domain` hammering `addr` with `think`
    /// cycles between a response and the next probe.
    pub fn new(domain: DomainId, addr: u64, think: Cycle, max_probes: usize) -> Self {
        Self {
            domain,
            addr,
            think,
            max_probes,
            observations: Vec::new(),
            outstanding: None,
            next_issue: 0,
            next_seq: 0,
            pending_send: None,
            finished_at: None,
        }
    }

    /// The attacker's latency trace.
    pub fn latencies(&self) -> Vec<Cycle> {
        self.observations.iter().map(|o| o.latency()).collect()
    }
}

impl Core for ProbeCore {
    fn domain(&self) -> DomainId {
        self.domain
    }

    fn tick(&mut self, now: Cycle, _l3: &mut SetAssocCache, mem: &mut dyn MemorySubsystem) {
        if self.finished_at.is_some() {
            return;
        }
        if self.observations.len() >= self.max_probes {
            if self.outstanding.is_none() {
                self.finished_at = Some(now);
            }
            return;
        }
        if let Some(req) = self.pending_send.take() {
            if let Err(back) = mem.try_send(req, now) {
                self.pending_send = Some(back);
            }
            return;
        }
        if self.outstanding.is_none() && now >= self.next_issue {
            self.next_seq += 1;
            let id = ReqId::compose(self.domain, self.next_seq);
            let req = MemRequest::read(self.domain, self.addr, now).with_id(id);
            self.outstanding = Some(id);
            if let Err(back) = mem.try_send(req, now) {
                self.pending_send = Some(back);
            }
        }
    }

    fn on_response(&mut self, resp: &MemResponse, now: Cycle) {
        if self.outstanding == Some(resp.id) {
            self.outstanding = None;
            self.observations.push(ProbeObservation {
                issued: resp.arrived_at,
                completed: resp.completed_at,
            });
            self.next_issue = now + self.think;
        }
    }

    fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    fn instructions_retired(&self) -> u64 {
        self.observations.len() as u64
    }

    fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if self.finished_at.is_some() {
            return None;
        }
        if self.observations.len() >= self.max_probes {
            // Waiting to retire: active only once the last probe returns.
            return if self.outstanding.is_none() {
                Some(now)
            } else {
                None
            };
        }
        if self.pending_send.is_some() {
            return Some(now); // retrying a back-pressured probe
        }
        if self.outstanding.is_none() {
            return Some(self.next_issue.max(now));
        }
        None // probe in flight: woken by on_response
    }
}

/// The four victim behaviours of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Figure1Scenario {
    /// (a) The victim is silent.
    NoActivity,
    /// (b) One victim request to a different bank.
    DifferentBank,
    /// (c) One victim request to the attacker's bank and row.
    SameBankSameRow,
    /// (d) One victim request to the attacker's bank, different row.
    SameBankDifferentRow,
}

/// Runs one Figure 1 scenario against a bare open-row FCFS controller
/// and returns the attacker's latency trace.
///
/// Figure 1 of the paper is drawn for "a simplified memory where each
/// request takes *n* cycles and the DRAM uses an open-row policy" — i.e. a
/// first-come-first-served scheduler with no row-hit reordering. We use the
/// real DRAM timing model with the FCFS policy, which reproduces the same
/// qualitative ladder: silent victim < different bank (bus/queue delay Δ)
/// ≤ same bank (conflict) < same bank different row (extra ε for the row
/// turnaround).
///
/// The attacker probes bank 0 / row 0 on a fixed cadence; the victim (when
/// present) injects a single read mid-run whose placement is given by the
/// scenario. Comparing the returned traces against
/// [`Figure1Scenario::NoActivity`] reveals the per-scenario contention
/// delay (Δ, bank-conflict, and row-conflict ε of Figure 1).
pub fn figure1_scenario(cfg: &SystemConfig, scenario: Figure1Scenario) -> Vec<Cycle> {
    let mut mc = MemoryController::new(cfg, SchedPolicy::Fcfs);
    let mapper = AddressMapper::new(
        MapScheme::BankInterleaved,
        cfg.dram_org.banks,
        cfg.dram_org.row_bytes,
        cfg.dram_org.line_bytes,
    );
    let attacker_addr = mapper.encode(PhysLoc {
        bank: 0,
        row: 0,
        col: 0,
    });
    let victim_addr = match scenario {
        Figure1Scenario::NoActivity => None,
        Figure1Scenario::DifferentBank => Some(mapper.encode(PhysLoc {
            bank: 4,
            row: 0,
            col: 1,
        })),
        Figure1Scenario::SameBankSameRow => Some(mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 5,
        })),
        Figure1Scenario::SameBankDifferentRow => Some(mapper.encode(PhysLoc {
            bank: 0,
            row: 7,
            col: 0,
        })),
    };

    let think = cfg.clock_ratio.dram_to_cpu(20);
    let mut latencies = Vec::new();
    let mut outstanding: Option<(ReqId, Cycle)> = None;
    let mut next_issue = 0;
    let mut seq = 0u64;
    let mut victim_sent = false;
    let horizon = think * 16;
    for now in 0..horizon {
        for resp in mc.tick(now) {
            if let Some((id, _)) = outstanding {
                if resp.id == id && resp.domain == DomainId(0) {
                    latencies.push(resp.latency());
                    outstanding = None;
                    next_issue = now + think;
                }
            }
        }
        // Inject the victim's single request a few cycles before the
        // attacker's 4th probe, so the two are in flight together and the
        // victim's commands win the (older-first) scheduler tie.
        if let Some(vaddr) = victim_addr {
            if !victim_sent && latencies.len() == 3 && now + 1 >= next_issue {
                let req = MemRequest::read(DomainId(1), vaddr, now)
                    .with_id(ReqId::compose(DomainId(1), 1));
                if mc.try_send(req, now).is_ok() {
                    victim_sent = true;
                }
            }
        }
        if outstanding.is_none() && now >= next_issue {
            seq += 1;
            let id = ReqId::compose(DomainId(0), seq);
            let req = MemRequest::read(DomainId(0), attacker_addr, now).with_id(id);
            if mc.try_send(req, now).is_ok() {
                outstanding = Some((id, now));
            }
        }
    }
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    #[test]
    fn baseline_probes_are_steady() {
        let lat = figure1_scenario(&cfg(), Figure1Scenario::NoActivity);
        assert!(lat.len() >= 6);
        // After the first (cold) access every probe is a row hit with
        // identical latency.
        let steady = &lat[1..];
        assert!(steady.windows(2).all(|w| w[0] == w[1]), "{steady:?}");
    }

    #[test]
    fn all_four_scenarios_distinguishable() {
        // The point of Figure 1: the attacker's latency reveals whether the
        // victim was active, and its bank/row placement. Every scenario
        // must produce a distinct contention signature, with the row
        // conflict (d) costing the most (the ε penalty). Note that on a
        // timing-accurate DRAM the same-bank-*same-row* victim (c) is
        // cheaper than a different-bank one (b) — row-buffer hits pipeline
        // — whereas the paper's simplified non-pipelined model orders them
        // the other way; both orderings leak equally.
        let c = cfg();
        let max_of = |s| {
            let l = figure1_scenario(&c, s);
            *l[1..].iter().max().unwrap()
        };
        let none = max_of(Figure1Scenario::NoActivity);
        let diff_bank = max_of(Figure1Scenario::DifferentBank);
        let same_row = max_of(Figure1Scenario::SameBankSameRow);
        let diff_row = max_of(Figure1Scenario::SameBankDifferentRow);
        assert!(
            none < same_row,
            "same-row contention visible: {none} vs {same_row}"
        );
        assert!(
            none < diff_bank,
            "bus/queue delay visible: {none} vs {diff_bank}"
        );
        assert!(
            diff_bank < diff_row,
            "row conflict costs most: {diff_bank} vs {diff_row}"
        );
        let mut all = [none, diff_bank, same_row, diff_row];
        all.sort_unstable();
        assert!(
            all.windows(2).all(|w| w[0] != w[1]),
            "all distinct: {all:?}"
        );
    }

    #[test]
    fn probe_core_drives_a_controller() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let mut l3 = SetAssocCache::new(c.cache.l3_per_core, "L3");
        let mut probe = ProbeCore::new(DomainId(0), 0x40, 50, 5);
        for now in 0..100_000 {
            for r in mc.tick(now) {
                probe.on_response(&r, now);
            }
            probe.tick(now, &mut l3, &mut mc);
            if probe.finished() {
                break;
            }
        }
        assert!(probe.finished());
        assert_eq!(probe.observations.len(), 5);
        assert_eq!(probe.latencies().len(), 5);
        assert!(probe.latencies().iter().all(|&l| l > 0));
    }
}
