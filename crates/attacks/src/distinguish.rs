//! Trace-distance metrics and the secret distinguisher.
//!
//! Our simulator is deterministic, so the sharpest possible test is exact
//! trace equality: a defense is broken if any receiver strategy observes
//! *different* latency traces under different transmitter secrets, and
//! sound (for the tested strategies) if traces are bit-identical. The
//! softer metrics (total variation, mean absolute difference) quantify
//! *how* distinguishable two traces are, mirroring how a real attacker
//! with measurement noise would fare.

use dg_sim::clock::Cycle;
use serde::{Deserialize, Serialize};

/// The verdict of comparing receiver observations across two secrets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LeakVerdict {
    /// Observations are bit-identical: this receiver learns nothing.
    Indistinguishable,
    /// Observations differ: the channel leaks. Carries the mean absolute
    /// latency difference as a coarse capacity proxy.
    Distinguishable {
        /// Mean |a - b| over the common prefix, plus length mismatch.
        mean_abs_diff: f64,
    },
}

/// Compares two receiver latency traces observed under different secrets.
pub fn distinguishable(a: &[Cycle], b: &[Cycle]) -> LeakVerdict {
    if a == b {
        LeakVerdict::Indistinguishable
    } else {
        LeakVerdict::Distinguishable {
            mean_abs_diff: mean_abs_diff(a, b),
        }
    }
}

/// Mean absolute difference over the common prefix; a length mismatch
/// contributes the mean of the longer tail (missing observations are
/// themselves observable).
pub fn mean_abs_diff(a: &[Cycle], b: &[Cycle]) -> f64 {
    let n = a.len().min(b.len());
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut sum: f64 = a[..n]
        .iter()
        .zip(&b[..n])
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .sum();
    let longer = if a.len() > n { &a[n..] } else { &b[n..] };
    sum += longer.iter().map(|&x| x as f64).sum::<f64>();
    sum / a.len().max(b.len()) as f64
}

/// Total variation distance between the latency *histograms* of two traces
/// (bucketed at `bucket` cycles): 0 = identical distributions, 1 =
/// disjoint. This is the view of a Camouflage-grade attacker who only
/// sees aggregate timing distributions.
pub fn total_variation(a: &[Cycle], b: &[Cycle], bucket: Cycle) -> f64 {
    assert!(bucket > 0, "bucket must be positive");
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            0.0
        } else {
            1.0
        };
    }
    use std::collections::HashMap;
    let hist = |t: &[Cycle]| {
        let mut h: HashMap<Cycle, f64> = HashMap::new();
        for &v in t {
            *h.entry(v / bucket).or_default() += 1.0 / t.len() as f64;
        }
        h
    };
    let ha = hist(a);
    let hb = hist(b);
    let keys: std::collections::HashSet<_> = ha.keys().chain(hb.keys()).collect();
    0.5 * keys
        .into_iter()
        .map(|k| (ha.get(k).unwrap_or(&0.0) - hb.get(k).unwrap_or(&0.0)).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_are_indistinguishable() {
        let t = vec![10, 20, 30];
        assert_eq!(distinguishable(&t, &t), LeakVerdict::Indistinguishable);
        assert_eq!(mean_abs_diff(&t, &t), 0.0);
        assert_eq!(total_variation(&t, &t, 5), 0.0);
    }

    #[test]
    fn different_traces_flagged() {
        let a = vec![10, 20, 30];
        let b = vec![10, 25, 30];
        match distinguishable(&a, &b) {
            LeakVerdict::Distinguishable { mean_abs_diff } => {
                assert!((mean_abs_diff - 5.0 / 3.0).abs() < 1e-12);
            }
            v => panic!("expected leak, got {v:?}"),
        }
    }

    #[test]
    fn length_mismatch_is_observable() {
        let a = vec![10, 20];
        let b = vec![10, 20, 30];
        assert_ne!(distinguishable(&a, &b), LeakVerdict::Indistinguishable);
        assert!((mean_abs_diff(&a, &b) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_extremes() {
        let a = vec![10, 10, 10];
        let b = vec![100, 100, 100];
        assert_eq!(total_variation(&a, &b, 10), 1.0);
        // Same multiset, different order: TV over histograms is 0 even
        // though an ordering attacker (exact compare) distinguishes them —
        // precisely Camouflage's blind spot (Figure 2).
        let c = vec![200, 400];
        let d = vec![400, 200];
        assert_eq!(total_variation(&c, &d, 10), 0.0);
        assert_ne!(distinguishable(&c, &d), LeakVerdict::Indistinguishable);
    }

    #[test]
    fn empty_traces() {
        assert_eq!(mean_abs_diff(&[], &[]), 0.0);
        assert_eq!(total_variation(&[], &[], 10), 0.0);
        assert_eq!(total_variation(&[1], &[], 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_bucket_panics() {
        total_variation(&[1], &[1], 0);
    }
}
