//! Receiver (attacker) programs and leakage analysis.
//!
//! The receiver of §2.2 actively emits memory requests and infers the
//! transmitter's traffic from its own response latencies. This crate
//! provides:
//!
//! * [`probe`] — the constant-pattern probe attacker of Figure 1, as a
//!   standalone driver against a bare memory controller (for the Figure 1
//!   scenarios) and as a [`dg_cpu::Core`] ([`probe::ProbeCore`]) for
//!   full-system attacks.
//! * [`distinguish`] — trace-distance metrics and the secret
//!   distinguisher: given receiver latency traces observed under two
//!   victim secrets, decide whether the channel leaks.
//!
//! The end-to-end security claims in this repository are all phrased via
//! these tools: the insecure baseline and Camouflage yield
//! *distinguishable* probe traces, DAGguise and Fixed Service yield
//! *bit-identical* ones.

pub mod covert;
pub mod distinguish;
pub mod probe;

pub use covert::{run_covert_channel, run_covert_channel_estimated, CovertConfig, CovertResult};
pub use distinguish::{distinguishable, mean_abs_diff, total_variation, LeakVerdict};
pub use probe::{figure1_scenario, Figure1Scenario, ProbeCore, ProbeObservation};
