//! The explicit rDAG graph representation.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

use dg_sim::types::ReqType;

/// Index of a vertex within an [`Rdag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Index of an edge within an [`Rdag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// One memory request in an rDAG: a bank ID and a read/write tag (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vertex {
    /// Target bank of the request.
    pub bank: u32,
    /// Read or write.
    pub req_type: ReqType,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct Edge {
    src: VertexId,
    dst: VertexId,
    /// Latency between the completion of `src` and the arrival of `dst`,
    /// in DRAM cycles.
    weight: u64,
}

/// Errors from rDAG construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RdagError {
    /// An edge endpoint references a vertex that does not exist.
    UnknownVertex(VertexId),
    /// An edge connects a vertex to itself.
    SelfLoop(VertexId),
    /// The graph contains a cycle — it is not a DAG.
    Cyclic,
}

impl fmt::Display for RdagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdagError::UnknownVertex(v) => write!(f, "unknown vertex v{}", v.0),
            RdagError::SelfLoop(v) => write!(f, "self loop at v{}", v.0),
            RdagError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for RdagError {}

/// A weighted directed acyclic request graph.
///
/// # Example
///
/// ```
/// use dg_rdag::graph::{Rdag, Vertex};
/// use dg_sim::types::ReqType;
///
/// let mut g = Rdag::new();
/// let a = g.add_vertex(Vertex { bank: 0, req_type: ReqType::Read });
/// let b = g.add_vertex(Vertex { bank: 1, req_type: ReqType::Read });
/// g.add_edge(a, b, 150)?;
/// assert_eq!(g.roots(), vec![a]);
/// assert!(g.topo_order().is_ok());
/// # Ok::<(), dg_rdag::graph::RdagError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Rdag {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl Rdag {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex and returns its id.
    pub fn add_vertex(&mut self, v: Vertex) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(v);
        id
    }

    /// Adds a timing-dependency edge of `weight` DRAM cycles.
    ///
    /// # Errors
    ///
    /// Returns [`RdagError::UnknownVertex`] or [`RdagError::SelfLoop`].
    /// Cycle detection is deferred to [`validate`](Self::validate) /
    /// [`topo_order`](Self::topo_order) so graphs can be built in any order.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        weight: u64,
    ) -> Result<EdgeId, RdagError> {
        for v in [src, dst] {
            if v.0 as usize >= self.vertices.len() {
                return Err(RdagError::UnknownVertex(v));
            }
        }
        if src == dst {
            return Err(RdagError::SelfLoop(src));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, weight });
        Ok(id)
    }

    /// The vertex payload.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v.0 as usize]
    }

    /// All vertex ids in insertion order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Edges as `(src, dst, weight)` triples.
    pub fn edge_list(&self) -> impl Iterator<Item = (VertexId, VertexId, u64)> + '_ {
        self.edges.iter().map(|e| (e.src, e.dst, e.weight))
    }

    /// Direct predecessors of `v` with edge weights.
    pub fn predecessors(&self, v: VertexId) -> Vec<(VertexId, u64)> {
        self.edges
            .iter()
            .filter(|e| e.dst == v)
            .map(|e| (e.src, e.weight))
            .collect()
    }

    /// Direct successors of `v` with edge weights.
    pub fn successors(&self, v: VertexId) -> Vec<(VertexId, u64)> {
        self.edges
            .iter()
            .filter(|e| e.src == v)
            .map(|e| (e.dst, e.weight))
            .collect()
    }

    /// Vertices with no predecessors (requests that may be emitted
    /// immediately).
    pub fn roots(&self) -> Vec<VertexId> {
        let mut indeg = vec![0u32; self.vertices.len()];
        for e in &self.edges {
            indeg[e.dst.0 as usize] += 1;
        }
        indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// Kahn topological sort.
    ///
    /// # Errors
    ///
    /// Returns [`RdagError::Cyclic`] when the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<VertexId>, RdagError> {
        let mut indeg = vec![0u32; self.vertices.len()];
        for e in &self.edges {
            indeg[e.dst.0 as usize] += 1;
        }
        let mut q: VecDeque<VertexId> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| VertexId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(self.vertices.len());
        while let Some(v) = q.pop_front() {
            order.push(v);
            for e in self.edges.iter().filter(|e| e.src == v) {
                let d = &mut indeg[e.dst.0 as usize];
                *d -= 1;
                if *d == 0 {
                    q.push_back(e.dst);
                }
            }
        }
        if order.len() == self.vertices.len() {
            Ok(order)
        } else {
            Err(RdagError::Cyclic)
        }
    }

    /// Validates the graph is a DAG.
    ///
    /// # Errors
    ///
    /// Returns [`RdagError::Cyclic`] when it is not.
    pub fn validate(&self) -> Result<(), RdagError> {
        self.topo_order().map(|_| ())
    }

    /// Earliest arrival times of every vertex given that each request takes
    /// `service` DRAM cycles in the memory controller and roots arrive at
    /// cycle 0 — the contention-free schedule of the pattern.
    ///
    /// Arrival(v) = max over predecessors p of (arrival(p) + service + w(p,v)).
    ///
    /// # Errors
    ///
    /// Returns [`RdagError::Cyclic`] for cyclic graphs.
    pub fn ideal_schedule(&self, service: u64) -> Result<Vec<u64>, RdagError> {
        let order = self.topo_order()?;
        let mut arrival = vec![0u64; self.vertices.len()];
        for v in order {
            for (p, w) in self.predecessors(v) {
                arrival[v.0 as usize] =
                    arrival[v.0 as usize].max(arrival[p.0 as usize] + service + w);
            }
        }
        Ok(arrival)
    }

    /// Builds a strict chain of `n` read requests to `bank` with uniform
    /// edge weight — the defense rDAG shape used by the §5 verification
    /// model ("a sequence of strictly dependent requests").
    pub fn chain(n: usize, bank: u32, weight: u64) -> Self {
        let mut g = Rdag::new();
        let mut prev: Option<VertexId> = None;
        for _ in 0..n {
            let v = g.add_vertex(Vertex {
                bank,
                req_type: ReqType::Read,
            });
            if let Some(p) = prev {
                g.add_edge(p, v, weight).expect("chain edges are valid");
            }
            prev = Some(v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bank: u32) -> Vertex {
        Vertex {
            bank,
            req_type: ReqType::Read,
        }
    }

    #[test]
    fn figure4_shape() {
        // v0 -> v1 -> v3 -> v4, v0 -> v2 -> v3 (the Figure 4 example).
        let mut g = Rdag::new();
        let v0 = g.add_vertex(v(0));
        let v1 = g.add_vertex(v(1));
        let v2 = g.add_vertex(v(2));
        let v3 = g.add_vertex(v(3));
        let v4 = g.add_vertex(v(0));
        g.add_edge(v0, v1, 10).unwrap();
        g.add_edge(v0, v2, 20).unwrap();
        g.add_edge(v1, v3, 30).unwrap();
        g.add_edge(v2, v3, 5).unwrap();
        g.add_edge(v3, v4, 15).unwrap();

        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.roots(), vec![v0]);
        assert_eq!(g.successors(v0), vec![(v1, 10), (v2, 20)]);
        assert_eq!(g.predecessors(v3), vec![(v1, 30), (v2, 5)]);
        let order = g.topo_order().unwrap();
        assert_eq!(order[0], v0);
        assert_eq!(*order.last().unwrap(), v4);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Rdag::new();
        let a = g.add_vertex(v(0));
        let b = g.add_vertex(v(1));
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(b, a, 1).unwrap();
        assert_eq!(g.validate(), Err(RdagError::Cyclic));
        assert_eq!(g.topo_order(), Err(RdagError::Cyclic));
    }

    #[test]
    fn bad_edges_rejected() {
        let mut g = Rdag::new();
        let a = g.add_vertex(v(0));
        assert_eq!(
            g.add_edge(a, VertexId(5), 1),
            Err(RdagError::UnknownVertex(VertexId(5)))
        );
        assert_eq!(g.add_edge(a, a, 1), Err(RdagError::SelfLoop(a)));
    }

    #[test]
    fn ideal_schedule_takes_longest_path() {
        let mut g = Rdag::new();
        let a = g.add_vertex(v(0));
        let b = g.add_vertex(v(1));
        let c = g.add_vertex(v(2));
        let d = g.add_vertex(v(3));
        g.add_edge(a, b, 100).unwrap();
        g.add_edge(a, c, 10).unwrap();
        g.add_edge(b, d, 10).unwrap();
        g.add_edge(c, d, 10).unwrap();
        let arr = g.ideal_schedule(50).unwrap();
        assert_eq!(arr[a.0 as usize], 0);
        assert_eq!(arr[b.0 as usize], 150);
        assert_eq!(arr[c.0 as usize], 60);
        // Through b: 150 + 50 + 10 = 210; through c: 60 + 50 + 10 = 120.
        assert_eq!(arr[d.0 as usize], 210);
    }

    #[test]
    fn chain_builder() {
        let g = Rdag::chain(4, 2, 150);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.roots().len(), 1);
        for id in g.vertex_ids() {
            assert_eq!(g.vertex(id).bank, 2);
        }
        let sched = g.ideal_schedule(100).unwrap();
        assert_eq!(sched, vec![0, 250, 500, 750]);
    }

    #[test]
    fn empty_and_singleton() {
        let g = Rdag::new();
        assert!(g.roots().is_empty());
        assert!(g.topo_order().unwrap().is_empty());
        let mut g = Rdag::new();
        let a = g.add_vertex(v(0));
        assert_eq!(g.roots(), vec![a]);
    }

    #[test]
    fn parallel_roots() {
        let mut g = Rdag::new();
        let a = g.add_vertex(v(0));
        let b = g.add_vertex(v(1));
        assert_eq!(g.roots(), vec![a, b]);
        let arr = g.ideal_schedule(100).unwrap();
        assert_eq!(arr, vec![0, 0]); // parallel: no path between them
    }

    #[test]
    fn edge_list_matches_insertions() {
        let g = Rdag::chain(3, 1, 99);
        let edges: Vec<_> = g.edge_list().collect();
        assert_eq!(
            edges,
            vec![
                (VertexId(0), VertexId(1), 99),
                (VertexId(1), VertexId(2), 99)
            ]
        );
    }
}
