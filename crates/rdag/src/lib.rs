//! Directed Acyclic Request Graphs (rDAGs) — the paper's core abstraction.
//!
//! An rDAG (§4.1) describes a memory request pattern: vertices are memory
//! requests (tagged with a bank ID and read/write type), edges are timing
//! dependencies weighted by the latency between the *completion* of the
//! source request and the *arrival* of the destination request. Vertices
//! with no path between them may be in flight in parallel.
//!
//! This crate provides:
//!
//! * [`graph`] — the explicit graph representation with acyclicity
//!   validation, used for original rDAGs, finite defense rDAGs and DOT
//!   export (Figures 4–6).
//! * [`template`] — the §4.3 template family (parallel sequences ×
//!   uniform edge weight × write ratio) and the profiling search space.
//! * [`exec`] — the online execution state machine (the "computation
//!   logic" of §4.4) that tells a shaper *when* the defense rDAG prescribes
//!   the next request and with what bank/type.
//! * [`dot`] — Graphviz export.
//!
//! # Example
//!
//! ```
//! use dg_rdag::template::RdagTemplate;
//!
//! // Figure 6(a): four parallel sequences, uniform weight 100 DRAM cycles.
//! let t = RdagTemplate::new(4, 100, 0.001);
//! let specs = t.sequence_specs(8);
//! assert_eq!(specs.len(), 4);
//! assert_eq!(specs[0].banks, vec![0, 4]); // alternates between two banks
//! ```

pub mod dot;
pub mod exec;
pub mod extract;
pub mod graph;
pub mod template;

pub use exec::{RdagExecutor, SlotDemand};
pub use extract::{extract_rdag, summarize, ObservedRequest, RdagSummary};
pub use graph::{EdgeId, Rdag, RdagError, Vertex, VertexId};
pub use template::{RdagTemplate, SequenceSpec};
