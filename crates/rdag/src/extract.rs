//! Original-rDAG extraction (§4.1).
//!
//! "A victim's unshaped memory request pattern can also be described using
//! an rDAG, which we call the *original* rDAG." This module reconstructs
//! that graph from an observed request log: each request becomes a vertex;
//! an edge connects request *a* to request *b* with weight
//! `arrival(b) − completion(a)` when *b* was emitted after *a* completed
//! and *a* is the latest such request (the inferred timing dependency).
//! Requests in flight simultaneously end up with no path between them —
//! the memory-level-parallelism structure the representation captures.

use serde::{Deserialize, Serialize};

use dg_sim::clock::Cycle;
use dg_sim::types::ReqType;

use crate::graph::{Rdag, Vertex, VertexId};

/// One observed request: arrival and completion times at the memory
/// controller, plus its bank and type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedRequest {
    /// Arrival at the memory controller (CPU cycles).
    pub arrival: Cycle,
    /// Completion (response leaves the controller).
    pub completion: Cycle,
    /// Target bank.
    pub bank: u32,
    /// Read or write.
    pub req_type: ReqType,
}

/// Extracts the original rDAG from a request log.
///
/// Dependency inference: request *b* depends on the most recently
/// completed request *a* with `completion(a) ≤ arrival(b)` (the emission
/// of *b* could only have been gated by responses the core had already
/// seen). Requests with no completed predecessor are roots. This is the
/// standard conservative reconstruction — it cannot over-approximate
/// parallelism, so schedules derived from the extracted graph are
/// achievable by the original program.
///
/// # Panics
///
/// Panics if any request completes before it arrives.
pub fn extract_rdag(log: &[ObservedRequest]) -> Rdag {
    let mut g = Rdag::new();
    let mut order: Vec<usize> = (0..log.len()).collect();
    order.sort_by_key(|&i| (log[i].arrival, log[i].completion));

    let ids: Vec<VertexId> = order
        .iter()
        .map(|&i| {
            let r = &log[i];
            assert!(r.completion >= r.arrival, "completion before arrival");
            g.add_vertex(Vertex {
                bank: r.bank,
                req_type: r.req_type,
            })
        })
        .collect();

    for (pos, &i) in order.iter().enumerate() {
        let b = &log[i];
        // Latest-completing predecessor that finished before b arrived.
        let mut best: Option<(usize, Cycle)> = None;
        for (ppos, &j) in order[..pos].iter().enumerate() {
            let a = &log[j];
            if a.completion <= b.arrival {
                match best {
                    Some((_, c)) if c >= a.completion => {}
                    _ => best = Some((ppos, a.completion)),
                }
            }
        }
        if let Some((ppos, completion)) = best {
            let w = b.arrival - completion;
            g.add_edge(ids[ppos], ids[pos], w)
                .expect("chronological edges are acyclic");
        }
    }
    g
}

/// Summary statistics of an extracted rDAG, for profiling reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdagSummary {
    /// Vertices (requests).
    pub requests: usize,
    /// Root vertices (requests with no inferred dependency).
    pub roots: usize,
    /// Mean edge weight (inter-request think time) in cycles.
    pub mean_weight: f64,
    /// Fraction of write vertices.
    pub write_fraction: f64,
}

/// Summarizes an rDAG.
pub fn summarize(g: &Rdag) -> RdagSummary {
    let weights: Vec<u64> = g.edge_list().map(|(_, _, w)| w).collect();
    let writes = g
        .vertex_ids()
        .filter(|&v| g.vertex(v).req_type.is_write())
        .count();
    RdagSummary {
        requests: g.vertex_count(),
        roots: g.roots().len(),
        mean_weight: if weights.is_empty() {
            0.0
        } else {
            weights.iter().sum::<u64>() as f64 / weights.len() as f64
        },
        write_fraction: if g.vertex_count() == 0 {
            0.0
        } else {
            writes as f64 / g.vertex_count() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: Cycle, completion: Cycle, bank: u32) -> ObservedRequest {
        ObservedRequest {
            arrival,
            completion,
            bank,
            req_type: ReqType::Read,
        }
    }

    #[test]
    fn serial_chain_extracts_as_chain() {
        // Three strictly serial requests: 0..100, 150..250, 300..400.
        let log = vec![req(0, 100, 0), req(150, 250, 1), req(300, 400, 2)];
        let g = extract_rdag(&log);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.roots().len(), 1);
        let edges: Vec<_> = g.edge_list().collect();
        assert_eq!(edges[0].2, 50); // 150 - 100
        assert_eq!(edges[1].2, 50); // 300 - 250
    }

    #[test]
    fn parallel_requests_have_no_path() {
        // Two requests in flight simultaneously.
        let log = vec![req(0, 100, 0), req(10, 110, 1)];
        let g = extract_rdag(&log);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn dependency_picks_latest_completion() {
        // c arrives after both a and b completed; b completed later, so
        // the inferred dependency is on b.
        let log = vec![req(0, 100, 0), req(10, 150, 1), req(200, 300, 2)];
        let g = extract_rdag(&log);
        assert_eq!(g.edge_count(), 1);
        let (src, dst, w) = g.edge_list().next().unwrap();
        assert_eq!(g.vertex(src).bank, 1);
        assert_eq!(g.vertex(dst).bank, 2);
        assert_eq!(w, 50); // 200 - 150
    }

    #[test]
    fn extracted_graph_is_always_acyclic() {
        let log: Vec<ObservedRequest> = (0..50)
            .map(|i| req(i * 7, i * 7 + 40, (i % 8) as u32))
            .collect();
        let g = extract_rdag(&log);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn summary_statistics() {
        let mut log = vec![req(0, 100, 0), req(150, 250, 1)];
        log.push(ObservedRequest {
            arrival: 300,
            completion: 350,
            bank: 2,
            req_type: ReqType::Write,
        });
        let g = extract_rdag(&log);
        let s = summarize(&g);
        assert_eq!(s.requests, 3);
        assert_eq!(s.roots, 1);
        assert!((s.mean_weight - 50.0).abs() < 1e-9);
        assert!((s.write_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log() {
        let g = extract_rdag(&[]);
        assert_eq!(g.vertex_count(), 0);
        let s = summarize(&g);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_weight, 0.0);
    }

    #[test]
    fn unsorted_log_is_handled() {
        let log = vec![req(300, 400, 2), req(0, 100, 0), req(150, 250, 1)];
        let g = extract_rdag(&log);
        assert_eq!(g.edge_count(), 2);
        assert!(g.validate().is_ok());
    }
}
