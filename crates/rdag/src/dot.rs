//! Graphviz (DOT) export of rDAGs, used by the Figure 4/6 harnesses.

use std::fmt::Write as _;

use crate::graph::Rdag;

/// Renders an rDAG in Graphviz DOT syntax. Vertices are labelled with
/// their bank and read/write tag; edges with their weight in DRAM cycles.
///
/// # Example
///
/// ```
/// use dg_rdag::graph::Rdag;
/// use dg_rdag::dot::to_dot;
///
/// let g = Rdag::chain(2, 0, 150);
/// let dot = to_dot(&g, "defense");
/// assert!(dot.contains("digraph defense"));
/// assert!(dot.contains("150"));
/// ```
pub fn to_dot(g: &Rdag, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").expect("write to string");
    writeln!(out, "  rankdir=LR;").expect("write to string");
    writeln!(out, "  node [shape=circle];").expect("write to string");
    for id in g.vertex_ids() {
        let v = g.vertex(id);
        writeln!(out, "  v{} [label=\"b{}\\n{}\"];", id.0, v.bank, v.req_type)
            .expect("write to string");
    }
    for (src, dst, w) in g.edge_list() {
        writeln!(out, "  v{} -> v{} [label=\"{w}\"];", src.0, dst.0).expect("write to string");
    }
    writeln!(out, "}}").expect("write to string");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Vertex, VertexId};
    use dg_sim::types::ReqType;

    #[test]
    fn renders_all_vertices_and_edges() {
        let mut g = Rdag::new();
        let a = g.add_vertex(Vertex {
            bank: 2,
            req_type: ReqType::Read,
        });
        let b = g.add_vertex(Vertex {
            bank: 6,
            req_type: ReqType::Write,
        });
        g.add_edge(a, b, 100).unwrap();
        let dot = to_dot(&g, "g");
        assert!(dot.contains("v0 [label=\"b2\\nR\"]"));
        assert!(dot.contains("v1 [label=\"b6\\nW\"]"));
        assert!(dot.contains("v0 -> v1 [label=\"100\"]"));
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let dot = to_dot(&Rdag::new(), "empty");
        assert!(dot.contains("digraph empty"));
        assert!(!dot.contains("v0"));
        let _ = VertexId(0); // silence unused import in cfg(test)
    }
}
