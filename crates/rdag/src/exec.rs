//! The rDAG execution state machine — the shaper's "computation logic"
//! (§4.4).
//!
//! The hardware described in the paper tracks, per sequence/bank: a bit
//! indicating whether the shaper is waiting for a response, a read/write
//! bit, and a counter of remaining cycles until the next request is
//! required. [`RdagExecutor`] is the cycle-accurate software model of that
//! logic: it walks each sequence of the defense rDAG, demanding a request
//! `weight` cycles after the previous response returned.
//!
//! Crucially, nothing in this module ever observes the victim's traffic —
//! emission times, banks and types are functions of the defense rDAG and
//! the (receiver-visible) completion times alone. That is the root of the
//! §5 indistinguishability property.

use serde::{Deserialize, Serialize};

use dg_sim::clock::{ClockRatio, Cycle};
use dg_sim::types::ReqType;

use crate::template::SequenceSpec;

/// A request the defense rDAG prescribes to emit now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotDemand {
    /// Which parallel sequence demands the request.
    pub seq: usize,
    /// Prescribed bank.
    pub bank: u32,
    /// Prescribed read/write type.
    pub req_type: ReqType,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum SeqState {
    /// The next request may be emitted at or after `at`.
    Ready { at: Cycle },
    /// A request is in flight; the sequence stalls until its response.
    WaitingResponse,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SeqRuntime {
    spec: SequenceSpec,
    state: SeqState,
    /// Index of the next vertex to emit.
    k: u64,
}

/// Executes a defense rDAG: reports when each sequence demands a request
/// and advances as the shaper emits requests and receives responses.
///
/// # Example
///
/// ```
/// use dg_rdag::exec::RdagExecutor;
/// use dg_rdag::template::RdagTemplate;
/// use dg_sim::clock::ClockRatio;
///
/// let t = RdagTemplate::new(1, 150, 0.0);
/// let mut ex = RdagExecutor::new(t.sequence_specs(8), ClockRatio::new(1));
/// let d = ex.poll(0);
/// assert_eq!(d.len(), 1); // the chain demands its first request at reset
/// ex.emitted(d[0].seq, 0);
/// assert!(ex.poll(0).is_empty()); // now waiting for the response
/// ex.completed(d[0].seq, 100);
/// assert!(ex.poll(249).is_empty()); // weight not yet elapsed
/// assert_eq!(ex.poll(250).len(), 1); // 100 + 150 = 250
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RdagExecutor {
    seqs: Vec<SeqRuntime>,
    /// Edge weights converted to CPU cycles.
    weight_cpu: Vec<Cycle>,
    emitted_total: u64,
}

impl RdagExecutor {
    /// Builds an executor over the given sequence specs. Edge weights in
    /// the specs are DRAM cycles and are converted with `ratio`.
    pub fn new(specs: Vec<SequenceSpec>, ratio: ClockRatio) -> Self {
        let weight_cpu = specs.iter().map(|s| ratio.dram_to_cpu(s.weight)).collect();
        Self {
            seqs: specs
                .into_iter()
                .map(|spec| SeqRuntime {
                    spec,
                    state: SeqState::Ready { at: 0 },
                    k: 0,
                })
                .collect(),
            weight_cpu,
            emitted_total: 0,
        }
    }

    /// Number of parallel sequences.
    pub fn sequence_count(&self) -> usize {
        self.seqs.len()
    }

    /// Total requests demanded and emitted so far.
    pub fn emitted_total(&self) -> u64 {
        self.emitted_total
    }

    /// Sequences whose next request is due at or before `now`.
    pub fn poll(&self, now: Cycle) -> Vec<SlotDemand> {
        self.seqs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SeqState::Ready { at } if at <= now => Some(SlotDemand {
                    seq: i,
                    bank: s.spec.vertex_bank(s.k),
                    req_type: s.spec.vertex_type(s.k),
                }),
                _ => None,
            })
            .collect()
    }

    /// The demand of sequence `seq` if it is due at or before `now`, else
    /// `None`. Allocation-free per-sequence variant of
    /// [`poll`](Self::poll) for the shaper's hot tick path.
    pub fn demand(&self, seq: usize, now: Cycle) -> Option<SlotDemand> {
        let s = &self.seqs[seq];
        match s.state {
            SeqState::Ready { at } if at <= now => Some(SlotDemand {
                seq,
                bank: s.spec.vertex_bank(s.k),
                req_type: s.spec.vertex_type(s.k),
            }),
            _ => None,
        }
    }

    /// The earliest cycle at which any sequence's next request becomes (or
    /// already is) due, or `None` when every sequence is waiting on a
    /// response. This is the executor's contribution to the event-driven
    /// engine: ticks strictly before this cycle cannot produce a demand.
    pub fn earliest_due(&self) -> Option<Cycle> {
        self.seqs
            .iter()
            .filter_map(|s| match s.state {
                SeqState::Ready { at } => Some(at),
                SeqState::WaitingResponse => None,
            })
            .min()
    }

    /// Records that the shaper emitted the demanded request of sequence
    /// `seq` at `now`; the sequence now waits for its response.
    ///
    /// # Panics
    ///
    /// Panics if the sequence was not ready — callers must emit only what
    /// [`poll`](Self::poll) demanded.
    pub fn emitted(&mut self, seq: usize, now: Cycle) {
        let s = &mut self.seqs[seq];
        match s.state {
            SeqState::Ready { at } => {
                assert!(at <= now, "sequence {seq} emitted before it was due");
                s.state = SeqState::WaitingResponse;
                s.k += 1;
                self.emitted_total += 1;
            }
            SeqState::WaitingResponse => {
                panic!("sequence {seq} already has a request in flight")
            }
        }
    }

    /// Records that the in-flight request of sequence `seq` completed at
    /// `now`; the next request becomes due `weight` cycles later. When a
    /// request is delayed by contention, everything downstream shifts with
    /// it — the *versatility* property of §4.1.
    ///
    /// # Panics
    ///
    /// Panics if the sequence had no request in flight.
    pub fn completed(&mut self, seq: usize, now: Cycle) {
        let s = &mut self.seqs[seq];
        assert_eq!(
            s.state,
            SeqState::WaitingResponse,
            "sequence {seq} had no request in flight"
        );
        s.state = SeqState::Ready {
            at: now + self.weight_cpu[seq],
        };
    }

    /// Cycle at which sequence `seq`'s next request became due, or `None`
    /// while a request is in flight. Telemetry uses this to measure slot
    /// slack (how long a demand waited before the shaper filled it).
    pub fn due_at(&self, seq: usize) -> Option<Cycle> {
        match self.seqs[seq].state {
            SeqState::Ready { at } => Some(at),
            SeqState::WaitingResponse => None,
        }
    }

    /// True when any sequence has a request in flight.
    pub fn in_flight(&self) -> bool {
        self.seqs
            .iter()
            .any(|s| s.state == SeqState::WaitingResponse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::RdagTemplate;

    fn exec(seqs: u32, weight: u64) -> RdagExecutor {
        let t = RdagTemplate::new(seqs, weight, 0.0);
        RdagExecutor::new(t.sequence_specs(8), ClockRatio::new(1))
    }

    #[test]
    fn all_sequences_demand_at_reset() {
        let ex = exec(4, 100);
        let d = ex.poll(0);
        assert_eq!(d.len(), 4);
        let banks: Vec<u32> = d.iter().map(|s| s.bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sequence_lifecycle_and_weight() {
        let mut ex = exec(1, 150);
        ex.emitted(0, 0);
        assert!(ex.poll(1000).is_empty());
        assert!(ex.in_flight());
        ex.completed(0, 200);
        assert!(ex.poll(349).is_empty());
        let d = ex.poll(350);
        assert_eq!(d.len(), 1);
        // A single sequence cycles through every bank in turn.
        assert_eq!(d[0].bank, 1);
    }

    #[test]
    fn delay_propagates_downstream() {
        // The adaptivity property of Figure 5(d): a delayed completion
        // pushes the next arrival out by the same amount.
        let mut ex = exec(1, 150);
        ex.emitted(0, 0);
        ex.completed(0, 100); // uncontended
        let d = ex.poll(250);
        assert_eq!(d.len(), 1);
        ex.emitted(0, 250);
        ex.completed(0, 250 + 175); // contention added 75 cycles
        assert!(ex.poll(250 + 175 + 149).is_empty());
        assert_eq!(ex.poll(250 + 175 + 150).len(), 1);
    }

    #[test]
    fn sequences_advance_independently() {
        let mut ex = exec(2, 100);
        ex.emitted(0, 0);
        ex.emitted(1, 0);
        ex.completed(0, 50);
        // Sequence 0 becomes ready at 150; sequence 1 still in flight.
        let d = ex.poll(150);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].seq, 0);
    }

    #[test]
    fn clock_ratio_scales_weights() {
        let t = RdagTemplate::new(1, 100, 0.0);
        let mut ex = RdagExecutor::new(t.sequence_specs(8), ClockRatio::new(3));
        ex.emitted(0, 0);
        ex.completed(0, 0);
        assert!(ex.poll(299).is_empty());
        assert_eq!(ex.poll(300).len(), 1);
    }

    #[test]
    fn write_vertices_surface_in_demands() {
        let t = RdagTemplate::new(1, 0, 0.5);
        let spec = t.sequence_specs(8);
        let mut ex = RdagExecutor::new(spec.clone(), ClockRatio::new(1));
        let mut types = Vec::new();
        for now in 0..32 {
            let d = ex.poll(now);
            types.push(d[0].req_type);
            ex.emitted(0, now);
            ex.completed(0, now);
        }
        // The demands surface exactly the spec's deterministic write
        // marker, and at ratio 0.5 both types appear.
        let expected: Vec<ReqType> = (0..32).map(|k| spec[0].vertex_type(k)).collect();
        assert_eq!(types, expected);
        assert!(types.contains(&ReqType::Write));
        assert!(types.contains(&ReqType::Read));
    }

    #[test]
    fn emitted_counts() {
        let mut ex = exec(2, 0);
        assert_eq!(ex.emitted_total(), 0);
        ex.emitted(0, 0);
        ex.emitted(1, 0);
        assert_eq!(ex.emitted_total(), 2);
    }

    #[test]
    #[should_panic(expected = "already has a request in flight")]
    fn double_emit_panics() {
        let mut ex = exec(1, 100);
        ex.emitted(0, 0);
        ex.emitted(0, 1);
    }

    #[test]
    #[should_panic(expected = "no request in flight")]
    fn stray_completion_panics() {
        let mut ex = exec(1, 100);
        ex.completed(0, 5);
    }

    #[test]
    #[should_panic(expected = "before it was due")]
    fn premature_emit_panics() {
        let mut ex = exec(1, 100);
        ex.emitted(0, 0);
        ex.completed(0, 10);
        ex.emitted(0, 50); // due at 110
    }
}
