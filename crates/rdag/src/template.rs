//! rDAG templates and the profiling search space (§4.3).
//!
//! Rather than searching all possible rDAGs, DAGguise derives candidate
//! defense rDAGs from a regular, repetitive template configured by three
//! parameters: the number of *parallel sequences*, the uniform *edge
//! weight*, and the *write ratio*. Each sequence is an infinite chain of
//! strictly dependent requests that cycles through a fixed set of banks
//! (Figure 6: with 8 banks and 4 sequences, each sequence alternates
//! between two banks).

use serde::{Deserialize, Serialize};

use dg_sim::types::ReqType;

use crate::graph::{Rdag, Vertex};

/// A configured rDAG template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdagTemplate {
    /// Number of parallel sequences (1, 2, 4 or 8 in the paper's sweep).
    pub sequences: u32,
    /// Uniform edge weight in DRAM cycles (0–400 in Figure 7).
    pub weight: u64,
    /// Fraction of vertices marked as writes (DocDist uses 1/1000).
    pub write_ratio: f64,
}

impl RdagTemplate {
    /// Creates a template.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is zero or `write_ratio` is outside `[0, 1]`.
    pub fn new(sequences: u32, weight: u64, write_ratio: f64) -> Self {
        assert!(sequences > 0, "need at least one sequence");
        assert!(
            (0.0..=1.0).contains(&write_ratio),
            "write ratio must be in [0, 1]"
        );
        Self {
            sequences,
            weight,
            write_ratio,
        }
    }

    /// The deterministic write stride: every `period`-th vertex is a write
    /// (`None` when the ratio is zero). Determinism matters for security —
    /// the read/write pattern must be secret-independent (§4.4).
    pub fn write_period(&self) -> Option<u64> {
        if self.write_ratio <= 0.0 {
            None
        } else {
            Some((1.0 / self.write_ratio).round().max(1.0) as u64)
        }
    }

    /// Compiles the template into per-sequence state-machine specs for a
    /// device with `banks` banks.
    ///
    /// Sequence `i` cycles through the banks congruent to `i` modulo the
    /// sequence count: with 8 banks, 4 sequences give per-sequence bank
    /// pairs `{0,4}, {1,5}, {2,6}, {3,7}` (Figure 6a) and 2 sequences give
    /// `{0,2,4,6}, {1,3,5,7}` (Figure 6b).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn sequence_specs(&self, banks: u32) -> Vec<SequenceSpec> {
        assert!(banks > 0, "need at least one bank");
        let period = self.write_period();
        (0..self.sequences)
            .map(|i| {
                let mut seq_banks: Vec<u32> = (0..banks)
                    .filter(|b| b % self.sequences == i % banks.max(1))
                    .collect();
                if seq_banks.is_empty() {
                    // More sequences than banks: pin to one bank round-robin.
                    seq_banks = vec![i % banks];
                }
                SequenceSpec {
                    banks: seq_banks,
                    weight: self.weight,
                    write_period: period,
                    phase: i as u64,
                }
            })
            .collect()
    }

    /// Materializes `len` vertices per sequence into an explicit [`Rdag`]
    /// (for visualization and for finite-horizon analyses).
    pub fn instantiate(&self, banks: u32, len: usize) -> Rdag {
        let specs = self.sequence_specs(banks);
        let mut g = Rdag::new();
        for spec in &specs {
            let mut prev = None;
            for k in 0..len {
                let vertex = Vertex {
                    bank: spec.banks[k % spec.banks.len()],
                    req_type: spec.vertex_type(k as u64),
                };
                let id = g.add_vertex(vertex);
                if let Some(p) = prev {
                    g.add_edge(p, id, self.weight)
                        .expect("template edges valid");
                }
                prev = Some(id);
            }
        }
        g
    }

    /// The profiling search space used for Figure 7: sequences ∈ {1,2,4,8},
    /// weight ∈ {0, 50, …, 400} DRAM cycles.
    pub fn search_space(write_ratio: f64) -> Vec<RdagTemplate> {
        let mut out = Vec::new();
        for &seqs in &[1u32, 2, 4, 8] {
            for weight in (0..=400).step_by(50) {
                out.push(RdagTemplate::new(seqs, weight, write_ratio));
            }
        }
        out
    }

    /// Requests per DRAM cycle this template prescribes in the absence of
    /// contention, assuming each request occupies the controller for
    /// `service` DRAM cycles. Higher density demands more bandwidth (§4.3:
    /// "the density of the defense rDAG determines the allocated
    /// bandwidth").
    pub fn density(&self, service: u64) -> f64 {
        f64::from(self.sequences) / (self.weight + service) as f64
    }
}

/// One compiled sequence of a template: an infinite chain alternating over
/// `banks`, with a `weight`-cycle gap between a completion and the next
/// arrival.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceSpec {
    /// Banks this sequence cycles through.
    pub banks: Vec<u32>,
    /// Edge weight in DRAM cycles.
    pub weight: u64,
    /// Every `write_period`-th vertex is a write (`None`: reads only).
    pub write_period: Option<u64>,
    /// Sequence index, used to de-phase the write strides across sequences.
    pub phase: u64,
}

impl SequenceSpec {
    /// The bank of the `k`-th vertex of this sequence.
    pub fn vertex_bank(&self, k: u64) -> u32 {
        self.banks[(k % self.banks.len() as u64) as usize]
    }

    /// The type of the `k`-th vertex of this sequence.
    ///
    /// Write vertices are selected by a deterministic hash of the vertex
    /// index rather than a fixed stride: a stride whose period shares a
    /// factor with the sequence's bank-rotation length would pin write
    /// slots to a subset of banks, permanently starving write-backs to the
    /// others. The hash decorrelates the write marker from the bank
    /// rotation while remaining a pure (secret-independent) function of
    /// the vertex index, preserving one write per `write_period` vertices
    /// on average.
    pub fn vertex_type(&self, k: u64) -> ReqType {
        match self.write_period {
            Some(p) => {
                let h = splitmix(k.wrapping_add(self.phase.wrapping_mul(0x9E37_79B9)));
                if h % p == p - 1 {
                    ReqType::Write
                } else {
                    ReqType::Read
                }
            }
            None => ReqType::Read,
        }
    }
}

/// SplitMix64 finalizer: a fixed, publicly-known mixing function.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6a_four_sequences() {
        let t = RdagTemplate::new(4, 100, 0.0);
        let specs = t.sequence_specs(8);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].banks, vec![0, 4]);
        assert_eq!(specs[1].banks, vec![1, 5]);
        assert_eq!(specs[2].banks, vec![2, 6]);
        assert_eq!(specs[3].banks, vec![3, 7]);
        // Alternation between the two banks.
        assert_eq!(specs[0].vertex_bank(0), 0);
        assert_eq!(specs[0].vertex_bank(1), 4);
        assert_eq!(specs[0].vertex_bank(2), 0);
    }

    #[test]
    fn figure6b_two_sequences() {
        let t = RdagTemplate::new(2, 200, 0.0);
        let specs = t.sequence_specs(8);
        assert_eq!(specs[0].banks, vec![0, 2, 4, 6]);
        assert_eq!(specs[1].banks, vec![1, 3, 5, 7]);
    }

    #[test]
    fn more_sequences_than_banks() {
        let t = RdagTemplate::new(8, 100, 0.0);
        let specs = t.sequence_specs(4);
        assert_eq!(specs.len(), 8);
        for s in &specs {
            assert_eq!(s.banks.len(), 1);
            assert!(s.banks[0] < 4);
        }
    }

    #[test]
    fn write_period_from_ratio() {
        assert_eq!(RdagTemplate::new(1, 0, 0.0).write_period(), None);
        assert_eq!(RdagTemplate::new(1, 0, 0.001).write_period(), Some(1000));
        assert_eq!(RdagTemplate::new(1, 0, 0.5).write_period(), Some(2));
        assert_eq!(RdagTemplate::new(1, 0, 1.0).write_period(), Some(1));
    }

    #[test]
    fn write_marker_is_deterministic_and_ratio_accurate() {
        let t = RdagTemplate::new(1, 100, 0.25);
        let spec = &t.sequence_specs(8)[0];
        let a: Vec<ReqType> = (0..64).map(|k| spec.vertex_type(k)).collect();
        let b: Vec<ReqType> = (0..64).map(|k| spec.vertex_type(k)).collect();
        assert_eq!(a, b, "pure function of the vertex index");
        let writes = (0..40_000)
            .filter(|&k| spec.vertex_type(k).is_write())
            .count();
        let share = writes as f64 / 40_000.0;
        assert!((share - 0.25).abs() < 0.02, "share = {share}");
    }

    #[test]
    fn write_slots_reach_every_bank() {
        // Regression: a strided write marker whose period shared a factor
        // with the 2-bank alternation pinned write slots to half the
        // banks, starving the others' write-backs (deadlock). The hashed
        // marker must produce a write slot for every bank a sequence
        // visits.
        let t = RdagTemplate::new(4, 100, 0.25);
        for spec in t.sequence_specs(8) {
            let mut write_banks: Vec<u32> = (0..10_000)
                .filter(|&k| spec.vertex_type(k).is_write())
                .map(|k| spec.vertex_bank(k))
                .collect();
            write_banks.sort_unstable();
            write_banks.dedup();
            assert_eq!(
                write_banks, spec.banks,
                "every bank of {:?} gets write slots",
                spec.banks
            );
        }
    }

    #[test]
    fn instantiate_produces_parallel_chains() {
        let t = RdagTemplate::new(4, 100, 0.0);
        let g = t.instantiate(8, 5);
        assert_eq!(g.vertex_count(), 20);
        assert_eq!(g.edge_count(), 16);
        assert_eq!(g.roots().len(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn search_space_shape() {
        let space = RdagTemplate::search_space(0.001);
        assert_eq!(space.len(), 4 * 9);
        assert!(space.iter().any(|t| t.sequences == 8 && t.weight == 0));
        assert!(space.iter().any(|t| t.sequences == 1 && t.weight == 400));
    }

    #[test]
    fn density_ordering() {
        // Denser templates (more sequences, lower weight) demand more
        // bandwidth.
        let sparse = RdagTemplate::new(1, 400, 0.0).density(25);
        let dense = RdagTemplate::new(8, 0, 0.0).density(25);
        assert!(dense > sparse * 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn zero_sequences_panics() {
        RdagTemplate::new(0, 100, 0.0);
    }

    #[test]
    #[should_panic(expected = "write ratio")]
    fn bad_write_ratio_panics() {
        RdagTemplate::new(1, 100, 1.5);
    }
}
