//! Baseline memory timing side-channel defenses.
//!
//! The paper compares DAGguise against the prior art:
//!
//! * [`fs`] — **Fixed Service** (Shafiee et al., MICRO'15, §3.1) and its
//!   performance-optimized variant **FS-BTA** (Bank Triple Alternation,
//!   §6.1): deterministic slotted schedules that completely isolate
//!   security domains at the cost of static bandwidth partitioning.
//! * [`tp`] — **Temporal Partitioning** (Wang et al., HPCA'14, §8):
//!   coarse time-multiplexing of the whole controller across domains.
//! * [`camouflage`] — **Camouflage** (Zhou et al., HPCA'17, §3.1): a
//!   per-domain shaper that matches a *distribution* of injection
//!   intervals but — unlike DAGguise — hides neither the ordering of
//!   intervals nor bank information (Figure 2).
//!
//! Fixed Service and Temporal Partitioning replace the memory controller
//! (they implement [`dg_mem::MemorySubsystem`]); Camouflage is a
//! [`dg_mem::DomainShaper`] plugged into a shared controller, like
//! DAGguise itself.

pub mod camouflage;
pub mod fs;
pub mod fs_spatial;
pub mod tp;

pub use camouflage::{CamouflageShaper, IntervalDistribution};
pub use fs::{FixedService, FsConfig};
pub use fs_spatial::{FsSpatial, FsSpatialConfig};
pub use tp::{TemporalPartition, TpConfig};
