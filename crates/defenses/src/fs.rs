//! Fixed Service and FS-BTA (Shafiee et al. \[25\]).
//!
//! Fixed Service assigns every memory request to a deterministic *slot*.
//! Slots are issued on a fixed stride and rotate round-robin across
//! security domains with a **no-skip** policy: if the owning domain has no
//! eligible request, the slot is wasted. Within a slot a request flows
//! through the queues, command bus, bank and data bus on a fixed pipeline,
//! so requests in different slots never collide on any shared resource and
//! no domain can observe another's traffic.
//!
//! The baseline FS stride must cover the slowest pipeline stage — the bank
//! occupancy `tRC` — because consecutive slots may target the same bank.
//! **FS-BTA** (Bank Triple Alternation) divides the banks into three groups
//! and restricts slot *k* to group *k* mod 3: consecutive slots then never
//! touch the same bank, letting the stride shrink to `tRC/3` while
//! maintaining non-interference.

use std::collections::VecDeque;

use dg_dram::{AddressMapper, MapScheme};
use dg_sim::clock::Cycle;
use dg_sim::config::SystemConfig;
use dg_sim::types::{MemRequest, MemResponse};
use serde::{Deserialize, Serialize};

use dg_mem::{MemStats, MemorySubsystem};

/// Configuration of a Fixed Service controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsConfig {
    /// Number of security domains sharing the schedule.
    pub domains: usize,
    /// Slot stride in CPU cycles.
    pub stride: Cycle,
    /// Deterministic service latency (slot start → response) in CPU cycles.
    pub service: Cycle,
    /// Bank groups for BTA (1 = plain FS, 3 = FS-BTA).
    pub bank_groups: u32,
    /// Per-domain request queue capacity.
    pub queue_capacity: usize,
}

impl FsConfig {
    /// Plain Fixed Service for `domains` domains: the stride covers a full
    /// bank cycle (`tRC`), the worst-case stage occupancy.
    pub fn fixed_service(cfg: &SystemConfig, domains: usize) -> Self {
        let r = cfg.clock_ratio;
        Self {
            domains,
            stride: r.dram_to_cpu(cfg.timing.tRC),
            service: r.dram_to_cpu(cfg.timing.tRCD + cfg.timing.tCAS + cfg.timing.tBURST),
            bank_groups: 1,
            queue_capacity: cfg.queues.transaction_queue,
        }
    }

    /// FS-BTA: triple bank alternation lets slots issue three times as
    /// often while the per-bank ACT-to-ACT spacing still respects `tRC`.
    pub fn fs_bta(cfg: &SystemConfig, domains: usize) -> Self {
        let r = cfg.clock_ratio;
        Self {
            domains,
            stride: r.dram_to_cpu(cfg.timing.tRC.div_ceil(3)),
            service: r.dram_to_cpu(cfg.timing.tRCD + cfg.timing.tCAS + cfg.timing.tBURST),
            bank_groups: 3,
            queue_capacity: cfg.queues.transaction_queue,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    resp: MemResponse,
}

/// The Fixed Service / FS-BTA memory subsystem.
///
/// Requests wait in per-domain queues (private by construction: occupancy
/// of one domain's queue is invisible to others). Slot `k` fires at cycle
/// `k × stride`, belongs to domain `k mod domains`, and — with BTA — may
/// only issue a request whose bank lies in group `k mod bank_groups`.
/// Service is fully deterministic: a request issued in a slot completes
/// exactly `service` cycles later.
#[derive(Debug)]
pub struct FixedService {
    config: FsConfig,
    mapper: AddressMapper,
    queues: Vec<VecDeque<MemRequest>>,
    in_flight: Vec<Scheduled>,
    next_slot: u64,
    stats: MemStats,
    /// Slots owned by each domain that fired with no eligible request.
    wasted_slots: u64,
    issued: u64,
}

impl FixedService {
    /// Builds the controller for `cfg.domains` domains.
    pub fn new(sys: &SystemConfig, config: FsConfig) -> Self {
        assert!(config.domains > 0, "need at least one domain");
        assert!(config.stride > 0, "stride must be positive");
        let mapper = AddressMapper::new(
            MapScheme::BankInterleaved,
            sys.dram_org.banks,
            sys.dram_org.row_bytes,
            sys.dram_org.line_bytes,
        );
        Self {
            mapper,
            queues: (0..config.domains).map(|_| VecDeque::new()).collect(),
            in_flight: Vec::new(),
            next_slot: 0,
            stats: MemStats::new(config.domains + 2, sys.dram_org.line_bytes),
            wasted_slots: 0,
            issued: 0,
            config,
        }
    }

    /// Slots that fired with no eligible request (wasted bandwidth).
    pub fn wasted_slots(&self) -> u64 {
        self.wasted_slots
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The configuration in use.
    pub fn config(&self) -> &FsConfig {
        &self.config
    }

    fn fire_slot(&mut self, slot: u64, now: Cycle) {
        let domain = (slot % self.config.domains as u64) as usize;
        let group = (slot % u64::from(self.config.bank_groups)) as u32;
        let q = &mut self.queues[domain];
        let pos = q.iter().position(|r| {
            self.config.bank_groups == 1
                || self.mapper.decode(r.addr).bank % self.config.bank_groups == group
        });
        match pos {
            Some(i) => {
                let req = q.remove(i).expect("position valid");
                self.issued += 1;
                self.in_flight.push(Scheduled {
                    resp: MemResponse {
                        id: req.id,
                        domain: req.domain,
                        addr: req.addr,
                        req_type: req.req_type,
                        kind: req.kind,
                        arrived_at: req.created_at,
                        completed_at: now + self.config.service,
                    },
                });
            }
            None => self.wasted_slots += 1,
        }
    }
}

impl MemorySubsystem for FixedService {
    fn try_send(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        let d = req.domain.0 as usize;
        assert!(d < self.queues.len(), "domain {} out of range", req.domain);
        if self.queues[d].len() >= self.config.queue_capacity {
            return Err(req);
        }
        self.queues[d].push_back(req);
        Ok(())
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        // Fire every slot whose boundary has been reached. Slots skipped by
        // the event-driven engine while all queues were empty are replayed
        // here with their original timestamps, so wasted-slot accounting and
        // any future issue times match the naive per-cycle loop exactly.
        while self.next_slot * self.config.stride <= now {
            let slot = self.next_slot;
            let at = slot * self.config.stride;
            self.next_slot += 1;
            self.fire_slot(slot, at);
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].resp.completed_at <= now {
                let s = self.in_flight.swap_remove(i);
                self.stats.record(&s.resp);
                out.push(s.resp);
            } else {
                i += 1;
            }
        }
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // In-flight completions are delivered at their completed_at cycle.
        let mut ev = self
            .in_flight
            .iter()
            .map(|s| s.resp.completed_at.max(now))
            .min();
        // With queued work, the next slot boundary may issue (never skip
        // it: whether a slot serves or wastes depends on queue contents).
        // With all queues empty, wasted slots replay lazily in tick_into.
        if self.queues.iter().any(|q| !q.is_empty()) {
            let boundary = (self.next_slot * self.config.stride).max(now);
            ev = dg_sim::clock::earliest_event(ev, Some(boundary));
        }
        ev
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn free_slots(&self) -> usize {
        self.queues
            .iter()
            .map(|q| self.config.queue_capacity - q.len())
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn sys() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    fn req(domain: u16, addr: u64, id: u64, now: Cycle) -> MemRequest {
        MemRequest::read(DomainId(domain), addr, now).with_id(ReqId::compose(DomainId(domain), id))
    }

    fn drive(fs: &mut FixedService, until: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for now in 0..until {
            out.extend(fs.tick(now));
        }
        out
    }

    #[test]
    fn slots_rotate_round_robin() {
        let s = sys();
        let cfg = FsConfig::fixed_service(&s, 2);
        let mut fs = FixedService::new(&s, cfg);
        // Only domain 1 has traffic; its requests are served every 2nd slot.
        fs.try_send(req(1, 0x40, 1, 0), 0).unwrap();
        fs.try_send(req(1, 0x80, 2, 0), 0).unwrap();
        let done = drive(&mut fs, cfg.stride * 6);
        assert_eq!(done.len(), 2);
        // Domain 1 owns odd slots: requests issue at stride*1 and stride*3.
        assert_eq!(done[0].completed_at, cfg.stride + cfg.service);
        assert_eq!(done[1].completed_at, cfg.stride * 3 + cfg.service);
        assert!(
            fs.wasted_slots() >= 3,
            "domain 0's slots are wasted (no-skip)"
        );
    }

    #[test]
    fn deterministic_latency_independent_of_other_domain() {
        let s = sys();
        let cfg = FsConfig::fixed_service(&s, 2);

        // Run A: domain 0 alone.
        let mut fs_a = FixedService::new(&s, cfg);
        fs_a.try_send(req(0, 0x40, 1, 0), 0).unwrap();
        let a = drive(&mut fs_a, cfg.stride * 8);

        // Run B: domain 1 floods the controller.
        let mut fs_b = FixedService::new(&s, cfg);
        fs_b.try_send(req(0, 0x40, 1, 0), 0).unwrap();
        for i in 0..16 {
            fs_b.try_send(req(1, 0x1000 + i * 64, i, 0), 0).unwrap();
        }
        let b = drive(&mut fs_b, cfg.stride * 8);

        let a0: Vec<_> = a.iter().filter(|r| r.domain == DomainId(0)).collect();
        let b0: Vec<_> = b.iter().filter(|r| r.domain == DomainId(0)).collect();
        assert_eq!(a0.len(), 1);
        assert_eq!(
            a0[0].completed_at, b0[0].completed_at,
            "non-interference: domain 0 timing unaffected by domain 1 load"
        );
    }

    #[test]
    fn bta_stride_is_a_third() {
        let s = sys();
        let fs = FsConfig::fixed_service(&s, 2);
        let bta = FsConfig::fs_bta(&s, 2);
        assert_eq!(bta.stride, fs.stride.div_ceil(3));
        assert_eq!(bta.bank_groups, 3);
    }

    #[test]
    fn bta_skips_wrong_bank_group() {
        let s = sys();
        let cfg = FsConfig::fs_bta(&s, 1); // single domain: every slot ours
        let mut fs = FixedService::new(&s, cfg);
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        // A request to bank 1 (group 1) cannot use slot 0 (group 0).
        let addr = mapper.encode(dg_dram::PhysLoc {
            bank: 1,
            row: 0,
            col: 0,
        });
        fs.try_send(req(0, addr, 1, 0), 0).unwrap();
        let done = drive(&mut fs, cfg.stride * 4);
        assert_eq!(done.len(), 1);
        // Issued in slot 1 (the first group-1 slot), not slot 0.
        assert_eq!(done[0].completed_at, cfg.stride + cfg.service);
        assert!(fs.wasted_slots() >= 1);
    }

    #[test]
    fn bta_throughput_beats_fs() {
        let s = sys();
        let n = 24u64;
        let run = |cfg: FsConfig| {
            let mut fs = FixedService::new(&s, cfg);
            for i in 0..n {
                // Spread across banks so BTA slots rarely go to waste.
                fs.try_send(req(0, i * 64, i, 0), 0).unwrap();
            }
            let mut done = 0u64;
            let mut now = 0;
            while done < n {
                done += fs.tick(now).len() as u64;
                now += 1;
            }
            now
        };
        let t_fs = run(FsConfig::fixed_service(&s, 1));
        let t_bta = run(FsConfig::fs_bta(&s, 1));
        assert!(
            t_bta * 2 < t_fs,
            "BTA ({t_bta}) should be well over 2x faster than FS ({t_fs})"
        );
    }

    #[test]
    fn backpressure_per_domain() {
        let s = sys();
        let mut cfg = FsConfig::fixed_service(&s, 2);
        cfg.queue_capacity = 2;
        let mut fs = FixedService::new(&s, cfg);
        fs.try_send(req(0, 0x0, 1, 0), 0).unwrap();
        fs.try_send(req(0, 0x40, 2, 0), 0).unwrap();
        assert!(fs.try_send(req(0, 0x80, 3, 0), 0).is_err());
        // The other domain's queue is unaffected.
        fs.try_send(req(1, 0x0, 1, 0), 0).unwrap();
        assert_eq!(fs.free_slots(), 0); // conservative min across domains
    }

    #[test]
    fn stats_recorded() {
        let s = sys();
        let cfg = FsConfig::fixed_service(&s, 2);
        let mut fs = FixedService::new(&s, cfg);
        fs.try_send(req(0, 0x40, 1, 0), 0).unwrap();
        drive(&mut fs, cfg.stride * 4);
        assert_eq!(fs.stats().domain(DomainId(0)).reads, 1);
    }
}
