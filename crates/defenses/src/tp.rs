//! Temporal Partitioning (Wang et al. \[29\], discussed in §8).
//!
//! TP divides time into fixed-length *periods*; during domain *d*'s period
//! only *d*'s requests are scheduled. Like Fixed Service this guarantees
//! non-interference, but the coarse granularity wastes even more bandwidth:
//! a domain's requests arriving just after its period wait for a full
//! rotation, and dead time must be reserved at each period's end so the
//! last request drains before the next domain begins.

use std::collections::VecDeque;

use dg_sim::clock::Cycle;
use dg_sim::config::SystemConfig;
use dg_sim::types::{MemRequest, MemResponse};
use serde::{Deserialize, Serialize};

use dg_mem::{MemStats, MemorySubsystem};

/// Configuration for the Temporal Partitioning controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpConfig {
    /// Number of security domains in the rotation.
    pub domains: usize,
    /// Period length per domain in CPU cycles.
    pub period: Cycle,
    /// Deterministic service latency in CPU cycles.
    pub service: Cycle,
    /// Issue interval within a period (bank occupancy) in CPU cycles.
    pub issue_interval: Cycle,
    /// Per-domain queue capacity.
    pub queue_capacity: usize,
}

impl TpConfig {
    /// A TP configuration with periods of `slots_per_period` request slots.
    pub fn new(sys: &SystemConfig, domains: usize, slots_per_period: u64) -> Self {
        let r = sys.clock_ratio;
        let issue_interval = r.dram_to_cpu(sys.timing.tRC);
        Self {
            domains,
            period: issue_interval * slots_per_period,
            service: r.dram_to_cpu(sys.timing.tRCD + sys.timing.tCAS + sys.timing.tBURST),
            issue_interval,
            queue_capacity: sys.queues.transaction_queue,
        }
    }
}

/// The Temporal Partitioning memory subsystem.
#[derive(Debug)]
pub struct TemporalPartition {
    config: TpConfig,
    queues: Vec<VecDeque<MemRequest>>,
    in_flight: Vec<MemResponse>,
    stats: MemStats,
    issued: u64,
}

impl TemporalPartition {
    /// Builds the controller.
    pub fn new(sys: &SystemConfig, config: TpConfig) -> Self {
        assert!(config.domains > 0, "need at least one domain");
        assert!(
            config.period >= config.issue_interval,
            "period must hold at least one slot"
        );
        Self {
            queues: (0..config.domains).map(|_| VecDeque::new()).collect(),
            in_flight: Vec::new(),
            stats: MemStats::new(config.domains + 2, sys.dram_org.line_bytes),
            issued: 0,
            config,
        }
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The domain owning the period containing `now`, and whether a new
    /// issue at `now` would still drain before the period ends.
    fn slot_at(&self, now: Cycle) -> Option<usize> {
        let period_idx = now / self.config.period;
        let offset = now % self.config.period;
        // Issue only on slot boundaries within the period.
        if !offset.is_multiple_of(self.config.issue_interval) {
            return None;
        }
        // Dead time: the response must complete inside the owner's period.
        if offset + self.config.service > self.config.period {
            return None;
        }
        Some((period_idx % self.config.domains as u64) as usize)
    }
}

impl MemorySubsystem for TemporalPartition {
    fn try_send(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        let d = req.domain.0 as usize;
        assert!(d < self.queues.len(), "domain {} out of range", req.domain);
        if self.queues[d].len() >= self.config.queue_capacity {
            return Err(req);
        }
        self.queues[d].push_back(req);
        Ok(())
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        if let Some(domain) = self.slot_at(now) {
            if let Some(req) = self.queues[domain].pop_front() {
                self.issued += 1;
                self.in_flight.push(MemResponse {
                    id: req.id,
                    domain: req.domain,
                    addr: req.addr,
                    req_type: req.req_type,
                    kind: req.kind,
                    arrived_at: req.created_at,
                    completed_at: now + self.config.service,
                });
            }
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].completed_at <= now {
                let resp = self.in_flight.swap_remove(i);
                self.stats.record(&resp);
                out.push(resp);
            } else {
                i += 1;
            }
        }
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // Completions in flight are delivered at their completed_at cycle.
        let mut ev = self.in_flight.iter().map(|r| r.completed_at.max(now)).min();
        // Queued work is served at the owner's next usable slot boundary,
        // computed analytically: walk at most one full rotation plus one
        // period; every owner appears within that horizon with a usable
        // first slot (offset 0) whenever service fits in a period.
        if self.queues.iter().any(|q| !q.is_empty()) && self.config.service <= self.config.period {
            let p0 = now / self.config.period;
            for p in p0..=p0 + self.config.domains as u64 {
                let owner = (p % self.config.domains as u64) as usize;
                if self.queues[owner].is_empty() {
                    continue;
                }
                let period_start = p * self.config.period;
                let from = now.max(period_start) - period_start;
                let offset = from.next_multiple_of(self.config.issue_interval);
                // Dead time: the issue must drain inside the owner's period.
                if offset + self.config.service <= self.config.period {
                    ev = dg_sim::clock::earliest_event(ev, Some(period_start + offset));
                    break;
                }
            }
        }
        ev
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn free_slots(&self) -> usize {
        self.queues
            .iter()
            .map(|q| self.config.queue_capacity - q.len())
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn sys() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    fn req(domain: u16, addr: u64, id: u64) -> MemRequest {
        MemRequest::read(DomainId(domain), addr, 0).with_id(ReqId::compose(DomainId(domain), id))
    }

    fn drive(tp: &mut TemporalPartition, until: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for now in 0..until {
            out.extend(tp.tick(now));
        }
        out
    }

    #[test]
    fn domain_waits_for_its_period() {
        let s = sys();
        let cfg = TpConfig::new(&s, 2, 4);
        let mut tp = TemporalPartition::new(&s, cfg);
        // Domain 1's request arrives at cycle 0 but period 0 belongs to
        // domain 0: it issues at the start of period 1.
        tp.try_send(req(1, 0x40, 1), 0).unwrap();
        let done = drive(&mut tp, cfg.period * 3);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, cfg.period + cfg.service);
    }

    #[test]
    fn dead_time_blocks_issue_near_period_end() {
        let s = sys();
        let cfg = TpConfig::new(&s, 2, 2);
        let tp = TemporalPartition::new(&s, cfg);
        // Last slot boundary in the period is at period - issue_interval;
        // with service > issue_interval that slot is dead.
        let last_boundary = cfg.period - cfg.issue_interval;
        if cfg.service > cfg.issue_interval {
            assert_eq!(tp.slot_at(last_boundary), None);
        }
        // Slot 0 of period 0 is usable by domain 0.
        assert_eq!(tp.slot_at(0), Some(0));
    }

    #[test]
    fn non_interference_across_domains() {
        let s = sys();
        let cfg = TpConfig::new(&s, 2, 4);

        let mut alone = TemporalPartition::new(&s, cfg);
        alone.try_send(req(0, 0x40, 1), 0).unwrap();
        let a = drive(&mut alone, cfg.period * 4);

        let mut loaded = TemporalPartition::new(&s, cfg);
        loaded.try_send(req(0, 0x40, 1), 0).unwrap();
        for i in 0..8 {
            loaded.try_send(req(1, 0x1000 + i * 64, i), 0).unwrap();
        }
        let b = drive(&mut loaded, cfg.period * 4);

        let a0: Vec<_> = a.iter().filter(|r| r.domain == DomainId(0)).collect();
        let b0: Vec<_> = b.iter().filter(|r| r.domain == DomainId(0)).collect();
        assert_eq!(a0[0].completed_at, b0[0].completed_at);
    }

    #[test]
    fn multiple_requests_in_one_period() {
        let s = sys();
        let cfg = TpConfig::new(&s, 1, 8);
        let mut tp = TemporalPartition::new(&s, cfg);
        for i in 0..4 {
            tp.try_send(req(0, i * 64, i), 0).unwrap();
        }
        let done = drive(&mut tp, cfg.period);
        assert_eq!(done.len(), 4);
        // Issued at consecutive slot boundaries.
        for (i, r) in done.iter().enumerate() {
            assert_eq!(r.completed_at, cfg.issue_interval * i as u64 + cfg.service);
        }
    }

    #[test]
    fn backpressure() {
        let s = sys();
        let mut cfg = TpConfig::new(&s, 1, 4);
        cfg.queue_capacity = 1;
        let mut tp = TemporalPartition::new(&s, cfg);
        tp.try_send(req(0, 0, 1), 0).unwrap();
        assert!(tp.try_send(req(0, 64, 2), 0).is_err());
    }

    #[test]
    fn next_event_matches_naive_activity() {
        let s = sys();
        let cfg = TpConfig::new(&s, 2, 4);
        let mut tp = TemporalPartition::new(&s, cfg);
        // Idle with nothing queued: fully passive.
        assert_eq!(tp.next_event_at(0), None);
        // Domain 1 queued at cycle 0: the predicted event is the first tick
        // that actually produces activity (issue at the start of period 1).
        tp.try_send(req(1, 0x40, 1), 0).unwrap();
        let predicted = tp.next_event_at(1).expect("queued work must wake");
        assert_eq!(predicted, cfg.period);
        // All ticks strictly before the prediction are provably inert.
        for now in 1..predicted {
            assert!(tp.tick(now).is_empty());
            assert_eq!(tp.issued(), 0);
        }
        assert!(tp.tick(predicted).is_empty());
        assert_eq!(tp.issued(), 1);
        // Now the only event left is the in-flight completion.
        assert_eq!(
            tp.next_event_at(predicted + 1),
            Some(cfg.period + cfg.service)
        );
    }
}
