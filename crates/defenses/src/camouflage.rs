//! Camouflage (Zhou et al. \[36\]).
//!
//! Camouflage shapes the *injection intervals* between consecutive memory
//! requests to follow a profiled distribution that is independent of the
//! secret, delaying real requests and issuing fakes when necessary.
//!
//! Its two weaknesses, which DAGguise fixes (Figure 2 / §3.1):
//!
//! 1. Only the *distribution* of intervals is fixed — the *ordering* of
//!    intervals still depends on the victim's traffic, because the sampler
//!    is re-seeded from the victim's request stream (we model this as the
//!    shaper drawing a fresh interval only when forwarding completes, with
//!    the draw order perturbed by queue occupancy — matching the paper's
//!    observation that "the output of the shaper is not necessarily
//!    deterministic").
//! 2. Bank information is not shaped at all: forwarded requests carry the
//!    victim's own bank, and fakes pick uniformly random banks, so bank
//!    contention still leaks.

use std::collections::VecDeque;

use dg_dram::{AddressMapper, MapScheme, PhysLoc};
use dg_sim::clock::Cycle;
use dg_sim::config::SystemConfig;
use dg_sim::rng::DetRng;
use dg_sim::types::{DomainId, MemRequest, MemResponse, ReqId, ReqType};
use serde::{Deserialize, Serialize};

use dg_mem::DomainShaper;

/// An empirical distribution of injection intervals (CPU cycles), as
/// produced by Camouflage's offline profiling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalDistribution {
    intervals: Vec<Cycle>,
}

impl IntervalDistribution {
    /// Creates a distribution from profiled samples.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty.
    pub fn new(intervals: Vec<Cycle>) -> Self {
        assert!(!intervals.is_empty(), "distribution needs samples");
        Self { intervals }
    }

    /// The Figure 2 example: one 200-cycle and one 400-cycle interval.
    pub fn figure2() -> Self {
        Self::new(vec![200, 400])
    }

    /// Draws an interval uniformly from the samples.
    pub fn sample(&self, rng: &mut DetRng) -> Cycle {
        self.intervals[rng.next_below(self.intervals.len() as u64) as usize]
    }

    /// Mean interval.
    pub fn mean(&self) -> f64 {
        self.intervals.iter().sum::<u64>() as f64 / self.intervals.len() as f64
    }

    /// Shortest profiled interval.
    pub fn min_interval(&self) -> Cycle {
        *self.intervals.iter().min().expect("distribution non-empty")
    }
}

/// The Camouflage per-domain shaper.
///
/// Implements [`DomainShaper`] so it can be compared head-to-head with the
/// DAGguise shaper in the same [`dg_mem::ShapedMemory`] harness.
#[derive(Debug)]
pub struct CamouflageShaper {
    domain: DomainId,
    dist: IntervalDistribution,
    queue: VecDeque<MemRequest>,
    capacity: usize,
    mapper: AddressMapper,
    rng: DetRng,
    next_injection: Cycle,
    banks: u32,
    rows: u64,
    cols: u64,
    fake_seq: u64,
    fakes: u64,
    forwarded: u64,
}

impl CamouflageShaper {
    /// Builds a Camouflage shaper for `domain` using the profiled
    /// `dist`ribution.
    pub fn new(
        domain: DomainId,
        dist: IntervalDistribution,
        sys: &SystemConfig,
        seed: u64,
    ) -> Self {
        let mapper = AddressMapper::new(
            MapScheme::BankInterleaved,
            sys.dram_org.banks,
            sys.dram_org.row_bytes,
            sys.dram_org.line_bytes,
        );
        let rows =
            sys.dram_org.capacity_bytes / (u64::from(sys.dram_org.banks) * sys.dram_org.row_bytes);
        Self {
            domain,
            dist,
            queue: VecDeque::new(),
            capacity: sys.queues.private_queue,
            mapper,
            rng: DetRng::new(seed),
            next_injection: 0,
            banks: sys.dram_org.banks,
            rows: rows.max(1),
            cols: sys.dram_org.row_bytes / sys.dram_org.line_bytes,
            fake_seq: 0,
            fakes: 0,
            forwarded: 0,
        }
    }

    /// Fake requests fabricated so far.
    pub fn fakes(&self) -> u64 {
        self.fakes
    }

    /// Real requests forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn make_fake(&mut self, now: Cycle) -> MemRequest {
        // Camouflage does not shape banks: fakes go to uniformly random
        // banks, and real requests keep their own — both leak.
        let addr = self.mapper.encode(PhysLoc {
            bank: (self.rng.next_below(u64::from(self.banks))) as u32,
            row: self.rng.next_below(self.rows),
            col: self.rng.next_below(self.cols),
        });
        self.fake_seq += 1;
        let id = ReqId::compose(DomainId(self.domain.0 | 0x8000), self.fake_seq);
        let mut req = MemRequest::fake(self.domain, addr, ReqType::Read, now);
        req.id = id;
        req
    }

    /// The key modeled weakness: the *next* interval drawn depends on the
    /// victim's queue occupancy, so different secrets reorder the interval
    /// sequence even though its distribution is unchanged (Figure 2).
    fn draw_interval(&mut self, now: Cycle) -> Cycle {
        if !self.queue.is_empty() {
            // Eagerly pick the shortest profiled interval to drain backlog —
            // an optimization real traffic shapers make, and exactly what
            // breaks ordering independence.
            self.dist.min_interval()
        } else {
            let _ = now;
            self.dist.sample(&mut self.rng)
        }
    }
}

impl DomainShaper for CamouflageShaper {
    fn domain(&self) -> DomainId {
        self.domain
    }

    fn try_accept(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        if self.queue.len() >= self.capacity {
            return Err(req);
        }
        self.queue.push_back(req);
        Ok(())
    }

    fn tick_into(&mut self, now: Cycle, space: usize, out: &mut Vec<MemRequest>) {
        if space == 0 || now < self.next_injection {
            return;
        }
        let req = match self.queue.pop_front() {
            Some(r) => {
                self.forwarded += 1;
                r
            }
            None => {
                self.fakes += 1;
                self.make_fake(now)
            }
        };
        let interval = self.draw_interval(now);
        self.next_injection = now + interval;
        out.push(req);
    }

    fn on_response(&mut self, resp: &MemResponse, _now: Cycle) -> Option<MemResponse> {
        if resp.kind.is_fake() {
            None
        } else {
            Some(*resp)
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // Camouflage injects unconditionally on its interval clock (fakes
        // when idle), so its next emission time is always known.
        Some(self.next_injection.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    fn shaper(seed: u64) -> CamouflageShaper {
        CamouflageShaper::new(DomainId(0), IntervalDistribution::figure2(), &sys(), seed)
    }

    fn injection_times(s: &mut CamouflageShaper, cycles: Cycle) -> Vec<Cycle> {
        let mut out = Vec::new();
        for now in 0..cycles {
            if !s.tick(now, usize::MAX).is_empty() {
                out.push(now);
            }
        }
        out
    }

    #[test]
    fn intervals_come_from_distribution_when_idle() {
        let mut s = shaper(1);
        let times = injection_times(&mut s, 5000);
        let gaps: Vec<Cycle> = times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(!gaps.is_empty());
        assert!(gaps.iter().all(|g| *g == 200 || *g == 400), "gaps {gaps:?}");
        assert!(s.fakes() > 0);
    }

    #[test]
    fn ordering_depends_on_victim_traffic_the_leak() {
        // Two victims with identical request *counts* but different timing
        // produce different interval orderings — the Figure 2 leak.
        let run = |inject_at: &[Cycle]| {
            let mut s = shaper(7);
            let mut times = Vec::new();
            let mut k = 0u64;
            for now in 0..4000 {
                if inject_at.contains(&now) {
                    k += 1;
                    let req = MemRequest::read(DomainId(0), k * 64, now)
                        .with_id(ReqId::compose(DomainId(0), k));
                    let _ = s.try_accept(req, now);
                }
                if !s.tick(now, usize::MAX).is_empty() {
                    times.push(now);
                }
            }
            times
        };
        let a = run(&[100, 150]); // secret 0: early burst
        let b = run(&[2000, 2050]); // secret 1: late burst
        assert_ne!(a, b, "Camouflage output depends on the victim's timing");
    }

    #[test]
    fn forwarded_requests_keep_their_bank() {
        let mut s = shaper(3);
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        let victim_addr = mapper.encode(PhysLoc {
            bank: 5,
            row: 1,
            col: 0,
        });
        let req =
            MemRequest::read(DomainId(0), victim_addr, 0).with_id(ReqId::compose(DomainId(0), 1));
        s.try_accept(req, 0).unwrap();
        let out = s.tick(0, usize::MAX);
        assert_eq!(out.len(), 1);
        assert_eq!(
            mapper.decode(out[0].addr).bank,
            5,
            "bank info leaks through"
        );
    }

    #[test]
    fn fake_responses_consumed_real_forwarded() {
        let mut s = shaper(1);
        let out = s.tick(0, usize::MAX);
        let fake = out[0];
        let resp = MemResponse {
            id: fake.id,
            domain: fake.domain,
            addr: fake.addr,
            req_type: fake.req_type,
            kind: fake.kind,
            arrived_at: 0,
            completed_at: 9,
        };
        assert!(s.on_response(&resp, 9).is_none());
    }

    #[test]
    fn backpressure() {
        let mut s = shaper(1);
        for i in 0..s.capacity as u64 {
            let req =
                MemRequest::read(DomainId(0), i * 64, 0).with_id(ReqId::compose(DomainId(0), i));
            s.try_accept(req, 0).unwrap();
        }
        let extra =
            MemRequest::read(DomainId(0), 0x9000, 0).with_id(ReqId::compose(DomainId(0), 999));
        assert!(s.try_accept(extra, 0).is_err());
    }

    #[test]
    fn distribution_mean() {
        assert_eq!(IntervalDistribution::figure2().mean(), 300.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_distribution_panics() {
        IntervalDistribution::new(vec![]);
    }
}
