//! Spatially-partitioned Fixed Service (§8).
//!
//! Besides BTA, Fixed Service \[25\] has variants that partition memory
//! *space*: each security domain owns a disjoint set of banks, so bank
//! conflicts between domains are impossible and only the shared buses
//! need temporal scheduling. Performance improves (a domain can use its
//! banks at full tRC rate without rotating slots with others), but — as
//! §8 notes — "they severely limit the number of simultaneous programs
//! and the allowable memory usage of each": the address space available
//! to a domain shrinks to its bank partition, and bank-level parallelism
//! within a domain drops to `banks / domains`.
//!
//! The model: each domain owns `banks / domains` banks; a domain's
//! requests are remapped into its partition (address % partition) and
//! served on a private per-partition pipeline with deterministic latency;
//! the shared data bus is time-sliced at burst granularity, which costs a
//! bounded, load-independent delay folded into the service constant.

use std::collections::VecDeque;

use dg_dram::{AddressMapper, MapScheme};
use dg_sim::clock::Cycle;
use dg_sim::config::SystemConfig;
use dg_sim::types::{MemRequest, MemResponse};
use serde::{Deserialize, Serialize};

use dg_mem::{MemStats, MemorySubsystem};

/// Configuration for bank-partitioned Fixed Service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsSpatialConfig {
    /// Number of security domains (must divide the bank count).
    pub domains: usize,
    /// Per-bank issue interval in CPU cycles (tRC).
    pub bank_interval: Cycle,
    /// Deterministic service latency in CPU cycles (includes the bounded
    /// bus time-slice delay).
    pub service: Cycle,
    /// Per-domain queue capacity.
    pub queue_capacity: usize,
}

impl FsSpatialConfig {
    /// Builds the configuration from the system parameters.
    ///
    /// # Panics
    ///
    /// Panics if `domains` does not divide the bank count.
    pub fn new(sys: &SystemConfig, domains: usize) -> Self {
        assert!(domains > 0, "need at least one domain");
        assert_eq!(
            sys.dram_org.banks as usize % domains,
            0,
            "domains must divide the bank count"
        );
        let r = sys.clock_ratio;
        Self {
            domains,
            bank_interval: r.dram_to_cpu(sys.timing.tRC),
            service: r.dram_to_cpu(
                sys.timing.tRCD + sys.timing.tCAS + sys.timing.tBURST + sys.timing.tBURST,
            ),
            queue_capacity: sys.queues.transaction_queue,
        }
    }
}

/// The spatially-partitioned Fixed Service controller.
#[derive(Debug)]
pub struct FsSpatial {
    config: FsSpatialConfig,
    banks_per_domain: u32,
    mapper: AddressMapper,
    queues: Vec<VecDeque<MemRequest>>,
    /// Next legal issue cycle per (domain-local) bank.
    bank_free: Vec<Vec<Cycle>>,
    in_flight: Vec<MemResponse>,
    stats: MemStats,
}

impl FsSpatial {
    /// Builds the controller.
    pub fn new(sys: &SystemConfig, config: FsSpatialConfig) -> Self {
        let banks_per_domain = sys.dram_org.banks / config.domains as u32;
        let mapper = AddressMapper::new(
            MapScheme::BankInterleaved,
            sys.dram_org.banks,
            sys.dram_org.row_bytes,
            sys.dram_org.line_bytes,
        );
        Self {
            banks_per_domain,
            mapper,
            queues: (0..config.domains).map(|_| VecDeque::new()).collect(),
            bank_free: (0..config.domains)
                .map(|_| vec![0; banks_per_domain as usize])
                .collect(),
            in_flight: Vec::new(),
            stats: MemStats::new(config.domains + 2, sys.dram_org.line_bytes),
            config,
        }
    }

    /// Banks owned by each domain.
    pub fn banks_per_domain(&self) -> u32 {
        self.banks_per_domain
    }
}

impl MemorySubsystem for FsSpatial {
    fn try_send(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        let d = req.domain.0 as usize;
        assert!(d < self.queues.len(), "domain {} out of range", req.domain);
        if self.queues[d].len() >= self.config.queue_capacity {
            return Err(req);
        }
        self.queues[d].push_back(req);
        Ok(())
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        // Issue: each domain may start one request per free partition bank
        // per cycle — partitions are fully independent.
        for d in 0..self.config.domains {
            // Requests are remapped into the domain's partition: the bank
            // is the global bank folded into the partition.
            while let Some(req) = self.queues[d].front().copied() {
                let local_bank =
                    (self.mapper.decode(req.addr).bank % self.banks_per_domain) as usize;
                if self.bank_free[d][local_bank] > now {
                    break;
                }
                self.queues[d].pop_front();
                self.bank_free[d][local_bank] = now + self.config.bank_interval;
                self.in_flight.push(MemResponse {
                    id: req.id,
                    domain: req.domain,
                    addr: req.addr,
                    req_type: req.req_type,
                    kind: req.kind,
                    arrived_at: req.created_at,
                    completed_at: now + self.config.service,
                });
            }
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].completed_at <= now {
                let resp = self.in_flight.swap_remove(i);
                self.stats.record(&resp);
                out.push(resp);
            } else {
                i += 1;
            }
        }
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut ev = self.in_flight.iter().map(|r| r.completed_at.max(now)).min();
        // Issue is head-of-line per domain: the next event for a non-empty
        // queue is when the head request's partition bank frees up.
        for d in 0..self.config.domains {
            if let Some(req) = self.queues[d].front() {
                let local_bank =
                    (self.mapper.decode(req.addr).bank % self.banks_per_domain) as usize;
                let at = self.bank_free[d][local_bank].max(now);
                ev = dg_sim::clock::earliest_event(ev, Some(at));
            }
        }
        ev
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn free_slots(&self) -> usize {
        self.queues
            .iter()
            .map(|q| self.config.queue_capacity - q.len())
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn sys() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    fn req(domain: u16, addr: u64, id: u64) -> MemRequest {
        MemRequest::read(DomainId(domain), addr, 0).with_id(ReqId::compose(DomainId(domain), id))
    }

    fn drive(fs: &mut FsSpatial, until: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for now in 0..until {
            out.extend(fs.tick(now));
        }
        out
    }

    #[test]
    fn partitions_divide_banks() {
        let s = sys();
        let fs = FsSpatial::new(&s, FsSpatialConfig::new(&s, 2));
        assert_eq!(fs.banks_per_domain(), 4);
        let fs8 = FsSpatial::new(&s, FsSpatialConfig::new(&s, 8));
        assert_eq!(fs8.banks_per_domain(), 1);
    }

    #[test]
    #[should_panic(expected = "divide the bank count")]
    fn non_dividing_domains_rejected() {
        let s = sys();
        FsSpatialConfig::new(&s, 3);
    }

    #[test]
    fn domain_uses_its_partition_at_full_rate() {
        let s = sys();
        let cfg = FsSpatialConfig::new(&s, 2);
        let mut fs = FsSpatial::new(&s, cfg);
        // Four requests to distinct banks issue immediately in parallel —
        // no slot rotation with the other (idle) domain.
        for i in 0..4u64 {
            fs.try_send(req(0, i * 64, i), 0).unwrap();
        }
        let done = drive(&mut fs, cfg.service + 2);
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|r| r.completed_at == cfg.service));
    }

    #[test]
    fn non_interference_across_partitions() {
        let s = sys();
        let cfg = FsSpatialConfig::new(&s, 2);

        let mut quiet = FsSpatial::new(&s, cfg);
        quiet.try_send(req(0, 0x40, 1), 0).unwrap();
        let a = drive(&mut quiet, cfg.service * 4);

        let mut noisy = FsSpatial::new(&s, cfg);
        noisy.try_send(req(0, 0x40, 1), 0).unwrap();
        for i in 0..16 {
            noisy.try_send(req(1, 0x10000 + i * 64, i), 0).unwrap();
        }
        let b = drive(&mut noisy, cfg.service * 4);

        let a0: Vec<_> = a.iter().filter(|r| r.domain == DomainId(0)).collect();
        let b0: Vec<_> = b.iter().filter(|r| r.domain == DomainId(0)).collect();
        assert_eq!(a0[0].completed_at, b0[0].completed_at);
    }

    #[test]
    fn reduced_parallelism_within_domain() {
        let s = sys();
        let cfg8 = FsSpatialConfig::new(&s, 8); // one bank per domain
        let mut fs = FsSpatial::new(&s, cfg8);
        // Two requests from one domain serialize on its single bank.
        fs.try_send(req(0, 0x0, 1), 0).unwrap();
        fs.try_send(req(0, 0x40, 2), 0).unwrap();
        let done = drive(&mut fs, cfg8.bank_interval * 3);
        assert_eq!(done.len(), 2);
        assert_eq!(
            done[1].completed_at - done[0].completed_at,
            cfg8.bank_interval
        );
    }
}
