//! The request-lifecycle event taxonomy.
//!
//! One [`Event`] is recorded at each observable step of a memory request's
//! life: issue at the core, LLC miss, shaper decisions, transaction-queue
//! entry, DRAM bank commands, and completion. Events carry the
//! [`ReqId`]/[`DomainId`] tags needed to reconstruct a single request's
//! timeline across components.

use dg_sim::clock::Cycle;
use dg_sim::types::{Addr, DomainId, ReqId};
use serde::{Deserialize, Serialize};

/// A DRAM bank-level command, as scheduled on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankCmd {
    /// Row activate.
    Act,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Precharge.
    Pre,
    /// Rank-wide refresh.
    Ref,
}

impl BankCmd {
    /// Short display name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            BankCmd::Act => "ACT",
            BankCmd::Rd => "RD",
            BankCmd::Wr => "WR",
            BankCmd::Pre => "PRE",
            BankCmd::Ref => "REF",
        }
    }
}

/// What happened (the cycle stamp lives in [`Event`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A core created a memory request (demand miss or write-back).
    Issue {
        /// Request id.
        id: ReqId,
        /// Issuing domain.
        domain: DomainId,
        /// Line address.
        addr: Addr,
        /// True for write-back traffic.
        is_write: bool,
    },
    /// A demand access missed every cache level.
    LlcMiss {
        /// Missing domain.
        domain: DomainId,
        /// Line address.
        addr: Addr,
    },
    /// A shaper admitted a core request into its private queue.
    ShaperAccept {
        /// Request id.
        id: ReqId,
        /// Owning domain.
        domain: DomainId,
    },
    /// A shaper refused a core request (private queue full).
    ShaperReject {
        /// Request id.
        id: ReqId,
        /// Owning domain.
        domain: DomainId,
    },
    /// A shaper filled a prescribed slot with a buffered real request.
    ShaperEmitReal {
        /// Request id.
        id: ReqId,
        /// Owning domain.
        domain: DomainId,
        /// Bank the slot prescribed.
        bank: u32,
    },
    /// A shaper fabricated a fake request for an unmatched slot.
    ShaperEmitFake {
        /// Fabricated request id.
        id: ReqId,
        /// Owning domain.
        domain: DomainId,
        /// Bank the slot prescribed.
        bank: u32,
    },
    /// A request entered the memory controller's transaction queue.
    TxqEnqueue {
        /// Request id.
        id: ReqId,
        /// Owning domain.
        domain: DomainId,
        /// Target bank.
        bank: u32,
    },
    /// A DRAM command issued on the command bus.
    BankCommand {
        /// The command.
        cmd: BankCmd,
        /// Target bank (0 for rank-wide REF).
        bank: u32,
    },
    /// A transaction completed and its response left the controller.
    Response {
        /// Request id.
        id: ReqId,
        /// Owning domain.
        domain: DomainId,
        /// Arrival-to-completion latency in CPU cycles.
        latency: Cycle,
        /// True for shaper-fabricated traffic.
        fake: bool,
    },
    /// Counter sample: a shaper's private queue depth after it changed
    /// (accept or real emission). Exported as a Chrome "C" counter track.
    ShaperQueueDepth {
        /// Owning domain.
        domain: DomainId,
        /// Queue depth after the change.
        depth: u32,
    },
    /// Counter sample: the memory controller's transaction-queue occupancy
    /// after it changed (enqueue or completion). Exported as a Chrome "C"
    /// counter track.
    TxqOccupancy {
        /// In-flight transactions after the change.
        count: u32,
    },
}

impl EventKind {
    /// Short display name used in trace exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Issue { .. } => "issue",
            EventKind::LlcMiss { .. } => "llc_miss",
            EventKind::ShaperAccept { .. } => "shaper_accept",
            EventKind::ShaperReject { .. } => "shaper_reject",
            EventKind::ShaperEmitReal { .. } => "emit_real",
            EventKind::ShaperEmitFake { .. } => "emit_fake",
            EventKind::TxqEnqueue { .. } => "txq_enqueue",
            EventKind::BankCommand { cmd, .. } => cmd.name(),
            EventKind::Response { .. } => "response",
            EventKind::ShaperQueueDepth { .. } => "shaper_queue_depth",
            EventKind::TxqOccupancy { .. } => "txq_occupancy",
        }
    }

    /// The domain tag, when the event belongs to one.
    pub fn domain(&self) -> Option<DomainId> {
        match *self {
            EventKind::Issue { domain, .. }
            | EventKind::LlcMiss { domain, .. }
            | EventKind::ShaperAccept { domain, .. }
            | EventKind::ShaperReject { domain, .. }
            | EventKind::ShaperEmitReal { domain, .. }
            | EventKind::ShaperEmitFake { domain, .. }
            | EventKind::TxqEnqueue { domain, .. }
            | EventKind::Response { domain, .. }
            | EventKind::ShaperQueueDepth { domain, .. } => Some(domain),
            EventKind::BankCommand { .. } | EventKind::TxqOccupancy { .. } => None,
        }
    }

    /// The request id, when the event belongs to one request.
    pub fn req_id(&self) -> Option<ReqId> {
        match *self {
            EventKind::Issue { id, .. }
            | EventKind::ShaperAccept { id, .. }
            | EventKind::ShaperReject { id, .. }
            | EventKind::ShaperEmitReal { id, .. }
            | EventKind::ShaperEmitFake { id, .. }
            | EventKind::TxqEnqueue { id, .. }
            | EventKind::Response { id, .. } => Some(id),
            EventKind::LlcMiss { .. }
            | EventKind::BankCommand { .. }
            | EventKind::ShaperQueueDepth { .. }
            | EventKind::TxqOccupancy { .. } => None,
        }
    }
}

/// One cycle-stamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// CPU cycle at which the event occurred.
    pub cycle: Cycle,
    /// What happened.
    pub kind: EventKind,
}
