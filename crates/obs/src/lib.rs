//! `dg-obs`: the observability layer of the DAGguise reproduction.
//!
//! Three pieces, designed to be wired through every simulation component
//! without perturbing it:
//!
//! * **Event tracing** — a cloneable [`Tracer`] handle records
//!   cycle-stamped [`Event`]s (request issue, LLC miss, shaper decisions,
//!   transaction-queue entry, DRAM bank commands, responses) into a bounded
//!   ring buffer. The default handle is a no-op whose `record` call is a
//!   single branch, and the whole mechanism compiles out when the `trace`
//!   feature is disabled.
//! * **Chrome trace export** — [`chrome_trace_json`] converts a recorded
//!   event stream into Chrome `trace_event` JSON that opens directly in
//!   Perfetto, with request lifecycles drawn as async spans per domain and
//!   DRAM commands as instants per bank.
//! * **Run reports** — [`RunReport`] snapshots every stats structure of a
//!   run (per-core IPC, per-domain traffic and latency histograms, shaper
//!   conformance, DRAM energy) plus the [`IntervalSampler`] time series
//!   into one serializable artifact.
//! * **Security observability (`dg-leak`)** — the [`leak`] module's
//!   [`InterferenceMatrix`] attributes every stalled cycle to the domain
//!   that caused it, [`ShaperTimeline`] records windowed shaper behaviour,
//!   and [`LeakEstimator`] turns attacker-observable latencies into a
//!   channel-capacity-over-time estimate.
//! * **Sweep progress** — a [`ProgressMeter`] shared by the workers of an
//!   experiment sweep (`dg-runner`) counts completions, retries and
//!   failures, reports live throughput, and snapshots into a
//!   [`SweepProgress`].
//!
//! Determinism is part of the contract: with a fixed seed, both the event
//! stream and its JSON encodings are byte-identical across runs.

pub mod chrome;
pub mod event;
pub mod interval;
pub mod leak;
pub mod progress;
pub mod report;
pub mod tracer;

pub use chrome::{
    chrome_trace, chrome_trace_json, chrome_trace_sharded, chrome_trace_sharded_json,
};
pub use event::{BankCmd, Event, EventKind};
pub use interval::{IntervalSample, IntervalSampler};
pub use leak::{
    InterferenceMatrix, InterferenceReport, LeakEstimator, LeakReport, LeakSample, LeakSummary,
    ShaperTimeline, ShaperTimelineReport, ShaperWindow, StallCause, StallCauseCycles,
};
pub use progress::{ProgressMeter, SweepProgress};
pub use report::{
    BankReport, CoreReport, DomainReport, DramReport, EnergyReport, HistogramSnapshot, RunMeta,
    RunReport, ShaperReport, TraceSummary,
};
pub use tracer::{RingBuffer, Tracer};
