//! Interval time-series sampling.
//!
//! Figure 7(b) of the paper plots allocated bandwidth over *time*, not just
//! end-of-run totals. The [`IntervalSampler`] closes that gap: the system
//! feeds it cumulative per-core instruction counts and per-domain byte
//! counts at every window boundary, and it stores the per-window deltas as
//! IPC / GB/s samples.

use dg_sim::clock::{bytes_per_cycle_to_gbps, Cycle};
use serde::{Deserialize, Serialize};

/// One sampling window's worth of rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// First cycle of the window.
    pub start_cycle: Cycle,
    /// Per-core IPC over the window.
    pub ipc: Vec<f64>,
    /// Per-domain bandwidth over the window, in GB/s.
    pub bandwidth_gbps: Vec<f64>,
}

/// Accumulates per-window IPC and bandwidth samples from cumulative
/// counters.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    window: Cycle,
    clock_hz: f64,
    /// Cycle at which the current window started.
    window_start: Cycle,
    last_instructions: Vec<u64>,
    last_bytes: Vec<u64>,
    samples: Vec<IntervalSample>,
}

impl IntervalSampler {
    /// Creates a sampler with the given window length (in CPU cycles) for
    /// `cores` cores and `domains` traffic domains.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Cycle, clock_hz: f64, cores: usize, domains: usize) -> Self {
        assert!(window > 0, "interval window must be positive");
        IntervalSampler {
            window,
            clock_hz,
            window_start: 0,
            last_instructions: vec![0; cores],
            last_bytes: vec![0; domains],
            samples: Vec::new(),
        }
    }

    /// Window length in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// True when `now` closes the current window (the caller should then
    /// invoke [`IntervalSampler::sample`]).
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.window_start + self.window
    }

    /// Closes the current window at `now` given the *cumulative*
    /// instruction count per core and byte count per domain, recording the
    /// deltas as one [`IntervalSample`].
    pub fn sample(&mut self, now: Cycle, instructions: &[u64], bytes: &[u64]) {
        let elapsed = (now - self.window_start).max(1) as f64;
        let ipc = instructions
            .iter()
            .zip(self.last_instructions.iter())
            .map(|(cur, last)| cur.saturating_sub(*last) as f64 / elapsed)
            .collect();
        let bandwidth_gbps = bytes
            .iter()
            .zip(self.last_bytes.iter())
            .map(|(cur, last)| {
                bytes_per_cycle_to_gbps(cur.saturating_sub(*last) as f64 / elapsed, self.clock_hz)
            })
            .collect();
        self.samples.push(IntervalSample {
            start_cycle: self.window_start,
            ipc,
            bandwidth_gbps,
        });
        self.last_instructions.copy_from_slice(instructions);
        self.last_bytes.copy_from_slice(bytes);
        self.window_start = now;
    }

    /// Replays every window boundary in `(window_start, target]` with the
    /// given (unchanged) cumulative counters, recording the same zero-delta
    /// samples the naive cycle loop would have produced while the system was
    /// quiescent. The event-driven engine calls this when warping time
    /// forward: counters cannot change during a warp, so each skipped
    /// boundary closes with exactly the inputs the per-cycle loop would have
    /// observed.
    pub fn advance_to(&mut self, target: Cycle, instructions: &[u64], bytes: &[u64]) {
        while self.window_start + self.window <= target {
            let boundary = self.window_start + self.window;
            self.sample(boundary, instructions, bytes);
        }
    }

    /// Flushes the trailing partial window at end-of-run: records a final
    /// sample covering `window_start..now` when the run ends mid-window.
    /// A no-op when `now` sits exactly on a window boundary (that window
    /// was already sampled) so flushing is idempotent.
    pub fn flush(&mut self, now: Cycle, instructions: &[u64], bytes: &[u64]) {
        if now > self.window_start {
            self.sample(now, instructions, bytes);
        }
    }

    /// The samples recorded so far.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Consumes the sampler, returning its samples.
    pub fn into_samples(self) -> Vec<IntervalSample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_become_rates() {
        let mut s = IntervalSampler::new(100, 1e9, 1, 1);
        assert!(!s.due(99));
        assert!(s.due(100));
        // 50 instructions and 6400 bytes in the first 100 cycles.
        s.sample(100, &[50], &[6400]);
        // Nothing in the second window.
        s.sample(200, &[50], &[6400]);
        let samples = s.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].start_cycle, 0);
        assert!((samples[0].ipc[0] - 0.5).abs() < 1e-12);
        // 64 bytes/cycle at 1 GHz = 64 GB/s.
        assert!((samples[0].bandwidth_gbps[0] - 64.0).abs() < 1e-9);
        assert_eq!(samples[1].start_cycle, 100);
        assert_eq!(samples[1].ipc[0], 0.0);
        assert_eq!(samples[1].bandwidth_gbps[0], 0.0);
    }

    #[test]
    fn flush_reports_trailing_partial_window() {
        let mut s = IntervalSampler::new(100, 1e9, 1, 1);
        s.sample(100, &[50], &[0]);
        // The run ends at cycle 140, mid-window: 30 instructions in the
        // trailing 40 cycles.
        s.flush(140, &[80], &[0]);
        let samples = s.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].start_cycle, 100);
        assert!((samples[1].ipc[0] - 30.0 / 40.0).abs() < 1e-12);
        // Idempotent: a second flush at the same cycle adds nothing.
        s.flush(140, &[80], &[0]);
        assert_eq!(s.samples().len(), 2);
    }

    #[test]
    fn flush_on_boundary_is_a_no_op() {
        let mut s = IntervalSampler::new(100, 1e9, 1, 1);
        s.sample(100, &[50], &[0]);
        s.flush(100, &[50], &[0]);
        assert_eq!(s.samples().len(), 1);
    }

    #[test]
    fn advance_to_replays_skipped_boundaries() {
        // Naive reference: per-cycle due() checks over a quiescent stretch.
        let mut naive = IntervalSampler::new(100, 1e9, 1, 1);
        naive.sample(100, &[50], &[6400]);
        for now in 101..=350 {
            if naive.due(now) {
                naive.sample(now, &[50], &[6400]);
            }
        }
        // Warped: one advance_to call covering the same stretch.
        let mut warped = IntervalSampler::new(100, 1e9, 1, 1);
        warped.sample(100, &[50], &[6400]);
        warped.advance_to(350, &[50], &[6400]);
        assert_eq!(naive.samples(), warped.samples());
        // Boundaries at 200 and 300 were replayed as zero-delta windows.
        assert_eq!(warped.samples().len(), 3);
        assert_eq!(warped.samples()[2].start_cycle, 200);
        assert_eq!(warped.samples()[2].ipc[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = IntervalSampler::new(0, 1e9, 1, 1);
    }
}
