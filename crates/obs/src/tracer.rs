//! The [`Tracer`]: a cloneable handle to a bounded event ring buffer.
//!
//! Every instrumented component holds a `Tracer` (cheaply cloned; all clones
//! share one buffer). The default handle is a no-op whose [`Tracer::record`]
//! is a single branch on a `None` — the event payload is built inside a
//! closure that is never invoked, so disabled tracing costs nothing
//! measurable on the simulation hot path. Compiling the crate without the
//! `trace` feature removes even that branch.

use crate::event::{Event, EventKind};
use dg_sim::clock::Cycle;
#[cfg(feature = "trace")]
use std::sync::{Arc, Mutex};

/// Fixed-capacity circular event store. Once full, the oldest events are
/// overwritten and counted in [`RingBuffer::dropped`].
#[derive(Debug)]
pub struct RingBuffer {
    buf: Vec<Event>,
    capacity: usize,
    /// Next write position once the buffer has wrapped.
    next: usize,
    dropped: u64,
}

impl RingBuffer {
    /// Creates an empty ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest one when full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The stored events in recording order (oldest first).
    pub fn snapshot(&self) -> Vec<Event> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// Cloneable recording handle shared by every instrumented component.
///
/// [`Tracer::noop`] (also `Default`) records nothing; [`Tracer::ring`]
/// records into a shared bounded ring buffer. Components call
/// [`Tracer::record`] with a closure so that event construction is skipped
/// entirely when tracing is off.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    #[cfg(feature = "trace")]
    inner: Option<Arc<Mutex<RingBuffer>>>,
}

impl Tracer {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Tracer::default()
    }

    /// A handle recording into a fresh ring buffer of `capacity` events.
    /// Without the `trace` feature this is equivalent to [`Tracer::noop`].
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    pub fn ring(capacity: usize) -> Self {
        #[cfg(feature = "trace")]
        {
            Tracer {
                inner: Some(Arc::new(Mutex::new(RingBuffer::new(capacity)))),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            Tracer {}
        }
    }

    /// True when this handle actually stores events.
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Records one event at `cycle`. The closure building the payload runs
    /// only when tracing is enabled.
    #[inline]
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    pub fn record(&self, cycle: Cycle, kind: impl FnOnce() -> EventKind) {
        #[cfg(feature = "trace")]
        if let Some(ring) = &self.inner {
            let event = Event {
                cycle,
                kind: kind(),
            };
            ring.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(event);
        }
    }

    /// The recorded events in order (oldest first). Empty for a no-op handle.
    pub fn snapshot(&self) -> Vec<Event> {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(ring) => ring
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .snapshot(),
                None => Vec::new(),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }

    /// Number of events lost to ring-buffer wraparound.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(ring) => ring
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .dropped(),
                None => 0,
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn ev(cycle: Cycle) -> Event {
        Event {
            cycle,
            kind: EventKind::ShaperAccept {
                id: ReqId(cycle),
                domain: DomainId(0),
            },
        }
    }

    #[test]
    fn ring_stores_in_order_before_wrap() {
        let mut r = RingBuffer::new(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<Cycle> = r.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let mut r = RingBuffer::new(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<Cycle> = r.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_exactly_full_no_drop() {
        let mut r = RingBuffer::new(3);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<Cycle> = r.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    fn noop_tracer_records_nothing_and_skips_closure() {
        let t = Tracer::noop();
        assert!(!t.enabled());
        t.record(5, || panic!("payload closure must not run when disabled"));
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn clones_share_one_ring() {
        let t = Tracer::ring(8);
        let u = t.clone();
        t.record(1, || EventKind::LlcMiss {
            domain: DomainId(0),
            addr: 0x40,
        });
        u.record(2, || EventKind::LlcMiss {
            domain: DomainId(1),
            addr: 0x80,
        });
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 1);
        assert_eq!(events[1].cycle, 2);
    }
}
