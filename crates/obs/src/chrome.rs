//! Chrome `trace_event` export.
//!
//! Converts a recorded event stream into the JSON object format consumed by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Request
//! lifecycles become async spans (`ph: "b"` at issue, `ph: "e"` at response,
//! keyed by request id) so one request draws as one bar; everything else is
//! an instant event. Cores/domains map to threads of a "requests" process
//! and DRAM banks to threads of a "dram" process.
//!
//! Timestamps are in microseconds by the spec; we write one CPU cycle as one
//! microsecond, so "1 µs" in the viewer reads as "1 cycle".
//!
//! Request causality across layers is drawn with flow events: a flow starts
//! (`ph: "s"`) at core-side issue, steps (`ph: "t"`) through the
//! transaction-queue entry on the DRAM process, and finishes (`ph: "f"`) at
//! the response — all keyed by the request id, so the viewer draws arrows
//! from issue to completion.

use crate::event::{Event, EventKind};
use serde::Value;

/// Process id used for per-domain request timelines.
const PID_REQUESTS: u64 = 1;
/// Process id used for per-bank DRAM command timelines.
const PID_DRAM: u64 = 2;

/// The pid pair one event stream's entries land on. Sharded exports give
/// each shard its own pair so the viewer draws per-shard lanes; shard 0's
/// pair coincides with the classic single-system layout.
#[derive(Debug, Clone, Copy)]
struct PidLanes {
    requests: u64,
    dram: u64,
}

impl PidLanes {
    const SINGLE: PidLanes = PidLanes {
        requests: PID_REQUESTS,
        dram: PID_DRAM,
    };

    /// The lanes of shard `s`: pids `2s+1` (requests) and `2s+2` (dram).
    fn shard(s: usize) -> PidLanes {
        PidLanes {
            requests: 2 * s as u64 + 1,
            dram: 2 * s as u64 + 2,
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn event_entry(e: &Event, lanes: PidLanes) -> Value {
    let (ph, pid, tid): (&str, u64, u64) = match e.kind {
        EventKind::Issue { domain, .. } => ("b", lanes.requests, u64::from(domain.0)),
        EventKind::Response { domain, .. } => ("e", lanes.requests, u64::from(domain.0)),
        EventKind::BankCommand { bank, .. } => ("i", lanes.dram, u64::from(bank)),
        // Counter tracks: one per shaper queue (on the owning domain's
        // thread) and one for controller in-flight occupancy.
        EventKind::ShaperQueueDepth { domain, .. } => ("C", lanes.requests, u64::from(domain.0)),
        EventKind::TxqOccupancy { .. } => ("C", lanes.dram, 0),
        kind => (
            "i",
            lanes.requests,
            u64::from(kind.domain().map(|d| d.0).unwrap_or(0)),
        ),
    };
    let mut fields = vec![
        ("name", Value::Str(e.kind.name().to_string())),
        ("cat", Value::Str("mem".to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::UInt(e.cycle)),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(tid)),
    ];
    if let Some(id) = e.kind.req_id() {
        fields.push(("id", Value::Str(format!("{:#x}", id.0))));
    }
    if ph == "i" {
        // Instant scope: thread-local.
        fields.push(("s", Value::Str("t".to_string())));
    }
    fields.push(("args", args_for(&e.kind)));
    obj(fields)
}

/// Flow event (`s`/`t`/`f`) tying a request's entries together across the
/// requests and dram processes.
fn flow_entry(ph: &str, cycle: u64, id: u64, pid: u64, tid: u64) -> Value {
    let mut fields = vec![
        ("name", Value::Str("req_flow".to_string())),
        ("cat", Value::Str("flow".to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::UInt(cycle)),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(tid)),
        ("id", Value::Str(format!("{id:#x}"))),
    ];
    if ph == "f" {
        // Bind the finish to the enclosing slice's end.
        fields.push(("bp", Value::Str("e".to_string())));
    }
    obj(fields)
}

/// Emits the entry for `e` plus any flow event linking it into its
/// request's issue → DRAM → completion chain.
fn event_entries(e: &Event, lanes: PidLanes, entries: &mut Vec<Value>) {
    entries.push(event_entry(e, lanes));
    match e.kind {
        EventKind::Issue { id, domain, .. } => {
            entries.push(flow_entry(
                "s",
                e.cycle,
                id.0,
                lanes.requests,
                u64::from(domain.0),
            ));
        }
        EventKind::TxqEnqueue { id, bank, .. } => {
            entries.push(flow_entry("t", e.cycle, id.0, lanes.dram, u64::from(bank)));
        }
        EventKind::Response { id, domain, .. } => {
            entries.push(flow_entry(
                "f",
                e.cycle,
                id.0,
                lanes.requests,
                u64::from(domain.0),
            ));
        }
        _ => {}
    }
}

fn args_for(kind: &EventKind) -> Value {
    match *kind {
        EventKind::Issue { addr, is_write, .. } => obj(vec![
            ("addr", Value::Str(format!("{addr:#x}"))),
            ("is_write", Value::Bool(is_write)),
        ]),
        EventKind::LlcMiss { addr, .. } => obj(vec![("addr", Value::Str(format!("{addr:#x}")))]),
        EventKind::ShaperEmitReal { bank, .. } | EventKind::ShaperEmitFake { bank, .. } => {
            obj(vec![("bank", Value::UInt(u64::from(bank)))])
        }
        EventKind::TxqEnqueue { bank, .. } => obj(vec![("bank", Value::UInt(u64::from(bank)))]),
        EventKind::BankCommand { bank, .. } => obj(vec![("bank", Value::UInt(u64::from(bank)))]),
        EventKind::Response { latency, fake, .. } => obj(vec![
            ("latency", Value::UInt(latency)),
            ("fake", Value::Bool(fake)),
        ]),
        EventKind::ShaperQueueDepth { depth, .. } => {
            obj(vec![("depth", Value::UInt(u64::from(depth)))])
        }
        EventKind::TxqOccupancy { count } => obj(vec![("count", Value::UInt(u64::from(count)))]),
        EventKind::ShaperAccept { .. } | EventKind::ShaperReject { .. } => obj(vec![]),
    }
}

/// Metadata entry naming a process in the trace viewer.
fn process_name(pid: u64, name: &str) -> Value {
    obj(vec![
        ("name", Value::Str("process_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::UInt(pid)),
        ("args", obj(vec![("name", Value::Str(name.to_string()))])),
    ])
}

/// Builds the full Chrome trace object (`{"traceEvents": [...]}`).
///
/// The output is deterministic: entries appear in recording order, and the
/// vendored JSON writer preserves key insertion order.
pub fn chrome_trace(events: &[Event]) -> Value {
    let mut entries = vec![
        process_name(PID_REQUESTS, "requests"),
        process_name(PID_DRAM, "dram"),
    ];
    for e in events {
        event_entries(e, PidLanes::SINGLE, &mut entries);
    }
    obj(vec![
        ("traceEvents", Value::Seq(entries)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

/// Serializes the Chrome trace object to a JSON string.
pub fn chrome_trace_json(events: &[Event]) -> String {
    serde_json::to_string(&chrome_trace(events)).expect("value serialization is infallible")
}

/// Merges per-shard event streams into one trace, each shard on its own
/// pair of pid lanes ("shardN requests" / "shardN dram"). Thread ids keep
/// their global meaning (domain / bank index), so the same request drawn at
/// a different shard count lands on a lane whose *name* differs but whose
/// thread row matches — convenient when eyeballing S=1 vs S=N runs.
///
/// A one-element slice produces the same lane layout as [`chrome_trace`]
/// except for the process names.
pub fn chrome_trace_sharded(shard_events: &[Vec<Event>]) -> Value {
    let mut entries = Vec::new();
    for (s, _) in shard_events.iter().enumerate() {
        let lanes = PidLanes::shard(s);
        entries.push(process_name(lanes.requests, &format!("shard{s} requests")));
        entries.push(process_name(lanes.dram, &format!("shard{s} dram")));
    }
    for (s, events) in shard_events.iter().enumerate() {
        let lanes = PidLanes::shard(s);
        for e in events {
            event_entries(e, lanes, &mut entries);
        }
    }
    obj(vec![
        ("traceEvents", Value::Seq(entries)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

/// Serializes the sharded Chrome trace object to a JSON string.
pub fn chrome_trace_sharded_json(shard_events: &[Vec<Event>]) -> String {
    serde_json::to_string(&chrome_trace_sharded(shard_events))
        .expect("value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 10,
                kind: EventKind::Issue {
                    id: ReqId::compose(DomainId(1), 7),
                    domain: DomainId(1),
                    addr: 0x1000,
                    is_write: false,
                },
            },
            Event {
                cycle: 12,
                kind: EventKind::BankCommand {
                    cmd: crate::event::BankCmd::Act,
                    bank: 3,
                },
            },
            Event {
                cycle: 40,
                kind: EventKind::Response {
                    id: ReqId::compose(DomainId(1), 7),
                    domain: DomainId(1),
                    latency: 30,
                    fake: false,
                },
            },
        ]
    }

    #[test]
    fn trace_shape_has_trace_events_array() {
        let v = chrome_trace(&sample_events());
        let map = v.as_map().expect("top level is an object");
        let (_, tev) = map
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents key present");
        // 2 metadata entries + 3 events + flow start/finish for the
        // issue/response pair.
        assert_eq!(tev.as_seq().expect("array").len(), 7);
    }

    #[test]
    fn issue_response_form_async_pair() {
        let v = chrome_trace(&sample_events());
        let tev = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        let phases: Vec<&str> = tev
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, vec!["M", "M", "b", "s", "i", "e", "f"]);
        // The async begin/end and both flow endpoints share an id.
        let ids: Vec<&str> = tev
            .iter()
            .filter_map(|e| e.get("id").and_then(Value::as_str))
            .collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&i| i == ids[0]));
    }

    #[test]
    fn flow_links_issue_through_dram_to_response() {
        let mut events = sample_events();
        events.insert(
            1,
            Event {
                cycle: 11,
                kind: EventKind::TxqEnqueue {
                    id: ReqId::compose(DomainId(1), 7),
                    domain: DomainId(1),
                    bank: 3,
                },
            },
        );
        let v = chrome_trace(&events);
        let tev = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        let flows: Vec<&Value> = tev
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("flow"))
            .collect();
        let phases: Vec<&str> = flows
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, vec!["s", "t", "f"]);
        // The step rides on the DRAM process (bank thread), drawing the
        // cross-process arrow; the finish binds to the enclosing slice.
        assert_eq!(flows[1].get("pid").and_then(Value::as_u64), Some(PID_DRAM));
        assert_eq!(flows[1].get("tid").and_then(Value::as_u64), Some(3));
        assert_eq!(flows[2].get("bp").and_then(Value::as_str), Some("e"));
        // All flow entries share the request id.
        let ids: Vec<&str> = flows
            .iter()
            .filter_map(|e| e.get("id").and_then(Value::as_str))
            .collect();
        assert!(ids.iter().all(|&i| i == ids[0]));
    }

    #[test]
    fn bank_command_goes_to_dram_process() {
        let v = chrome_trace(&sample_events());
        let tev = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        let act = tev
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("ACT"))
            .expect("ACT entry");
        assert_eq!(act.get("pid").and_then(Value::as_u64), Some(PID_DRAM));
        assert_eq!(act.get("tid").and_then(Value::as_u64), Some(3));
        assert_eq!(act.get("ts").and_then(Value::as_u64), Some(12));
    }

    #[test]
    fn counter_events_export_as_counter_phase() {
        let events = vec![
            Event {
                cycle: 5,
                kind: EventKind::ShaperQueueDepth {
                    domain: DomainId(2),
                    depth: 4,
                },
            },
            Event {
                cycle: 6,
                kind: EventKind::TxqOccupancy { count: 9 },
            },
        ];
        let v = chrome_trace(&events);
        let tev = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        // 2 metadata entries + 2 counters, no flow events.
        assert_eq!(tev.len(), 4);
        let depth = tev
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("shaper_queue_depth"))
            .expect("shaper_queue_depth entry");
        assert_eq!(depth.get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(depth.get("pid").and_then(Value::as_u64), Some(PID_REQUESTS));
        assert_eq!(depth.get("tid").and_then(Value::as_u64), Some(2));
        // Counters carry their value in args and are not instants, so no
        // scope field and no request id.
        assert!(depth.get("s").is_none());
        assert!(depth.get("id").is_none());
        let args = depth.get("args").expect("args");
        assert_eq!(args.get("depth").and_then(Value::as_u64), Some(4));
        let occ = tev
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("txq_occupancy"))
            .expect("txq_occupancy entry");
        assert_eq!(occ.get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(occ.get("pid").and_then(Value::as_u64), Some(PID_DRAM));
        let args = occ.get("args").expect("args");
        assert_eq!(args.get("count").and_then(Value::as_u64), Some(9));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let s = chrome_trace_json(&sample_events());
        let parsed: Value = serde_json::from_str(&s).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&sample_events());
        let b = chrome_trace_json(&sample_events());
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_trace_puts_each_shard_on_its_own_pid_lanes() {
        let shard0 = sample_events();
        let shard1 = vec![Event {
            cycle: 20,
            kind: EventKind::BankCommand {
                cmd: crate::event::BankCmd::Rd,
                bank: 5,
            },
        }];
        let v = chrome_trace_sharded(&[shard0, shard1]);
        let tev = v.get("traceEvents").and_then(Value::as_seq).unwrap();
        // 4 process-name metadata entries lead, one pid pair per shard.
        let names: Vec<(u64, &str)> = tev
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").and_then(Value::as_u64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                (1, "shard0 requests"),
                (2, "shard0 dram"),
                (3, "shard1 requests"),
                (4, "shard1 dram"),
            ]
        );
        // Shard 0's entries keep the classic pids; shard 1's bank command
        // rides its own dram lane with the global bank index as tid.
        let issue = tev
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("b"))
            .expect("issue entry");
        assert_eq!(issue.get("pid").and_then(Value::as_u64), Some(1));
        let rd = tev
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("RD"))
            .expect("shard1 RD entry");
        assert_eq!(rd.get("pid").and_then(Value::as_u64), Some(4));
        assert_eq!(rd.get("tid").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn one_shard_trace_matches_single_layout_up_to_lane_names() {
        let single = chrome_trace_json(&sample_events());
        let sharded = chrome_trace_sharded_json(&[sample_events()]);
        assert_eq!(
            sharded
                .replace("shard0 requests", "requests")
                .replace("shard0 dram", "dram"),
            single,
        );
    }

    #[test]
    fn sharded_export_round_trips_through_parser() {
        let s = chrome_trace_sharded_json(&[sample_events(), sample_events()]);
        let parsed: Value = serde_json::from_str(&s).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }
}
