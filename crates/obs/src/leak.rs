//! `dg-leak`: security observability — contention attribution, shaper
//! telemetry, and online leakage estimation.
//!
//! Three instruments, all strictly read-only with respect to simulation
//! state (the observer-effect contract: enabling any of them must never
//! perturb timing or RNG streams):
//!
//! * [`InterferenceMatrix`] — every command-bus edge a request spends
//!   stalled is attributed to the security domain whose earlier command
//!   holds the binding resource (bank, activation window, data bus, …),
//!   yielding a per-domain-pair "who delayed whom" matrix.
//! * [`ShaperTimeline`] — windowed time series of a shaper's private-queue
//!   depth, rDAG slot slack, and real-vs-fake slot fills: the visual proof
//!   that emissions are secret-independent.
//! * [`LeakEstimator`] — windowed joint histograms of attacker-observable
//!   latencies keyed by victim secret class, reduced to a bias-corrected
//!   mutual-information estimate and a channel-capacity-over-time series
//!   (the same bits/s units as `attacks::covert::capacity_bits_per_sec`).

use dg_sim::clock::Cycle;
use serde::{Deserialize, Serialize};

/// Number of stall-cause categories tracked by the interference matrix.
pub const STALL_CAUSES: usize = 5;

/// Why a request could not make progress on a given command-bus edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallCause {
    /// An older same-bank transaction is ahead in the queue.
    QueueWait,
    /// The target bank's timing horizon (tRCD/tRAS/tRP/tRC) is not met.
    BankBusy,
    /// The shared data/command bus is occupied or turning around
    /// (tCCD, read↔write turnaround, command-bus arbitration).
    BusConflict,
    /// Activation-window spacing (tRRD or the tFAW four-activate window).
    ActWindow,
    /// A refresh is pending or in progress.
    Refresh,
}

impl StallCause {
    /// All causes, in matrix-index order.
    pub const ALL: [StallCause; STALL_CAUSES] = [
        StallCause::QueueWait,
        StallCause::BankBusy,
        StallCause::BusConflict,
        StallCause::ActWindow,
        StallCause::Refresh,
    ];

    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::QueueWait => "queue_wait",
            StallCause::BankBusy => "bank_busy",
            StallCause::BusConflict => "bus_conflict",
            StallCause::ActWindow => "act_window",
            StallCause::Refresh => "refresh",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCause::QueueWait => 0,
            StallCause::BankBusy => 1,
            StallCause::BusConflict => 2,
            StallCause::ActWindow => 3,
            StallCause::Refresh => 4,
        }
    }
}

/// Accumulates stalled cycles by (victim domain, culprit domain) pair.
///
/// The diagonal is self-interference (a domain queueing behind its own
/// traffic); refresh stalls have no culprit domain and appear only in the
/// by-cause totals.
#[derive(Debug, Clone)]
pub struct InterferenceMatrix {
    domains: usize,
    cells: Vec<u64>,
    by_cause: [u64; STALL_CAUSES],
    total: u64,
}

impl InterferenceMatrix {
    /// Creates an all-zero matrix over `domains` security domains.
    pub fn new(domains: usize) -> Self {
        Self {
            domains,
            cells: vec![0; domains * domains],
            by_cause: [0; STALL_CAUSES],
            total: 0,
        }
    }

    /// Number of domains tracked.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Charges `cycles` of stall on `victim` to `culprit` for `cause`.
    /// Out-of-range domains are ignored (shaper-reserved id spaces).
    pub fn charge(&mut self, victim: u16, culprit: Option<u16>, cause: StallCause, cycles: u64) {
        self.total += cycles;
        self.by_cause[cause.index()] += cycles;
        if let Some(c) = culprit {
            let (v, c) = (victim as usize, c as usize);
            if v < self.domains && c < self.domains {
                self.cells[v * self.domains + c] += cycles;
            }
        }
    }

    /// Stalled cycles of `victim` attributed to `culprit`.
    pub fn cell(&self, victim: u16, culprit: u16) -> u64 {
        self.cells[victim as usize * self.domains + culprit as usize]
    }

    /// Total stalled cycles recorded (including culprit-less refresh time).
    pub fn total_stall_cycles(&self) -> u64 {
        self.total
    }

    /// Snapshots into the serializable report form.
    pub fn report(&self) -> InterferenceReport {
        InterferenceReport {
            domains: self.domains,
            total_stall_cycles: self.total,
            matrix: (0..self.domains)
                .map(|v| self.cells[v * self.domains..(v + 1) * self.domains].to_vec())
                .collect(),
            by_cause: StallCause::ALL
                .iter()
                .map(|c| StallCauseCycles {
                    cause: c.name().to_string(),
                    cycles: self.by_cause[c.index()],
                })
                .collect(),
        }
    }
}

/// Stalled cycles accumulated under one [`StallCause`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallCauseCycles {
    /// The cause's stable name.
    pub cause: String,
    /// Stalled cycles charged to it.
    pub cycles: u64,
}

/// Serializable snapshot of an [`InterferenceMatrix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceReport {
    /// Number of domains (matrix is `domains × domains`).
    pub domains: usize,
    /// Total stalled cycles including culprit-less refresh time.
    pub total_stall_cycles: u64,
    /// `matrix[victim][culprit]` = stalled cycles of `victim` caused by
    /// `culprit`'s earlier commands.
    pub matrix: Vec<Vec<u64>>,
    /// Stalled cycles broken down by cause.
    pub by_cause: Vec<StallCauseCycles>,
}

/// One closed window of shaper activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaperWindow {
    /// First cycle of the window.
    pub start_cycle: Cycle,
    /// Real victim requests forwarded into slots this window.
    pub real: u64,
    /// Fake requests fabricated for unmatched slots this window.
    pub fake: u64,
    /// Mean private-queue depth sampled at each emission.
    pub mean_queue_depth: f64,
    /// Mean slot slack (emission cycle − slot due cycle) in CPU cycles.
    pub mean_slack: f64,
}

/// Windowed time series of a shaper's observable behaviour: queue depth,
/// rDAG slot slack, and real-vs-fake fills. Because the emission *schedule*
/// is secret-independent, only the real/fake split and queue depth may vary
/// with the victim — which is exactly what this timeline makes visible.
///
/// Windows with no emissions are skipped (the series stays bounded by
/// emission count, not run length).
#[derive(Debug, Clone)]
pub struct ShaperTimeline {
    domain: u16,
    window: Cycle,
    window_start: Cycle,
    real: u64,
    fake: u64,
    depth_sum: u64,
    slack_sum: u64,
    windows: Vec<ShaperWindow>,
}

impl ShaperTimeline {
    /// Creates a timeline for `domain` with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(domain: u16, window: Cycle) -> Self {
        assert!(window > 0, "shaper timeline window must be positive");
        Self {
            domain,
            window,
            window_start: 0,
            real: 0,
            fake: 0,
            depth_sum: 0,
            slack_sum: 0,
            windows: Vec::new(),
        }
    }

    /// Records one slot emission at `now`.
    pub fn record_emission(&mut self, now: Cycle, queue_depth: usize, slack: Cycle, fake: bool) {
        if now >= self.window_start + self.window {
            if self.real + self.fake > 0 {
                self.windows.push(self.current_window());
            }
            // Fast-forward across idle windows without materializing them.
            self.window_start = now - (now - self.window_start) % self.window;
            self.real = 0;
            self.fake = 0;
            self.depth_sum = 0;
            self.slack_sum = 0;
        }
        if fake {
            self.fake += 1;
        } else {
            self.real += 1;
        }
        self.depth_sum += queue_depth as u64;
        self.slack_sum += slack;
    }

    fn current_window(&self) -> ShaperWindow {
        let n = (self.real + self.fake).max(1) as f64;
        ShaperWindow {
            start_cycle: self.window_start,
            real: self.real,
            fake: self.fake,
            mean_queue_depth: self.depth_sum as f64 / n,
            mean_slack: self.slack_sum as f64 / n,
        }
    }

    /// Snapshots the timeline, including the trailing partial window.
    pub fn report(&self) -> ShaperTimelineReport {
        let mut windows = self.windows.clone();
        if self.real + self.fake > 0 {
            windows.push(self.current_window());
        }
        ShaperTimelineReport {
            domain: self.domain,
            window: self.window,
            windows,
        }
    }
}

/// Serializable snapshot of a [`ShaperTimeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaperTimelineReport {
    /// Protected domain the shaper serves.
    pub domain: u16,
    /// Window length in CPU cycles.
    pub window: Cycle,
    /// Closed windows plus the trailing partial window, oldest first.
    pub windows: Vec<ShaperWindow>,
}

/// One leakage-estimation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakSample {
    /// First cycle of the window.
    pub start_cycle: Cycle,
    /// Attacker observations (probe completions) inside the window.
    pub observations: u64,
    /// Bias-corrected mutual information between secret class and observed
    /// latency, in bits per observation. Slightly negative values are
    /// finite-sample noise on an independent channel (the correction is
    /// unbiased, not one-sided); they average out across windows.
    pub mi_bits: f64,
    /// The window's estimated channel capacity in bits per second (same
    /// sign convention as [`mi_bits`](Self::mi_bits)).
    pub capacity_bits_per_sec: f64,
}

/// Online estimator of how many bits per second attacker-observable
/// latencies leak about a victim secret class.
///
/// Per window it keeps a joint histogram `counts[class][latency bucket]`,
/// reduced at window close to the plug-in mutual information with a
/// Miller–Madow bias correction. Per-window estimates are kept *signed*:
/// the corrected estimator is roughly unbiased, so on a genuinely
/// independent channel — e.g. DAGguise-shaped traffic — positive and
/// negative noise cancels across windows and the reported mean reads ≈ 0.
/// (Clamping each window at zero instead would turn that noise into a
/// systematic positive floor.) Only the aggregate mean is clamped at
/// zero. Capacity scales MI per observation by the observation rate,
/// matching the bits/s units of `CovertResult::capacity_bits_per_sec`.
#[derive(Debug, Clone)]
pub struct LeakEstimator {
    window: Cycle,
    clock_hz: f64,
    bucket_width: Cycle,
    classes: usize,
    buckets: usize,
    window_start: Cycle,
    counts: Vec<u64>,
    samples: Vec<LeakSample>,
}

impl LeakEstimator {
    /// Creates an estimator over `classes` secret classes, bucketing
    /// latencies into `buckets` buckets of `bucket_width` cycles (the last
    /// bucket absorbs the overflow tail).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        window: Cycle,
        clock_hz: f64,
        classes: usize,
        bucket_width: Cycle,
        buckets: usize,
    ) -> Self {
        assert!(window > 0, "leak window must be positive");
        assert!(classes > 0 && buckets > 0 && bucket_width > 0);
        Self {
            window,
            clock_hz,
            bucket_width,
            classes,
            buckets,
            window_start: 0,
            counts: vec![0; classes * buckets],
            samples: Vec::new(),
        }
    }

    /// Window length in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Records one attacker observation: a probe that completed at `now`
    /// with the given latency, while the victim secret was `class`.
    pub fn observe(&mut self, now: Cycle, class: usize, latency: Cycle) {
        if now >= self.window_start + self.window {
            self.close_window();
            self.window_start = now - (now - self.window_start) % self.window;
        }
        let b = ((latency / self.bucket_width) as usize).min(self.buckets - 1);
        self.counts[class.min(self.classes - 1) * self.buckets + b] += 1;
    }

    /// Flushes the trailing partial window at end-of-run.
    pub fn finish(&mut self) {
        self.close_window();
    }

    fn close_window(&mut self) {
        let n: u64 = self.counts.iter().sum();
        if n == 0 {
            return;
        }
        let mi = self.window_mi(n);
        let capacity = mi * n as f64 * self.clock_hz / self.window as f64;
        self.samples.push(LeakSample {
            start_cycle: self.window_start,
            observations: n,
            mi_bits: mi,
            capacity_bits_per_sec: capacity,
        });
        self.counts.fill(0);
    }

    /// Plug-in MI over the current joint histogram, Miller–Madow corrected.
    /// Signed: see the type-level docs for why windows are not clamped.
    fn window_mi(&self, n: u64) -> f64 {
        let nf = n as f64;
        let mut class_marg = vec![0u64; self.classes];
        let mut bucket_marg = vec![0u64; self.buckets];
        for (c, cm) in class_marg.iter_mut().enumerate() {
            for (b, bm) in bucket_marg.iter_mut().enumerate() {
                let k = self.counts[c * self.buckets + b];
                *cm += k;
                *bm += k;
            }
        }
        let mut mi = 0.0;
        for (c, &cm) in class_marg.iter().enumerate() {
            for (b, &bm) in bucket_marg.iter().enumerate() {
                let k = self.counts[c * self.buckets + b];
                if k == 0 {
                    continue;
                }
                let p_joint = k as f64 / nf;
                let p_indep = (cm as f64 / nf) * (bm as f64 / nf);
                mi += p_joint * (p_joint / p_indep).log2();
            }
        }
        // Miller–Madow: plug-in MI overestimates by ≈ (|C|−1)(|B|−1)/(2N ln2)
        // over the non-empty marginals.
        let c_nz = class_marg.iter().filter(|&&k| k > 0).count() as f64;
        let b_nz = bucket_marg.iter().filter(|&&k| k > 0).count() as f64;
        let bias =
            (c_nz - 1.0).max(0.0) * (b_nz - 1.0).max(0.0) / (2.0 * nf * std::f64::consts::LN_2);
        mi - bias
    }

    /// Snapshots the capacity-over-time series. The mean is clamped at
    /// zero (per-window noise is signed; a channel cannot leak negative
    /// bits), the per-window samples are reported raw.
    pub fn report(&self) -> LeakReport {
        LeakReport::from_samples(self.window, self.clock_hz, self.samples.clone())
    }
}

/// Serializable capacity-over-time artifact of a [`LeakEstimator`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakReport {
    /// Estimation window in CPU cycles.
    pub window: Cycle,
    /// CPU clock in Hz (converts per-window rates to bits/s).
    pub clock_hz: f64,
    /// Mean estimated capacity across windows, in bits/s.
    pub mean_capacity_bps: f64,
    /// Peak single-window capacity, in bits/s.
    pub peak_capacity_bps: f64,
    /// Per-window samples, oldest first (empty windows omitted).
    pub samples: Vec<LeakSample>,
}

impl LeakReport {
    /// Builds a report from per-window samples: the mean is the signed
    /// average clamped at zero, the peak the maximum single window (never
    /// negative).
    pub fn from_samples(window: Cycle, clock_hz: f64, samples: Vec<LeakSample>) -> Self {
        let mean = if samples.is_empty() {
            0.0
        } else {
            (samples.iter().map(|s| s.capacity_bits_per_sec).sum::<f64>() / samples.len() as f64)
                .max(0.0)
        };
        let peak = samples
            .iter()
            .map(|s| s.capacity_bits_per_sec)
            .fold(0.0, f64::max);
        LeakReport {
            window,
            clock_hz,
            mean_capacity_bps: mean,
            peak_capacity_bps: peak,
            samples,
        }
    }

    /// Subtracts a permutation-null baseline from this report.
    ///
    /// Each null must come from the *same* observation stream, estimated
    /// with the class labels cyclically rotated (a permutation preserving
    /// the label marginals but destroying any causal alignment). Whatever
    /// MI the nulls read is structure-induced spurious correlation —
    /// periodic latency patterns coinciding with the label sequence — and
    /// is subtracted window-by-window (samples pair by index; the mean of
    /// the nulls is used). The result's aggregate mean is re-clamped at
    /// zero as usual.
    pub fn subtract_null(&self, nulls: &[LeakReport]) -> LeakReport {
        if nulls.is_empty() {
            return self.clone();
        }
        let samples = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let paired: Vec<&LeakSample> =
                    nulls.iter().filter_map(|n| n.samples.get(i)).collect();
                let k = paired.len().max(1) as f64;
                LeakSample {
                    start_cycle: s.start_cycle,
                    observations: s.observations,
                    mi_bits: s.mi_bits - paired.iter().map(|p| p.mi_bits).sum::<f64>() / k,
                    capacity_bits_per_sec: s.capacity_bits_per_sec
                        - paired.iter().map(|p| p.capacity_bits_per_sec).sum::<f64>() / k,
                }
            })
            .collect();
        LeakReport::from_samples(self.window, self.clock_hz, samples)
    }

    /// Merges reports from independent probe repetitions (fresh memory,
    /// different transmitted messages) into one. Samples are concatenated
    /// and the aggregate mean recomputed over the *signed* per-window
    /// values, so finite-sample noise that swings positive in one
    /// repetition cancels against another instead of accumulating.
    pub fn merged(reports: &[LeakReport]) -> LeakReport {
        let (window, clock_hz) = reports
            .first()
            .map(|r| (r.window, r.clock_hz))
            .unwrap_or((1, 0.0));
        let samples = reports.iter().flat_map(|r| r.samples.clone()).collect();
        LeakReport::from_samples(window, clock_hz, samples)
    }
}

/// Compact per-job leakage summary carried in sweep outputs and merged by
/// `dg-run` into the leakage leaderboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakSummary {
    /// Mean estimated capacity across windows, in bits/s.
    pub mean_capacity_bps: f64,
    /// Peak single-window capacity, in bits/s.
    pub peak_capacity_bps: f64,
    /// Number of non-empty estimation windows.
    pub windows: u64,
    /// Covert-channel decode error rate of the probe run.
    pub error_rate: f64,
    /// Raw covert-channel rate in bits/s (the capacity's upper bound).
    pub raw_bits_per_sec: f64,
}

impl LeakSummary {
    /// Builds a summary from a probe's capacity-over-time report plus the
    /// covert decode quality figures.
    pub fn from_report(report: &LeakReport, error_rate: f64, raw_bits_per_sec: f64) -> Self {
        Self {
            mean_capacity_bps: report.mean_capacity_bps,
            peak_capacity_bps: report.peak_capacity_bps,
            windows: report.samples.len() as u64,
            error_rate,
            raw_bits_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_charges_and_reports() {
        let mut m = InterferenceMatrix::new(3);
        m.charge(0, Some(1), StallCause::BankBusy, 6);
        m.charge(0, Some(1), StallCause::BusConflict, 3);
        m.charge(1, Some(1), StallCause::QueueWait, 2);
        m.charge(0, None, StallCause::Refresh, 5);
        m.charge(0, Some(9), StallCause::BankBusy, 4); // out of range: total only
        assert_eq!(m.cell(0, 1), 9);
        assert_eq!(m.cell(1, 1), 2);
        assert_eq!(m.cell(0, 0), 0);
        assert_eq!(m.total_stall_cycles(), 20);
        let r = m.report();
        assert_eq!(r.matrix[0][1], 9);
        assert_eq!(r.by_cause.len(), STALL_CAUSES);
        let refresh = r.by_cause.iter().find(|c| c.cause == "refresh").unwrap();
        assert_eq!(refresh.cycles, 5);
        // Serde round trip (report is part of RunReport).
        let json = serde_json::to_string(&r).unwrap();
        let back: InterferenceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn shaper_timeline_windows_and_trailing_partial() {
        let mut t = ShaperTimeline::new(0, 100);
        t.record_emission(10, 2, 5, false);
        t.record_emission(50, 4, 15, true);
        // Next window.
        t.record_emission(120, 0, 0, true);
        let r = t.report();
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].start_cycle, 0);
        assert_eq!(r.windows[0].real, 1);
        assert_eq!(r.windows[0].fake, 1);
        assert!((r.windows[0].mean_queue_depth - 3.0).abs() < 1e-12);
        assert!((r.windows[0].mean_slack - 10.0).abs() < 1e-12);
        // Trailing partial window is included in the report.
        assert_eq!(r.windows[1].start_cycle, 100);
        assert_eq!(r.windows[1].fake, 1);
    }

    #[test]
    fn shaper_timeline_skips_idle_windows() {
        let mut t = ShaperTimeline::new(0, 100);
        t.record_emission(10, 0, 0, true);
        t.record_emission(1010, 0, 0, true); // 9 idle windows in between
        let r = t.report();
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[1].start_cycle, 1000);
    }

    #[test]
    fn estimator_detects_perfect_dependence() {
        // Class 0 always observes fast probes, class 1 always slow ones:
        // one full bit per observation.
        let mut e = LeakEstimator::new(1_000, 1e9, 2, 10, 16);
        for i in 0..500u64 {
            e.observe(i, 0, 5);
            e.observe(i, 1, 95);
        }
        e.finish();
        let r = e.report();
        assert_eq!(r.samples.len(), 1);
        assert_eq!(r.samples[0].observations, 1000);
        assert!(
            r.samples[0].mi_bits > 0.9,
            "perfectly dependent channel: {}",
            r.samples[0].mi_bits
        );
        // 1000 obs / 1000 cycles at 1 GHz ≈ 1e9 obs/s × ~1 bit.
        assert!(r.mean_capacity_bps > 0.9e9);
        assert_eq!(r.peak_capacity_bps, r.samples[0].capacity_bits_per_sec);
    }

    #[test]
    fn estimator_reads_independent_channel_as_zero() {
        // Latency depends only on observation parity, never on the class
        // (each class sees each latency equally often).
        let mut e = LeakEstimator::new(1_000, 1e9, 2, 10, 16);
        for i in 0..2000u64 {
            let class = (i / 2 % 2) as usize;
            let latency = if i % 2 == 0 { 20 } else { 80 };
            e.observe(i / 2, class, latency);
        }
        e.finish();
        let r = e.report();
        assert!(!r.samples.is_empty());
        assert!(
            r.mean_capacity_bps < 0.02 * 1e9,
            "independent channel must read near zero: {}",
            r.mean_capacity_bps
        );
    }

    #[test]
    fn estimator_rolls_windows_and_flushes_tail() {
        let mut e = LeakEstimator::new(100, 1e6, 2, 10, 8);
        e.observe(10, 0, 5);
        e.observe(150, 1, 75);
        // No finish yet: only the first window is closed.
        assert_eq!(e.report().samples.len(), 1);
        e.finish();
        let r = e.report();
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.samples[0].start_cycle, 0);
        assert_eq!(r.samples[1].start_cycle, 100);
        assert_eq!(r.samples[1].observations, 1);
        // A lone observation carries no information.
        assert_eq!(r.samples[1].mi_bits, 0.0);
    }

    fn sample(start: Cycle, cap: f64) -> LeakSample {
        LeakSample {
            start_cycle: start,
            observations: 10,
            mi_bits: cap / 1e9,
            capacity_bits_per_sec: cap,
        }
    }

    #[test]
    fn subtract_null_cancels_structural_bias() {
        let obs = LeakReport::from_samples(100, 1e9, vec![sample(0, 500.0), sample(100, 300.0)]);
        let n1 = LeakReport::from_samples(100, 1e9, vec![sample(0, 400.0), sample(100, 200.0)]);
        let n2 = LeakReport::from_samples(100, 1e9, vec![sample(0, 600.0), sample(100, 400.0)]);
        let corrected = obs.subtract_null(&[n1, n2]);
        // Null mean equals the observed value in both windows → zero left.
        assert_eq!(corrected.samples[0].capacity_bits_per_sec, 0.0);
        assert_eq!(corrected.samples[1].capacity_bits_per_sec, 0.0);
        assert_eq!(corrected.mean_capacity_bps, 0.0);
        // Empty null list is the identity.
        assert_eq!(obs.subtract_null(&[]), obs);
    }

    #[test]
    fn merged_averages_signed_windows_across_reps() {
        let a = LeakReport::from_samples(100, 1e9, vec![sample(0, 80.0)]);
        let b = LeakReport::from_samples(100, 1e9, vec![sample(0, -60.0)]);
        let m = LeakReport::merged(&[a.clone(), b]);
        assert_eq!(m.samples.len(), 2);
        assert!((m.mean_capacity_bps - 10.0).abs() < 1e-9);
        assert_eq!(m.peak_capacity_bps, 80.0);
        // A rep whose own clamped mean is 0 still pulls the merged mean
        // down: merging uses signed samples, not per-rep means.
        let c = LeakReport::from_samples(100, 1e9, vec![sample(0, -200.0)]);
        assert_eq!(c.mean_capacity_bps, 0.0);
        let m2 = LeakReport::merged(&[a, c]);
        assert_eq!(m2.mean_capacity_bps, 0.0);
    }

    #[test]
    fn leak_summary_round_trips() {
        let s = LeakSummary {
            mean_capacity_bps: 1234.5,
            peak_capacity_bps: 9999.0,
            windows: 7,
            error_rate: 0.125,
            raw_bits_per_sec: 1.2e6,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: LeakSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
