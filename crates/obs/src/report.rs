//! The [`RunReport`]: a hierarchical, serializable snapshot of every stats
//! structure a simulation run produces.
//!
//! The report is assembled by `dg-system` at the end of a run (it is the
//! layer that can see core, cache, shaper and DRAM state at once) and
//! written to `results/` as JSON by the benchmark harness. The struct tree
//! mirrors the hardware hierarchy: per-core IPC, per-domain traffic and
//! latency distribution, per-shaper conformance stats, DRAM energy, plus the
//! interval time series recorded by
//! [`IntervalSampler`](crate::interval::IntervalSampler).

use crate::interval::IntervalSample;
use crate::leak::{InterferenceReport, ShaperTimelineReport};
use dg_dram::power::{EnergyCounter, PowerParams};
use dg_prof::{EngineTelemetry, HistSnapshot};
use serde::{Deserialize, Serialize};

/// Run-level identification and global counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Human-readable run name (experiment binary + scenario).
    pub name: String,
    /// Memory subsystem variant ("insecure", "dagguise", ...).
    pub memory: String,
    /// Number of simulated cores.
    pub cores: usize,
    /// Total simulated CPU cycles.
    pub total_cycles: u64,
    /// CPU clock in Hz (for bandwidth conversions).
    pub clock_hz: f64,
}

/// Per-core progress counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Security domain the core belongs to.
    pub domain: u16,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the core was accounted against (finish time or run length).
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Whether the core drained its whole trace.
    pub finished: bool,
    /// HDR histogram of the gaps between instruction-completion events on
    /// this core (empty for cores that do not record one).
    pub completion: HistSnapshot,
}

/// Snapshot of a latency histogram: bucket width plus the non-empty buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Width of each bucket in CPU cycles.
    pub bucket_width: u64,
    /// `(bucket_index, count)` for every non-empty bucket.
    pub nonzero: Vec<(usize, u64)>,
    /// Total number of recorded samples.
    pub total: u64,
}

/// Per-security-domain memory traffic summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainReport {
    /// The domain id.
    pub domain: u16,
    /// Real read responses.
    pub reads: u64,
    /// Real write responses.
    pub writes: u64,
    /// Fake (shaper-fabricated) responses.
    pub fakes: u64,
    /// Achieved bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Mean memory latency in CPU cycles (absent when no traffic).
    pub mean_latency: Option<f64>,
    /// Median latency in CPU cycles.
    pub latency_p50: Option<u64>,
    /// 95th-percentile latency in CPU cycles.
    pub latency_p95: Option<u64>,
    /// 99th-percentile latency in CPU cycles.
    pub latency_p99: Option<u64>,
    /// The full latency distribution.
    pub latency_hist: HistogramSnapshot,
    /// HDR (log-bucketed) latency distribution with p50/p90/p99/p999: the
    /// linear `latency_hist` saturates at 10k cycles, this one covers the
    /// full range with a 3.125% relative error bound.
    pub latency_hdr: HistSnapshot,
}

/// Per-shaper conformance statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaperReport {
    /// Protected domain this shaper serves.
    pub domain: u16,
    /// Real requests forwarded into rDAG slots.
    pub real_forwarded: u64,
    /// Fake requests fabricated for unmatched slots.
    pub fakes_emitted: u64,
    /// Requests admitted into the shaper queue.
    pub accepted: u64,
    /// Requests refused because the queue was full.
    pub rejected: u64,
    /// Fraction of emitted traffic that was fake.
    pub fake_fraction: f64,
    /// Mean queueing delay of forwarded real requests, in CPU cycles.
    pub mean_delay: Option<f64>,
}

/// DRAM energy totals in nanojoules, derived from an [`EnergyCounter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy spent on real traffic.
    pub real_nj: f64,
    /// Energy spent on fake traffic.
    pub fake_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background (standby) energy.
    pub background_nj: f64,
    /// Total with fake-suppression optimisation applied.
    pub total_suppressed_nj: f64,
    /// Total if fakes performed full accesses.
    pub total_unsuppressed_nj: f64,
    /// Fake-traffic energy overhead as a fraction of the real total.
    pub fake_overhead: f64,
}

impl EnergyReport {
    /// Prices an [`EnergyCounter`] with `params` into absolute totals.
    pub fn from_counter(counter: &EnergyCounter, params: &PowerParams) -> Self {
        EnergyReport {
            real_nj: counter.real_nj(params),
            fake_nj: counter.fake_nj(params),
            refresh_nj: counter.refresh_nj(params),
            background_nj: counter.background_nj(params),
            total_suppressed_nj: counter.total_suppressed_nj(params),
            total_unsuppressed_nj: counter.total_unsuppressed_nj(params),
            fake_overhead: counter.fake_overhead(params),
        }
    }
}

/// Per-bank activity counters surfaced from the memory controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankReport {
    /// The bank index.
    pub bank: u32,
    /// ACT commands issued to the bank.
    pub acts: u64,
    /// Column accesses that hit the already-open row.
    pub row_hits: u64,
    /// Column accesses that required an activation first.
    pub row_misses: u64,
    /// Precharge operations (explicit PRE plus auto-precharge).
    pub precharges: u64,
    /// Cycles an ACT to this bank stalled on the tFAW four-activate window.
    pub faw_stall_cycles: u64,
}

/// Memory-controller / DRAM level counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramReport {
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Responses dropped because their domain id exceeded the configured
    /// domain count (should be zero in a healthy run).
    pub dropped_responses: u64,
    /// Energy totals.
    pub energy: EnergyReport,
}

/// Counters describing the trace recording itself.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Events available in the ring buffer at snapshot time.
    pub events_recorded: u64,
    /// Events lost to ring-buffer wraparound.
    pub events_dropped: u64,
}

/// The complete artifact of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Run identification and global counters.
    pub meta: RunMeta,
    /// One entry per core.
    pub cores: Vec<CoreReport>,
    /// One entry per security domain with memory traffic accounting.
    pub domains: Vec<DomainReport>,
    /// One entry per request shaper (empty for unshaped memory kinds).
    pub shapers: Vec<ShaperReport>,
    /// Windowed shaper telemetry (empty unless timelines were enabled).
    pub shaper_timelines: Vec<ShaperTimelineReport>,
    /// Controller/DRAM counters and energy.
    pub dram: DramReport,
    /// Per-bank row-hit/miss/precharge/tFAW-stall counters (empty for
    /// memory paths that do not expose bank state).
    pub banks: Vec<BankReport>,
    /// Who-delayed-whom contention attribution (absent for memory paths
    /// without a stall-attributing controller).
    pub interference: Option<InterferenceReport>,
    /// Interval time series window size in cycles (0 when sampling was off).
    pub interval_window: u64,
    /// Interval samples (empty when sampling was off).
    pub intervals: Vec<IntervalSample>,
    /// Trace-recording counters.
    pub trace: TraceSummary,
    /// Event-engine telemetry (warp distances, skip efficiency, scan
    /// backoff). Describes how the engine covered simulated time, not the
    /// simulation outcome: it legitimately differs between the naive and
    /// event-driven engines, so cross-engine comparisons normalize it.
    pub engine: EngineTelemetry,
}

impl RunReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hist() -> HistSnapshot {
        let mut h = dg_prof::LogHistogram::new();
        for v in [40u64, 80, 80, 200, 400] {
            h.record(v);
        }
        h.snapshot()
    }

    fn sample_report() -> RunReport {
        RunReport {
            meta: RunMeta {
                name: "fig5_example".to_string(),
                memory: "dagguise".to_string(),
                cores: 2,
                total_cycles: 10_000,
                clock_hz: 2.4e9,
            },
            cores: vec![CoreReport {
                domain: 0,
                instructions: 5_000,
                cycles: 10_000,
                ipc: 0.5,
                finished: true,
                completion: sample_hist(),
            }],
            domains: vec![DomainReport {
                domain: 0,
                reads: 100,
                writes: 20,
                fakes: 30,
                bandwidth_gbps: 1.5,
                mean_latency: Some(82.5),
                latency_p50: Some(80),
                latency_p95: Some(200),
                latency_p99: Some(400),
                latency_hist: HistogramSnapshot {
                    bucket_width: 10,
                    nonzero: vec![(8, 90), (20, 10)],
                    total: 100,
                },
                latency_hdr: sample_hist(),
            }],
            shapers: vec![ShaperReport {
                domain: 0,
                real_forwarded: 100,
                fakes_emitted: 30,
                accepted: 120,
                rejected: 2,
                fake_fraction: 30.0 / 130.0,
                mean_delay: Some(12.0),
            }],
            shaper_timelines: vec![ShaperTimelineReport {
                domain: 0,
                window: 1_000,
                windows: vec![crate::leak::ShaperWindow {
                    start_cycle: 0,
                    real: 4,
                    fake: 6,
                    mean_queue_depth: 1.5,
                    mean_slack: 3.0,
                }],
            }],
            dram: DramReport {
                refreshes: 4,
                dropped_responses: 0,
                energy: EnergyReport {
                    real_nj: 10.0,
                    fake_nj: 1.0,
                    refresh_nj: 0.5,
                    background_nj: 3.0,
                    total_suppressed_nj: 14.0,
                    total_unsuppressed_nj: 14.5,
                    fake_overhead: 0.1,
                },
            },
            banks: vec![BankReport {
                bank: 0,
                acts: 110,
                row_hits: 40,
                row_misses: 80,
                precharges: 109,
                faw_stall_cycles: 12,
            }],
            interference: Some(InterferenceReport {
                domains: 2,
                total_stall_cycles: 500,
                matrix: vec![vec![10, 200], vec![250, 40]],
                by_cause: vec![crate::leak::StallCauseCycles {
                    cause: "bank_busy".to_string(),
                    cycles: 500,
                }],
            }),
            interval_window: 1_000,
            intervals: vec![IntervalSample {
                start_cycle: 0,
                ipc: vec![0.5],
                bandwidth_gbps: vec![1.5],
            }],
            trace: TraceSummary {
                events_recorded: 42,
                events_dropped: 0,
            },
            engine: {
                let mut c = dg_prof::EngineCounters::default();
                c.tick();
                c.warp(100);
                c.poll("mem");
                c.snapshot()
            },
        }
    }

    #[test]
    fn serde_round_trip() {
        let report = sample_report();
        let json = report.to_json();
        let back: RunReport = serde_json::from_str(&json).expect("report parses back");
        assert_eq!(back, report);
    }

    #[test]
    fn json_contains_hierarchy() {
        let json = sample_report().to_json();
        for key in [
            "\"meta\"",
            "\"cores\"",
            "\"domains\"",
            "\"shapers\"",
            "\"dram\"",
            "\"intervals\"",
            "\"latency_hist\"",
            "\"fake_fraction\"",
            "\"banks\"",
            "\"interference\"",
            "\"shaper_timelines\"",
            "\"row_hits\"",
            "\"faw_stall_cycles\"",
            "\"engine\"",
            "\"skip_efficiency\"",
            "\"latency_hdr\"",
            "\"p999\"",
            "\"completion\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn energy_report_prices_counter() {
        let mut c = EnergyCounter::default();
        c.record_access(false, false);
        c.record_access(true, true);
        c.record_refresh();
        c.set_cycles(1_000);
        let p = PowerParams::default();
        let r = EnergyReport::from_counter(&c, &p);
        assert!(r.real_nj > 0.0);
        assert!(r.fake_nj > 0.0);
        assert!(r.refresh_nj > 0.0);
        assert!((r.total_suppressed_nj) <= r.total_unsuppressed_nj + 1e-9);
    }
}
