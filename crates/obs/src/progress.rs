//! Sweep-level progress and throughput accounting.
//!
//! A [`ProgressMeter`] is shared by every worker of an experiment sweep
//! (`dg-runner`); each terminal job completion bumps the counters and
//! optionally emits a one-line progress report to stderr. At the end of the
//! sweep [`ProgressMeter::summary`] snapshots the totals into a
//! serializable [`SweepProgress`].
//!
//! Wall-clock derived numbers (elapsed, jobs/s, ETA) are *display-only*:
//! they never enter the canonical merged sweep report, which must be
//! byte-identical across reruns, resumes, and worker counts.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Final counters of a sweep, serializable into run artifacts.
///
/// Only deterministic fields (`total`, `succeeded`, `failed`, `skipped`,
/// `retries`) belong in canonical reports; `elapsed_ms` and
/// `jobs_per_sec` are measurement noise and are kept separate by callers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepProgress {
    /// Jobs the sweep set out to run (including journal-skipped ones).
    pub total: u64,
    /// Jobs that completed successfully this run.
    pub succeeded: u64,
    /// Jobs that exhausted their retries or panicked.
    pub failed: u64,
    /// Jobs skipped because a resume journal already had their result.
    pub skipped: u64,
    /// Extra attempts beyond each job's first (retry pressure).
    pub retries: u64,
    /// Wall-clock of the sweep in milliseconds.
    pub elapsed_ms: u64,
    /// Terminal completions per second of wall-clock (0 when instant).
    pub jobs_per_sec: f64,
}

/// Thread-safe progress counter for a fixed-size job sweep.
#[derive(Debug)]
pub struct ProgressMeter {
    total: u64,
    succeeded: AtomicU64,
    failed: AtomicU64,
    skipped: AtomicU64,
    retries: AtomicU64,
    started: Instant,
    verbose: bool,
}

impl ProgressMeter {
    /// Creates a meter for `total` jobs. When `verbose`, each completion
    /// prints a progress line to stderr.
    pub fn new(total: u64, verbose: bool) -> Self {
        Self {
            total,
            succeeded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            started: Instant::now(),
            verbose,
        }
    }

    /// Records `n` jobs satisfied from a resume journal.
    pub fn skipped(&self, n: u64) {
        self.skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one extra attempt of a retried job.
    pub fn retried(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a terminal job completion and, in verbose mode, prints a
    /// `[done/total]` line with running throughput and a rough ETA.
    pub fn job_done(&self, id: &str, ok: bool, attempts: u32) {
        let counter = if ok { &self.succeeded } else { &self.failed };
        counter.fetch_add(1, Ordering::Relaxed);
        if !self.verbose {
            return;
        }
        let done = self.done();
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.completed_here() as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(done);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            "?".to_string()
        };
        let verdict = if ok { "ok" } else { "FAILED" };
        let retry_note = if attempts > 1 {
            format!(" (attempt {attempts})")
        } else {
            String::new()
        };
        eprintln!(
            "[{done}/{}] {id} {verdict}{retry_note}  {rate:.2} jobs/s, eta {eta}",
            self.total
        );
    }

    /// Terminal completions so far, including journal-skipped jobs.
    pub fn done(&self) -> u64 {
        self.completed_here() + self.skipped.load(Ordering::Relaxed)
    }

    fn completed_here(&self) -> u64 {
        self.succeeded.load(Ordering::Relaxed) + self.failed.load(Ordering::Relaxed)
    }

    /// Snapshots the sweep totals.
    pub fn summary(&self) -> SweepProgress {
        let elapsed = self.started.elapsed();
        let elapsed_s = elapsed.as_secs_f64();
        let completed = self.completed_here();
        SweepProgress {
            total: self.total,
            succeeded: self.succeeded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            elapsed_ms: elapsed.as_millis() as u64,
            jobs_per_sec: if elapsed_s > 0.0 {
                completed as f64 / elapsed_s
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ProgressMeter::new(5, false);
        m.skipped(1);
        m.job_done("a", true, 1);
        m.job_done("b", true, 3);
        m.retried();
        m.retried();
        m.job_done("c", false, 1);
        let s = m.summary();
        assert_eq!(s.total, 5);
        assert_eq!(s.succeeded, 2);
        assert_eq!(s.failed, 1);
        assert_eq!(s.skipped, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(m.done(), 4);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let m = ProgressMeter::new(2, false);
        m.job_done("x", true, 1);
        let s = m.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: SweepProgress = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total, s.total);
        assert_eq!(back.succeeded, s.succeeded);
    }

    #[test]
    fn verbose_logging_does_not_panic() {
        let m = ProgressMeter::new(1, true);
        m.job_done("only-job", false, 2);
    }
}
