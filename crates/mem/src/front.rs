//! Front-end interfaces: the [`MemorySubsystem`] facade cores talk to, the
//! per-domain [`DomainShaper`] plug-in point (Figure 3), and the
//! [`ShapedMemory`] assembly that routes traffic through shapers.

use std::collections::VecDeque;

use dg_obs::{InterferenceReport, ShaperReport, ShaperTimelineReport, Tracer};
use dg_sim::clock::Cycle;
use dg_sim::types::{DomainId, MemRequest, MemResponse};

use crate::stats::MemStats;

/// The facade between cores/caches and whatever memory path the experiment
/// configures (insecure controller, shaped controller, Fixed Service, …).
pub trait MemorySubsystem: Send {
    /// Offers a request. On back-pressure the request is handed back and the
    /// caller must retry later.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the accepting queue is full.
    fn try_send(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest>;

    /// Advances one CPU cycle, appending responses that complete this cycle
    /// and are visible to cores (fake responses are filtered out by the
    /// shaping layers) to `out`. The buffer is caller-owned and reused
    /// across ticks; implementations append and never clear it.
    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>);

    /// Convenience wrapper over [`tick_into`](Self::tick_into) returning a
    /// fresh `Vec`. Tests and one-shot harnesses use this; the system hot
    /// loop uses `tick_into` with a reusable buffer.
    fn tick(&mut self, now: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// The earliest cycle `t >= now` at which a tick of this subsystem could
    /// change its state or produce a response, assuming no new requests are
    /// sent to it in the meantime. `None` means the subsystem is fully
    /// passive: it wakes only on external input. The default `Some(now)`
    /// ("always active") is conservative and disables cycle skipping for
    /// implementations that do not opt in.
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Aggregate statistics.
    fn stats(&self) -> &MemStats;

    /// Mutable statistics access (used to finalize measurement windows).
    fn stats_mut(&mut self) -> &mut MemStats;

    /// Re-derives any cached aggregate statistics from nested components.
    /// Multi-channel assemblies keep a merged [`MemStats`] view that goes
    /// stale as channels tick; callers that read [`stats`](Self::stats)
    /// mid-run (e.g. interval samplers) refresh first. Single-path
    /// subsystems have nothing cached and ignore it.
    fn refresh_stats(&mut self) {}

    /// Free request slots at the acceptance boundary (for flow control).
    fn free_slots(&self) -> usize;

    /// Installs an observability tracer. Implementations that emit trace
    /// events store the handle (and forward it to nested components); the
    /// default ignores it.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Conformance reports of any shapers nested in this subsystem, for the
    /// end-of-run [`dg_obs::RunReport`]. Unshaped subsystems return none.
    fn shaper_reports(&self) -> Vec<ShaperReport> {
        Vec::new()
    }

    /// Who-delayed-whom contention attribution, when this subsystem drives
    /// a stall-attributing controller. Fixed-schedule defenses without a
    /// shared command scheduler return `None`.
    fn interference(&self) -> Option<InterferenceReport> {
        None
    }

    /// Enables windowed telemetry on any nested shapers; the default (and
    /// shaperless subsystems) ignore it.
    fn enable_shaper_timelines(&mut self, _window: Cycle) {}

    /// Windowed shaper telemetry, empty unless
    /// [`enable_shaper_timelines`](Self::enable_shaper_timelines) was called
    /// on a subsystem with timeline-capable shapers.
    fn shaper_timelines(&self) -> Vec<ShaperTimelineReport> {
        Vec::new()
    }
}

/// A per-security-domain request shaper: the proxy agent of §4 that sits
/// between the LLC and the memory controller's transaction queue.
///
/// `dagguise::Shaper` and `dg_defenses::CamouflageShaper` implement this;
/// unprotected domains use [`PassThrough`].
pub trait DomainShaper: Send {
    /// The security domain this shaper serves.
    fn domain(&self) -> DomainId;

    /// Offers a core request to the shaper's private queue.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the private queue is full (the core must
    /// stall — this back-pressure is invisible to other domains).
    fn try_accept(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest>;

    /// Advances one CPU cycle, appending at most `space` requests bound for
    /// the global transaction queue to `out`. The buffer is caller-owned
    /// and reused across ticks; implementations append and never clear it.
    fn tick_into(&mut self, now: Cycle, space: usize, out: &mut Vec<MemRequest>);

    /// Convenience wrapper over [`tick_into`](Self::tick_into) returning a
    /// fresh `Vec`; the hot path uses `tick_into` with a reusable buffer.
    fn tick(&mut self, now: Cycle, space: usize) -> Vec<MemRequest> {
        let mut out = Vec::new();
        self.tick_into(now, space, &mut out);
        out
    }

    /// The earliest cycle `t >= now` at which this shaper could emit a
    /// request or otherwise change state, absent new accepts/responses.
    /// `None` means the shaper wakes only on external input. The default
    /// `Some(now)` is conservative and disables cycle skipping.
    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Observes a completed transaction belonging to this domain. Returns
    /// the response to forward to the core (`None` for fake requests, whose
    /// responses the shaper consumes).
    fn on_response(&mut self, resp: &MemResponse, now: Cycle) -> Option<MemResponse>;

    /// Requests currently buffered (diagnostics / drain detection).
    fn pending(&self) -> usize;

    /// Installs an observability tracer; the default ignores it.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Conformance report for the end-of-run [`dg_obs::RunReport`];
    /// shapers without interesting statistics return `None`.
    fn report(&self) -> Option<ShaperReport> {
        None
    }

    /// Enables windowed emission telemetry; shapers without a timeline
    /// (like [`PassThrough`]) ignore it.
    fn enable_timeline(&mut self, _window: Cycle) {}

    /// The recorded emission timeline, if enabled and supported.
    fn timeline(&self) -> Option<ShaperTimelineReport> {
        None
    }
}

/// The trivial shaper for unprotected domains: a small FIFO that forwards
/// requests verbatim as transaction-queue space allows.
#[derive(Debug)]
pub struct PassThrough {
    domain: DomainId,
    queue: VecDeque<MemRequest>,
    capacity: usize,
}

impl PassThrough {
    /// Creates a pass-through front for `domain` with an internal buffer of
    /// `capacity` requests.
    pub fn new(domain: DomainId, capacity: usize) -> Self {
        Self {
            domain,
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }
}

impl DomainShaper for PassThrough {
    fn domain(&self) -> DomainId {
        self.domain
    }

    fn try_accept(&mut self, req: MemRequest, _now: Cycle) -> Result<(), MemRequest> {
        if self.queue.len() >= self.capacity {
            return Err(req);
        }
        self.queue.push_back(req);
        Ok(())
    }

    fn tick_into(&mut self, _now: Cycle, space: usize, out: &mut Vec<MemRequest>) {
        let n = space.min(self.queue.len());
        out.extend(self.queue.drain(..n));
    }

    fn on_response(&mut self, resp: &MemResponse, _now: Cycle) -> Option<MemResponse> {
        Some(*resp)
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // A pass-through only acts while it holds buffered requests.
        if self.queue.is_empty() {
            None
        } else {
            Some(now)
        }
    }
}

/// A memory subsystem whose domains each pass through a [`DomainShaper`]
/// before reaching the shared controller — the deployment shape of
/// Figure 3/8.
pub struct ShapedMemory<M: MemorySubsystem> {
    inner: M,
    shapers: Vec<Box<dyn DomainShaper>>,
    /// Reusable per-tick buffer for controller completions (zero-alloc path).
    completions: Vec<MemResponse>,
    /// Reusable per-tick buffer for shaper emissions (zero-alloc path).
    emissions: Vec<MemRequest>,
}

impl<M: MemorySubsystem> ShapedMemory<M> {
    /// Wraps `inner` with one shaper per domain, indexed by
    /// [`DomainId`]`(i)`. Every domain that can send traffic must have an
    /// entry.
    pub fn new(inner: M, shapers: Vec<Box<dyn DomainShaper>>) -> Self {
        for (i, s) in shapers.iter().enumerate() {
            assert_eq!(
                s.domain(),
                DomainId(i as u16),
                "shaper {i} must serve domain {i}"
            );
        }
        Self {
            inner,
            shapers,
            completions: Vec::new(),
            emissions: Vec::new(),
        }
    }

    /// The wrapped subsystem (for inspection in tests/harnesses).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Requests buffered across all shapers.
    pub fn pending(&self) -> usize {
        self.shapers.iter().map(|s| s.pending()).sum()
    }
}

impl<M: MemorySubsystem> std::fmt::Debug for ShapedMemory<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShapedMemory")
            .field("shapers", &self.shapers.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl<M: MemorySubsystem> MemorySubsystem for ShapedMemory<M> {
    fn try_send(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        let idx = req.domain.0 as usize;
        assert!(
            idx < self.shapers.len(),
            "no shaper for domain {}",
            req.domain
        );
        self.shapers[idx].try_accept(req, now)
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        // 1. Advance the controller and route completions back through the
        //    owning shapers; only real responses escape to the cores.
        let mut completions = std::mem::take(&mut self.completions);
        completions.clear();
        self.inner.tick_into(now, &mut completions);
        for resp in completions.drain(..) {
            let idx = resp.domain.0 as usize;
            if idx < self.shapers.len() {
                if let Some(r) = self.shapers[idx].on_response(&resp, now) {
                    out.push(r);
                }
            } else {
                out.push(resp);
            }
        }
        self.completions = completions;
        // 2. Let each shaper emit into the transaction queue as space allows.
        //    Fixed iteration order keeps the simulation deterministic.
        let _prof = dg_prof::span("shaper");
        let mut emissions = std::mem::take(&mut self.emissions);
        for s in &mut self.shapers {
            let space = self.inner.free_slots();
            if space == 0 {
                break;
            }
            emissions.clear();
            s.tick_into(now, space, &mut emissions);
            for req in emissions.drain(..) {
                // Shapers are told the available space, so this must fit.
                self.inner
                    .try_send(req, now)
                    .expect("shaper exceeded advertised space");
            }
        }
        self.emissions = emissions;
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        // The assembly acts whenever the controller acts (completions feed
        // shaper executors the same cycle) or any shaper wants to emit.
        let mut ev = self.inner.next_event_at(now);
        for s in &self.shapers {
            ev = dg_sim::clock::earliest_event(ev, s.next_event_at(now));
        }
        ev
    }

    fn stats(&self) -> &MemStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        self.inner.stats_mut()
    }

    fn refresh_stats(&mut self) {
        self.inner.refresh_stats();
    }

    fn free_slots(&self) -> usize {
        // Acceptance is bounded by the shapers' private queues, not the
        // global transaction queue; report a conservative view.
        self.shapers
            .iter()
            .map(|s| s.pending())
            .min()
            .map_or(0, |_| usize::MAX)
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer.clone());
        for s in &mut self.shapers {
            s.set_tracer(tracer.clone());
        }
    }

    fn shaper_reports(&self) -> Vec<ShaperReport> {
        self.shapers.iter().filter_map(|s| s.report()).collect()
    }

    fn interference(&self) -> Option<InterferenceReport> {
        self.inner.interference()
    }

    fn enable_shaper_timelines(&mut self, window: Cycle) {
        for s in &mut self.shapers {
            s.enable_timeline(window);
        }
    }

    fn shaper_timelines(&self) -> Vec<ShaperTimelineReport> {
        self.shapers.iter().filter_map(|s| s.timeline()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{MemoryController, SchedPolicy};
    use dg_sim::config::SystemConfig;
    use dg_sim::types::{ReqId, ReqKind, ReqType};

    fn mk_req(domain: u16, addr: u64, id: u64) -> MemRequest {
        MemRequest::read(DomainId(domain), addr, 0).with_id(ReqId(id))
    }

    #[test]
    fn pass_through_preserves_order_and_backpressure() {
        let mut p = PassThrough::new(DomainId(0), 2);
        p.try_accept(mk_req(0, 0x0, 1), 0).unwrap();
        p.try_accept(mk_req(0, 0x40, 2), 0).unwrap();
        assert!(p.try_accept(mk_req(0, 0x80, 3), 0).is_err());
        assert_eq!(p.pending(), 2);
        let out = p.tick(0, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, ReqId(1));
        let out = p.tick(1, 8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, ReqId(2));
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn pass_through_forwards_responses() {
        let mut p = PassThrough::new(DomainId(0), 2);
        let resp = MemResponse {
            id: ReqId(1),
            domain: DomainId(0),
            addr: 0,
            req_type: ReqType::Read,
            kind: ReqKind::Real,
            arrived_at: 0,
            completed_at: 10,
        };
        assert_eq!(p.on_response(&resp, 10), Some(resp));
    }

    #[test]
    fn shaped_memory_round_trips_requests() {
        let cfg = SystemConfig::two_core();
        let mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
        let shapers: Vec<Box<dyn DomainShaper>> = vec![
            Box::new(PassThrough::new(DomainId(0), 8)),
            Box::new(PassThrough::new(DomainId(1), 8)),
        ];
        let mut mem = ShapedMemory::new(mc, shapers);
        mem.try_send(mk_req(0, 0x40, 7), 0).unwrap();
        mem.try_send(mk_req(1, 0x80, 9), 0).unwrap();
        let mut got = Vec::new();
        for now in 0..100_000 {
            got.extend(mem.tick(now));
            if got.len() == 2 {
                break;
            }
        }
        let mut ids: Vec<u64> = got.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "must serve domain")]
    fn misindexed_shaper_rejected() {
        let cfg = SystemConfig::two_core();
        let mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
        let shapers: Vec<Box<dyn DomainShaper>> = vec![Box::new(PassThrough::new(DomainId(1), 8))];
        let _ = ShapedMemory::new(mc, shapers);
    }
}
