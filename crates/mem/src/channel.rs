//! Multi-channel memory: bit-sliced address interleaving across N
//! independent channels, each with its own controller (and its own defense
//! shaper instances — a per-channel DAGguise proxy, exactly as a
//! per-channel deployment of Figure 3 would be built).
//!
//! The interleaving granularity is one cache line: consecutive lines land
//! on consecutive channels, so any dense stream spreads evenly. The
//! channel-selection bits sit directly above the line-offset bits
//! (bit-sliced mapping):
//!
//! ```text
//! global:  | line number (upper)     | channel | line offset |
//! local:   | line number (upper)               | line offset |
//! ```
//!
//! Each channel's controller sees *local* addresses with the channel bits
//! removed, so its bank/row decode covers its own capacity slice densely.
//! [`ChannelMap`] is the pure address math; [`MultiChannelMemory`] is the
//! [`MemorySubsystem`] assembly used by the single-threaded `System`. The
//! sharded runtime (`dg-shard`) instead owns the channel list directly and
//! does the same remapping at shard boundaries.

use dg_obs::{InterferenceReport, ShaperReport, ShaperTimelineReport, Tracer};
use dg_sim::clock::{earliest_event, Cycle};
use dg_sim::types::{Addr, MemRequest, MemResponse};

use crate::front::MemorySubsystem;
use crate::stats::MemStats;

/// Bit-sliced line-interleaved address map over a power-of-two channel
/// count. With one channel every operation is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelMap {
    channels: u32,
    /// log2(line_bytes): the channel bits sit immediately above these.
    line_shift: u32,
    /// log2(channels).
    channel_bits: u32,
}

impl ChannelMap {
    /// Creates a map for `channels` channels at `line_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics unless both are nonzero powers of two: bit slicing needs
    /// exact field widths.
    pub fn new(channels: u32, line_bytes: u64) -> Self {
        assert!(
            channels.is_power_of_two(),
            "channel count must be a power of two, got {channels}"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        Self {
            channels,
            line_shift: line_bytes.trailing_zeros(),
            channel_bits: channels.trailing_zeros(),
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// The channel a global address maps to.
    pub fn channel_of(&self, addr: Addr) -> u32 {
        ((addr >> self.line_shift) as u32) & (self.channels - 1)
    }

    /// Rewrites a global address into the owning channel's local space
    /// (channel bits removed, line offset preserved).
    pub fn to_local(&self, addr: Addr) -> Addr {
        let offset = addr & ((1 << self.line_shift) - 1);
        let line = addr >> self.line_shift;
        ((line >> self.channel_bits) << self.line_shift) | offset
    }

    /// Re-encodes a channel-local address back into the global space.
    /// Inverse of [`to_local`](Self::to_local) for addresses on `channel`.
    pub fn to_global(&self, channel: u32, local: Addr) -> Addr {
        let offset = local & ((1 << self.line_shift) - 1);
        let line = local >> self.line_shift;
        (((line << self.channel_bits) | channel as u64) << self.line_shift) | offset
    }
}

/// N independent memory channels behind one [`MemorySubsystem`] facade.
///
/// Requests are routed by [`ChannelMap`] with their addresses rewritten to
/// channel-local form; completions are re-encoded to global addresses on
/// the way out, so cores and caches never observe the interleaving.
/// Channels tick in index order, which keeps the merged response stream
/// deterministic.
///
/// Aggregate statistics are a *cached merge* of the per-channel stats
/// (domain counters summed, banks concatenated channel-major); the cache
/// is re-derived by [`refresh_stats`](MemorySubsystem::refresh_stats) and
/// on every [`stats_mut`](MemorySubsystem::stats_mut) call, so the
/// end-of-run `set_cycles` finalization always operates on fresh numbers.
pub struct MultiChannelMemory {
    map: ChannelMap,
    lanes: Vec<Box<dyn MemorySubsystem>>,
    merged: MemStats,
    /// Reusable per-tick buffer for lane completions (zero-alloc path).
    completions: Vec<MemResponse>,
}

impl MultiChannelMemory {
    /// Assembles `lanes` (one per channel, index = channel id) behind
    /// `map`. All lanes must report stats over the same domain count and
    /// line size.
    ///
    /// # Panics
    ///
    /// Panics if the lane count does not match the map's channel count.
    pub fn new(lanes: Vec<Box<dyn MemorySubsystem>>, map: ChannelMap) -> Self {
        assert_eq!(
            lanes.len(),
            map.channels() as usize,
            "one lane per channel required"
        );
        let merged = MemStats::merged(&lanes.iter().map(|l| l.stats()).collect::<Vec<_>>());
        Self {
            map,
            lanes,
            merged,
            completions: Vec::new(),
        }
    }

    /// The address map (for tests and diagnostics).
    pub fn map(&self) -> ChannelMap {
        self.map
    }

    /// Per-channel lane access (diagnostics).
    pub fn lanes(&self) -> &[Box<dyn MemorySubsystem>] {
        &self.lanes
    }

    fn remerge(&mut self) {
        let cycles = self.merged.cycles;
        let mut merged =
            MemStats::merged(&self.lanes.iter().map(|l| l.stats()).collect::<Vec<_>>());
        merged.set_cycles(cycles);
        self.merged = merged;
    }
}

impl std::fmt::Debug for MultiChannelMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiChannelMemory")
            .field("channels", &self.lanes.len())
            .finish()
    }
}

impl MemorySubsystem for MultiChannelMemory {
    fn try_send(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        let ch = self.map.channel_of(req.addr);
        let mut local = req;
        local.addr = self.map.to_local(req.addr);
        // Hand the *global* request back on back-pressure so the caller's
        // retry path never observes local addresses.
        self.lanes[ch as usize]
            .try_send(local, now)
            .map_err(|_| req)
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        let mut completions = std::mem::take(&mut self.completions);
        for (ch, lane) in self.lanes.iter_mut().enumerate() {
            completions.clear();
            lane.tick_into(now, &mut completions);
            for mut resp in completions.drain(..) {
                resp.addr = self.map.to_global(ch as u32, resp.addr);
                out.push(resp);
            }
        }
        self.completions = completions;
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        self.lanes
            .iter()
            .fold(None, |ev, l| earliest_event(ev, l.next_event_at(now)))
    }

    fn stats(&self) -> &MemStats {
        &self.merged
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        self.remerge();
        &mut self.merged
    }

    fn refresh_stats(&mut self) {
        self.remerge();
    }

    fn free_slots(&self) -> usize {
        // Conservative: the tightest channel bounds what any single
        // address stream might be able to send.
        self.lanes.iter().map(|l| l.free_slots()).min().unwrap_or(0)
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        for lane in &mut self.lanes {
            lane.set_tracer(tracer.clone());
        }
    }

    fn shaper_reports(&self) -> Vec<ShaperReport> {
        // Channel-major concatenation mirrors the bank layout in the
        // merged stats.
        self.lanes.iter().flat_map(|l| l.shaper_reports()).collect()
    }

    fn interference(&self) -> Option<InterferenceReport> {
        merge_interference(self.lanes.iter().filter_map(|l| l.interference()))
    }

    fn enable_shaper_timelines(&mut self, window: Cycle) {
        for lane in &mut self.lanes {
            lane.enable_shaper_timelines(window);
        }
    }

    fn shaper_timelines(&self) -> Vec<ShaperTimelineReport> {
        self.lanes
            .iter()
            .flat_map(|l| l.shaper_timelines())
            .collect()
    }
}

/// Sums per-channel interference attributions cell-wise. All channels
/// attribute over the same domain set, so the matrices are congruent.
pub fn merge_interference(
    parts: impl IntoIterator<Item = InterferenceReport>,
) -> Option<InterferenceReport> {
    let mut merged: Option<InterferenceReport> = None;
    for part in parts {
        match &mut merged {
            None => merged = Some(part),
            Some(acc) => {
                assert_eq!(
                    acc.domains, part.domains,
                    "interference reports disagree on domain count"
                );
                acc.total_stall_cycles += part.total_stall_cycles;
                for (row, src) in acc.matrix.iter_mut().zip(&part.matrix) {
                    for (cell, v) in row.iter_mut().zip(src) {
                        *cell += v;
                    }
                }
                for (a, b) in acc.by_cause.iter_mut().zip(&part.by_cause) {
                    debug_assert_eq!(a.cause, b.cause);
                    a.cycles += b.cycles;
                }
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{MemoryController, SchedPolicy};
    use dg_sim::config::SystemConfig;
    use dg_sim::types::{DomainId, ReqId};
    use proptest::prelude::*;

    fn four_channel() -> MultiChannelMemory {
        let mut cfg = SystemConfig::two_core();
        cfg.dram_org.capacity_bytes /= 4;
        let lanes: Vec<Box<dyn MemorySubsystem>> = (0..4)
            .map(|_| {
                Box::new(MemoryController::new(&cfg, SchedPolicy::FrFcfs))
                    as Box<dyn MemorySubsystem>
            })
            .collect();
        MultiChannelMemory::new(lanes, ChannelMap::new(4, cfg.dram_org.line_bytes))
    }

    #[test]
    fn single_channel_map_is_identity() {
        let map = ChannelMap::new(1, 64);
        for addr in [0u64, 63, 64, 0xdead_beef, u64::MAX >> 1] {
            assert_eq!(map.channel_of(addr), 0);
            assert_eq!(map.to_local(addr), addr);
            assert_eq!(map.to_global(0, addr), addr);
        }
    }

    #[test]
    fn consecutive_lines_rotate_channels() {
        let map = ChannelMap::new(4, 64);
        let channels: Vec<u32> = (0..8).map(|i| map.channel_of(i * 64)).collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Same line, any offset: same channel.
        assert_eq!(map.channel_of(0x40), map.channel_of(0x7f));
    }

    #[test]
    fn local_addresses_are_dense_per_channel() {
        // Lines 0,4,8,... all map to channel 0 and must occupy consecutive
        // local lines, so the channel's bank decode sees a dense space.
        let map = ChannelMap::new(4, 64);
        for i in 0..16u64 {
            assert_eq!(map.to_local(i * 4 * 64), i * 64);
        }
    }

    proptest! {
        #[test]
        fn round_trip_addr_channel_local_addr(
            addr in any::<u64>(),
            channels_log2 in 0u32..6,
            line_log2 in 4u32..8,
        ) {
            let map = ChannelMap::new(1 << channels_log2, 1 << line_log2);
            let ch = map.channel_of(addr);
            prop_assert!(ch < map.channels());
            let local = map.to_local(addr);
            prop_assert_eq!(map.to_global(ch, local), addr);
        }
    }

    #[test]
    fn uniform_stream_balances_channels() {
        // A dense sweep and a strided xorshift stream must both spread
        // within a few percent of N/channels per channel.
        let map = ChannelMap::new(8, 64);
        let mut counts = [0u64; 8];
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..80_000u64 {
            counts[map.channel_of(i * 64) as usize] += 1;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            counts[map.channel_of(x) as usize] += 1;
        }
        let total: u64 = counts.iter().sum();
        let expect = total as f64 / 8.0;
        for (ch, &c) in counts.iter().enumerate() {
            let skew = (c as f64 - expect).abs() / expect;
            assert!(
                skew < 0.02,
                "channel {ch} got {c} of {total} ({skew:.3} skew)"
            );
        }
    }

    #[test]
    fn responses_come_back_with_global_addresses() {
        let mut mem = four_channel();
        // One request per channel: addresses on consecutive lines.
        for i in 0..4u64 {
            let req =
                MemRequest::read(DomainId(0), i * 64, 0).with_id(ReqId::compose(DomainId(0), i));
            mem.try_send(req, 0).unwrap();
        }
        let mut got = Vec::new();
        for now in 0..100_000 {
            mem.tick_into(now, &mut got);
            if got.len() == 4 {
                break;
            }
        }
        let mut addrs: Vec<u64> = got.iter().map(|r| r.addr).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 64, 128, 192]);
    }

    #[test]
    fn merged_stats_sum_channels() {
        let mut mem = four_channel();
        for i in 0..8u64 {
            let req =
                MemRequest::read(DomainId(0), i * 64, 0).with_id(ReqId::compose(DomainId(0), i));
            mem.try_send(req, 0).unwrap();
        }
        let mut got = Vec::new();
        let mut now = 0;
        while got.len() < 8 && now < 100_000 {
            mem.tick_into(now, &mut got);
            now += 1;
        }
        assert_eq!(got.len(), 8);
        mem.stats_mut().set_cycles(now);
        let stats = mem.stats();
        assert_eq!(stats.domain(DomainId(0)).reads, 8);
        assert_eq!(stats.cycles, now);
        // 4 channels x 8 banks, concatenated channel-major.
        assert_eq!(stats.banks.len(), 32);
        assert!(stats.energy.real_reads == 8);
    }

    #[test]
    fn backpressure_returns_global_address() {
        let mut mem = four_channel();
        // Saturate channel 0 (line stride of 4 keeps everything on it).
        let mut rejected = None;
        for i in 0..1_000u64 {
            let req = MemRequest::read(DomainId(0), i * 4 * 64, 0)
                .with_id(ReqId::compose(DomainId(0), i));
            if let Err(back) = mem.try_send(req, 0) {
                rejected = Some((req, back));
                break;
            }
        }
        let (sent, back) = rejected.expect("channel 0 must eventually push back");
        assert_eq!(back.addr, sent.addr);
    }
}
