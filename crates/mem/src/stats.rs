//! Per-domain memory statistics.

use dg_dram::power::EnergyCounter;
use dg_prof::LogHistogram;
use dg_sim::clock::Cycle;
use dg_sim::stats::{BandwidthMeter, Histogram};
use dg_sim::types::{DomainId, MemResponse};
use serde::{Deserialize, Serialize};

/// Statistics for one security domain's memory traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainStats {
    /// Completed real read transactions.
    pub reads: u64,
    /// Completed real write transactions.
    pub writes: u64,
    /// Completed fake (shaper-fabricated) transactions.
    pub fakes: u64,
    /// Bandwidth consumed (real + fake; fake requests occupy the bus).
    pub bandwidth: BandwidthMeter,
    /// Latency histogram of real transactions (arrival → completion).
    pub latency: Histogram,
    /// HDR (log-bucketed) latency histogram of real transactions: unlike
    /// `latency`, it covers the full `u64` range and yields p50/p99/p999
    /// with a bounded 3.125% relative error.
    pub latency_hdr: LogHistogram,
    /// Sum of real-transaction latencies, for mean computation.
    pub latency_sum: Cycle,
}

impl DomainStats {
    /// Creates zeroed statistics. Latency buckets are 10 CPU cycles wide,
    /// covering up to 10k cycles.
    pub fn new() -> Self {
        Self {
            reads: 0,
            writes: 0,
            fakes: 0,
            bandwidth: BandwidthMeter::new(),
            latency: Histogram::new(10, 1000),
            latency_hdr: LogHistogram::new(),
            latency_sum: 0,
        }
    }

    /// Total completed transactions including fakes.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.fakes
    }

    /// Mean latency of real transactions, or `None` when there are none.
    pub fn mean_latency(&self) -> Option<f64> {
        let n = self.reads + self.writes;
        (n > 0).then(|| self.latency_sum as f64 / n as f64)
    }

    /// Merges another domain's counters into this one. Associative and
    /// commutative, so per-channel and per-shard fragments can be combined
    /// in any grouping. Bandwidth windows (`set_cycles`) are the caller's
    /// responsibility: channels cover the same wall-clock window, so the
    /// merged meter keeps this side's window until it is re-finalized.
    pub fn merge(&mut self, other: &DomainStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.fakes += other.fakes;
        self.bandwidth.transfer(other.bandwidth.bytes());
        self.latency.merge(&other.latency);
        self.latency_hdr.merge(&other.latency_hdr);
        self.latency_sum += other.latency_sum;
    }

    /// Records a completed transaction.
    pub fn record(&mut self, resp: &MemResponse, line_bytes: u64) {
        self.bandwidth.transfer(line_bytes);
        if resp.kind.is_fake() {
            self.fakes += 1;
        } else {
            if resp.req_type.is_write() {
                self.writes += 1;
            } else {
                self.reads += 1;
            }
            self.latency.record(resp.latency());
            self.latency_hdr.record(resp.latency());
            self.latency_sum += resp.latency();
        }
    }
}

impl Default for DomainStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-bank activity counters maintained by the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// ACT commands issued to the bank.
    pub acts: u64,
    /// Column accesses served from a row opened before the transaction
    /// arrived (row-buffer hits).
    pub row_hits: u64,
    /// Column accesses that needed their own activation first.
    pub row_misses: u64,
    /// Precharge operations (explicit PRE plus auto-precharge).
    pub precharges: u64,
    /// Cycles an ACT to this bank was held by the tFAW four-activate window.
    pub faw_stall_cycles: u64,
}

/// Statistics for the whole memory subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemStats {
    per_domain: Vec<DomainStats>,
    /// Per-bank activity counters (empty for memory paths without a bank
    /// model, e.g. fixed-latency defenses).
    pub banks: Vec<BankStats>,
    /// Total DRAM refresh operations observed.
    pub refreshes: u64,
    /// Cycles the measurement covers (set by the owner at the end of a run).
    pub cycles: Cycle,
    /// DRAM energy accounting (real vs fake traffic, §4.4).
    pub energy: EnergyCounter,
    /// Responses whose domain id exceeded the configured domain count and
    /// were therefore not attributed to any [`DomainStats`]. A non-zero
    /// value in a run report flags a misconfigured domain count.
    pub dropped: u64,
    line_bytes: u64,
}

impl MemStats {
    /// Creates statistics for `domains` security domains.
    pub fn new(domains: usize, line_bytes: u64) -> Self {
        Self {
            per_domain: (0..domains).map(|_| DomainStats::new()).collect(),
            banks: Vec::new(),
            refreshes: 0,
            cycles: 0,
            energy: EnergyCounter::new(),
            dropped: 0,
            line_bytes,
        }
    }

    /// Records a completed transaction against its domain. Domains beyond
    /// the configured count are not attributed (defensive: shapers may use
    /// reserved ids) but are counted in [`MemStats::dropped`] so they
    /// cannot vanish silently.
    pub fn record(&mut self, resp: &MemResponse) {
        self.energy
            .record_access(resp.req_type.is_write(), resp.kind.is_fake());
        if let Some(d) = self.per_domain.get_mut(resp.domain.0 as usize) {
            d.record(resp, self.line_bytes);
        } else {
            self.dropped += 1;
        }
    }

    /// Per-domain view.
    pub fn domain(&self, d: DomainId) -> &DomainStats {
        &self.per_domain[d.0 as usize]
    }

    /// All domains.
    pub fn domains(&self) -> &[DomainStats] {
        &self.per_domain
    }

    /// Finalizes the measurement window so bandwidth rates are meaningful.
    pub fn set_cycles(&mut self, cycles: Cycle) {
        self.cycles = cycles;
        self.energy.set_cycles(cycles);
        for d in &mut self.per_domain {
            d.bandwidth.set_cycles(cycles);
        }
    }

    /// Line size the statistics were created with.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Merges the statistics of several parallel memory channels into one
    /// subsystem-level view. Domain counters are summed element-wise, bank
    /// counters are concatenated channel-major (channel 0's banks first),
    /// and energy activity is summed. The merged measurement window is
    /// zero until the caller finalizes it with [`MemStats::set_cycles`]:
    /// channels run over the *same* cycles, so windows must not be summed.
    ///
    /// The fold is associative: `merged(&[a, b, c])` equals merging
    /// `merged(&[a, b])` with `c`, which is what lets per-shard report
    /// fragments combine in any grouping.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the parts disagree on domain count or
    /// line size.
    pub fn merged(parts: &[&MemStats]) -> MemStats {
        let first = parts.first().expect("merged needs at least one part");
        let mut out = MemStats::new(first.per_domain.len(), first.line_bytes);
        for p in parts {
            assert_eq!(
                p.per_domain.len(),
                out.per_domain.len(),
                "channel stats disagree on domain count"
            );
            assert_eq!(
                p.line_bytes, out.line_bytes,
                "channel stats disagree on line size"
            );
            for (d, src) in out.per_domain.iter_mut().zip(&p.per_domain) {
                d.merge(src);
            }
            out.banks.extend(p.banks.iter().copied());
            out.refreshes += p.refreshes;
            out.energy.merge(&p.energy);
            out.dropped += p.dropped;
        }
        out
    }

    /// Aggregate bandwidth across all domains in bytes/cycle.
    pub fn total_bytes_per_cycle(&self) -> f64 {
        self.per_domain
            .iter()
            .map(|d| d.bandwidth.bytes_per_cycle())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{ReqId, ReqKind, ReqType};

    fn resp(domain: u16, kind: ReqKind, req_type: ReqType, lat: Cycle) -> MemResponse {
        MemResponse {
            id: ReqId(0),
            domain: DomainId(domain),
            addr: 0,
            req_type,
            kind,
            arrived_at: 100,
            completed_at: 100 + lat,
        }
    }

    #[test]
    fn records_by_kind_and_type() {
        let mut s = MemStats::new(2, 64);
        s.record(&resp(0, ReqKind::Real, ReqType::Read, 50));
        s.record(&resp(0, ReqKind::Real, ReqType::Write, 70));
        s.record(&resp(0, ReqKind::Fake, ReqType::Read, 10));
        s.record(&resp(1, ReqKind::Real, ReqType::Read, 30));

        let d0 = s.domain(DomainId(0));
        assert_eq!(d0.reads, 1);
        assert_eq!(d0.writes, 1);
        assert_eq!(d0.fakes, 1);
        assert_eq!(d0.total(), 3);
        assert_eq!(d0.mean_latency(), Some(60.0));

        let d1 = s.domain(DomainId(1));
        assert_eq!(d1.reads, 1);
        assert_eq!(d1.fakes, 0);
    }

    #[test]
    fn fake_traffic_counts_toward_bandwidth_only() {
        let mut s = MemStats::new(1, 64);
        s.record(&resp(0, ReqKind::Fake, ReqType::Read, 10));
        s.set_cycles(64);
        let d = s.domain(DomainId(0));
        assert_eq!(d.mean_latency(), None);
        assert!((d.bandwidth.bytes_per_cycle() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_domain_counted_as_dropped() {
        let mut s = MemStats::new(1, 64);
        s.record(&resp(9, ReqKind::Real, ReqType::Read, 10));
        assert_eq!(s.domain(DomainId(0)).total(), 0);
        assert_eq!(s.dropped, 1);
        s.record(&resp(0, ReqKind::Real, ReqType::Read, 10));
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn total_bandwidth_sums_domains() {
        let mut s = MemStats::new(2, 64);
        s.record(&resp(0, ReqKind::Real, ReqType::Read, 10));
        s.record(&resp(1, ReqKind::Real, ReqType::Read, 10));
        s.set_cycles(128);
        assert!((s.total_bytes_per_cycle() - 1.0).abs() < 1e-12);
    }
}
