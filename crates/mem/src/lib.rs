//! The shared memory controller and its front-end plug-in point.
//!
//! This crate models the controller structure of §2.1: a global
//! *transaction queue*, per-bank *command queues* (implicit in the
//! scheduler's per-bank view), and a command scheduler (FCFS or FR-FCFS,
//! open- or closed-row) driving the [`dg_dram::DramDevice`].
//!
//! Defense mechanisms attach in two ways, mirroring the paper:
//!
//! * **Per-domain request shapers** ([`DomainShaper`]) sit between the LLC
//!   and the transaction queue (Figure 3). DAGguise and Camouflage are
//!   shapers; unprotected domains use [`PassThrough`]. The
//!   [`ShapedMemory`] assembly routes requests through the right shaper.
//! * **Whole-controller schedules** (Fixed Service, FS-BTA, Temporal
//!   Partitioning) replace the controller entirely; they implement
//!   [`MemorySubsystem`] directly in `dg-defenses`.
//!
//! # Example
//!
//! ```
//! use dg_mem::{MemoryController, MemorySubsystem, SchedPolicy};
//! use dg_sim::config::SystemConfig;
//! use dg_sim::types::{DomainId, MemRequest, ReqId};
//!
//! let cfg = SystemConfig::two_core();
//! let mut mc = MemoryController::new(&cfg, SchedPolicy::FrFcfs);
//! let req = MemRequest::read(DomainId(0), 0x40, 0).with_id(ReqId::compose(DomainId(0), 1));
//! mc.try_send(req, 0).unwrap();
//! let mut done = Vec::new();
//! let mut now = 0;
//! while done.is_empty() {
//!     done = mc.tick(now);
//!     now += 1;
//! }
//! assert_eq!(done[0].id, req.id);
//! ```

pub mod channel;
pub mod controller;
pub mod front;
pub mod stats;

pub use channel::{merge_interference, ChannelMap, MultiChannelMemory};
pub use controller::{MemoryController, SchedPolicy};
pub use front::{DomainShaper, MemorySubsystem, PassThrough, ShapedMemory};
pub use stats::{BankStats, DomainStats, MemStats};
