//! The memory controller proper: transaction queue + command scheduler.

use std::collections::VecDeque;

use dg_dram::{AddressMapper, BlockReason, DramCommand, DramDevice, MapScheme, PhysLoc};
use dg_obs::{BankCmd, EventKind, InterferenceMatrix, InterferenceReport, StallCause, Tracer};
use dg_sim::clock::Cycle;
use dg_sim::config::{RowPolicy, SystemConfig};
use dg_sim::types::{DomainId, MemRequest, MemResponse};
use serde::{Deserialize, Serialize};

use crate::front::MemorySubsystem;
use crate::stats::{BankStats, MemStats};

/// DRAM command scheduling policy (§2.1: "command scheduling can vary in
/// complexity, ranging from a basic First Come First Served (FCFS) policy,
/// to policies that optimize for row-buffer hits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Strictly serve the oldest transaction; no reordering.
    Fcfs,
    /// First-Ready FCFS: row hits first, then oldest.
    FrFcfs,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    /// Waiting for its column access (may still need ACT/PRE first).
    Pending,
    /// Column command issued; data completes at `done`.
    Issued { done: Cycle },
}

#[derive(Debug, Clone)]
struct Txn {
    req: MemRequest,
    loc: PhysLoc,
    arrived: Cycle,
    state: TxnState,
}

/// Who last touched each shared DRAM resource, so a blocked command's wait
/// can be charged to the domain that made the resource busy.
///
/// Purely observational: updated only when the scheduler issues a command
/// anyway, and read by [`MemoryController::attribute_stalls`]. It never
/// feeds back into scheduling decisions, so attribution cannot perturb the
/// simulation (the observer-effect contract of `dg_obs::leak`).
#[derive(Debug)]
struct LeakTrack {
    matrix: InterferenceMatrix,
    /// Domain whose command last engaged each bank (`None` for
    /// refresh-driven commands with no owner).
    bank_user: Vec<Option<DomainId>>,
    /// Domain of the last column command (owns the data bus / turnaround).
    col_user: Option<DomainId>,
    /// Domain of the last command on the shared command bus.
    cmd_user: Option<DomainId>,
    /// Domains of up to the last four ACTs (tRRD/tFAW window), oldest first.
    act_users: VecDeque<Option<DomainId>>,
    /// Set when a command issued on the current bus edge: the arbitration
    /// winner other pending transactions lost to. `None` between edges.
    issued_this_edge: Option<Option<DomainId>>,
}

impl LeakTrack {
    fn new(domains: usize, banks: usize) -> Self {
        Self {
            matrix: InterferenceMatrix::new(domains),
            bank_user: vec![None; banks],
            col_user: None,
            cmd_user: None,
            act_users: VecDeque::with_capacity(4),
            issued_this_edge: None,
        }
    }
}

/// The shared memory controller: a global transaction queue feeding a
/// command scheduler that drives the DRAM device.
///
/// One DRAM command may issue per command-bus edge. Refresh takes priority
/// when due: open banks are drained and precharged, then a rank-wide REF is
/// issued.
#[derive(Debug)]
pub struct MemoryController {
    device: DramDevice,
    mapper: AddressMapper,
    row_policy: RowPolicy,
    policy: SchedPolicy,
    txq: VecDeque<Txn>,
    capacity: usize,
    stats: MemStats,
    refresh_pending: bool,
    tracer: Tracer,
    /// Cycle each bank's current row was opened (for row-hit accounting);
    /// `None` while precharged.
    bank_open_since: Vec<Option<Cycle>>,
    leak: LeakTrack,
}

impl MemoryController {
    /// Builds a controller for the given system configuration.
    pub fn new(cfg: &SystemConfig, policy: SchedPolicy) -> Self {
        let device = DramDevice::new(cfg.dram_org, cfg.timing, cfg.clock_ratio);
        let mapper = AddressMapper::new(
            MapScheme::BankInterleaved,
            cfg.dram_org.banks,
            cfg.dram_org.row_bytes,
            cfg.dram_org.line_bytes,
        );
        // Reserve a couple of extra stats slots for shaper-internal domains.
        let domains = cfg.cores + 2;
        let banks = cfg.dram_org.banks as usize;
        let mut stats = MemStats::new(domains, cfg.dram_org.line_bytes);
        stats.banks = vec![BankStats::default(); banks];
        Self {
            device,
            mapper,
            row_policy: cfg.row_policy,
            policy,
            txq: VecDeque::with_capacity(cfg.queues.transaction_queue),
            capacity: cfg.queues.transaction_queue,
            stats,
            refresh_pending: false,
            tracer: Tracer::noop(),
            bank_open_since: vec![None; banks],
            leak: LeakTrack::new(domains, banks),
        }
    }

    /// Records a command-bus event when tracing is enabled.
    fn trace_cmd(&self, cmd: DramCommand, now: Cycle) {
        self.tracer.record(now, || match cmd {
            DramCommand::Activate { bank, .. } => EventKind::BankCommand {
                cmd: BankCmd::Act,
                bank,
            },
            DramCommand::Read { bank, .. } => EventKind::BankCommand {
                cmd: BankCmd::Rd,
                bank,
            },
            DramCommand::Write { bank, .. } => EventKind::BankCommand {
                cmd: BankCmd::Wr,
                bank,
            },
            DramCommand::Precharge { bank } => EventKind::BankCommand {
                cmd: BankCmd::Pre,
                bank,
            },
            DramCommand::Refresh => EventKind::BankCommand {
                cmd: BankCmd::Ref,
                bank: 0,
            },
        });
    }

    /// Bookkeeping for every issued command: trace event, per-bank activity
    /// counters, row-open state, and the resource-ownership trail used by
    /// stall attribution. `domain` is the owner of the transaction the
    /// command serves (`None` for refresh-driven maintenance commands).
    fn note_cmd(&mut self, cmd: DramCommand, now: Cycle, domain: Option<DomainId>) {
        self.trace_cmd(cmd, now);
        self.leak.cmd_user = domain;
        self.leak.issued_this_edge = Some(domain);
        match cmd {
            DramCommand::Activate { bank, .. } => {
                let b = bank as usize;
                self.stats.banks[b].acts += 1;
                self.bank_open_since[b] = Some(now);
                self.leak.bank_user[b] = domain;
                if self.leak.act_users.len() == 4 {
                    self.leak.act_users.pop_front();
                }
                self.leak.act_users.push_back(domain);
            }
            DramCommand::Read {
                bank,
                auto_precharge,
            }
            | DramCommand::Write {
                bank,
                auto_precharge,
            } => {
                let b = bank as usize;
                self.leak.col_user = domain;
                self.leak.bank_user[b] = domain;
                if auto_precharge {
                    self.stats.banks[b].precharges += 1;
                    self.bank_open_since[b] = None;
                }
            }
            DramCommand::Precharge { bank } => {
                let b = bank as usize;
                self.stats.banks[b].precharges += 1;
                self.bank_open_since[b] = None;
                self.leak.bank_user[b] = domain;
            }
            DramCommand::Refresh => {
                for open in &mut self.bank_open_since {
                    *open = None;
                }
            }
        }
    }

    /// The interference matrix accumulated so far.
    pub fn interference_report(&self) -> InterferenceReport {
        self.leak.matrix.report()
    }

    /// The address mapper in use (attackers and shapers need it to target
    /// specific banks).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Free entries in the transaction queue.
    pub fn free_space(&self) -> usize {
        self.capacity - self.txq.len()
    }

    /// Current transaction queue occupancy.
    pub fn occupancy(&self) -> usize {
        self.txq.len()
    }

    /// The row-buffer policy this controller runs.
    pub fn row_policy(&self) -> RowPolicy {
        self.row_policy
    }

    fn auto_precharge(&self) -> bool {
        self.row_policy == RowPolicy::Closed
    }

    /// Attempts to issue one DRAM command at `now` (must be a bus edge).
    fn schedule(&mut self, now: Cycle) {
        // Refresh has priority: drain open banks, then REF.
        if self.device.refresh_due(now) {
            self.refresh_pending = true;
        }
        if self.refresh_pending && self.try_refresh(now) {
            return;
        }

        match self.policy {
            SchedPolicy::Fcfs => self.schedule_fcfs(now),
            SchedPolicy::FrFcfs => self.schedule_frfcfs(now),
        }
    }

    /// Returns true if a refresh-related command was issued (or refresh
    /// still blocks normal scheduling this edge).
    fn try_refresh(&mut self, now: Cycle) -> bool {
        // Precharge any open bank whose precharge is legal.
        for b in 0..self.device.bank_count() {
            if self.device.bank(b).open_row().is_some() {
                let cmd = DramCommand::Precharge { bank: b };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.note_cmd(cmd, now, None);
                    return true;
                }
            }
        }
        if !self.device.all_banks_idle() {
            // Waiting for in-progress accesses / precharges to become legal;
            // block column/act scheduling so we make forward progress.
            return true;
        }
        let cmd = DramCommand::Refresh;
        if self.device.earliest(cmd, now) == now {
            self.device.issue(cmd, now);
            self.note_cmd(cmd, now, None);
            self.refresh_pending = false;
            self.stats.refreshes = self.device.refreshes();
            self.stats.energy.record_refresh();
            return true;
        }
        true
    }

    fn column_cmd(&self, txn: &Txn) -> DramCommand {
        let auto_precharge = self.auto_precharge();
        if txn.req.req_type.is_write() {
            DramCommand::Write {
                bank: txn.loc.bank,
                auto_precharge,
            }
        } else {
            DramCommand::Read {
                bank: txn.loc.bank,
                auto_precharge,
            }
        }
    }

    fn issue_column(&mut self, idx: usize, now: Cycle) {
        let cmd = self.column_cmd(&self.txq[idx]);
        let txn = &self.txq[idx];
        let (bank, arrived, domain) = (txn.loc.bank as usize, txn.arrived, txn.req.domain);
        // A row hit means the row was already open when this transaction
        // arrived; otherwise the transaction paid for (at least) its own
        // activation. Classify before note_cmd clears auto-precharged rows.
        if self.bank_open_since[bank].is_some_and(|opened| opened < arrived) {
            self.stats.banks[bank].row_hits += 1;
        } else {
            self.stats.banks[bank].row_misses += 1;
        }
        let done = self
            .device
            .issue(cmd, now)
            .expect("column returns data time");
        self.note_cmd(cmd, now, Some(domain));
        self.txq[idx].state = TxnState::Issued { done };
    }

    fn schedule_fcfs(&mut self, now: Cycle) {
        // Serve only the oldest pending transaction.
        let Some(idx) = self
            .txq
            .iter()
            .position(|t| matches!(t.state, TxnState::Pending))
        else {
            return;
        };
        let loc = self.txq[idx].loc;
        let domain = self.txq[idx].req.domain;
        match self.device.bank(loc.bank).open_row() {
            Some(row) if row == loc.row => {
                let cmd = self.column_cmd(&self.txq[idx]);
                if self.device.earliest(cmd, now) == now {
                    self.issue_column(idx, now);
                }
            }
            Some(_) => {
                let cmd = DramCommand::Precharge { bank: loc.bank };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.note_cmd(cmd, now, Some(domain));
                }
            }
            None => {
                let cmd = DramCommand::Activate {
                    bank: loc.bank,
                    row: loc.row,
                };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.note_cmd(cmd, now, Some(domain));
                }
            }
        }
    }

    fn schedule_frfcfs(&mut self, now: Cycle) {
        // 1. Oldest row-hit column access that is legal right now.
        let hit = self.txq.iter().position(|t| {
            matches!(t.state, TxnState::Pending)
                && self.device.bank(t.loc.bank).open_row() == Some(t.loc.row)
                && self.device.earliest(self.column_cmd(t), now) == now
        });
        if let Some(idx) = hit {
            self.issue_column(idx, now);
            return;
        }

        // 2. Oldest transaction whose bank is idle: activate its row.
        //    Skip banks that already have an older same-bank transaction in
        //    front (FCFS within a bank).
        let mut seen_banks = 0u64;
        for i in 0..self.txq.len() {
            let t = &self.txq[i];
            if !matches!(t.state, TxnState::Pending) {
                continue;
            }
            let bank_bit = 1u64 << t.loc.bank;
            if seen_banks & bank_bit != 0 {
                continue;
            }
            seen_banks |= bank_bit;
            if self.device.bank(t.loc.bank).open_row().is_none() {
                let domain = t.req.domain;
                let cmd = DramCommand::Activate {
                    bank: t.loc.bank,
                    row: t.loc.row,
                };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.note_cmd(cmd, now, Some(domain));
                    return;
                }
            }
        }

        // 3. Row conflict: precharge the bank of the oldest conflicting
        //    transaction, provided no pending transaction still hits the
        //    open row (serve hits before closing).
        if self.row_policy == RowPolicy::Open {
            let conflict = self.txq.iter().position(|t| {
                matches!(t.state, TxnState::Pending)
                    && matches!(self.device.bank(t.loc.bank).open_row(), Some(r) if r != t.loc.row)
            });
            if let Some(idx) = conflict {
                let bank = self.txq[idx].loc.bank;
                let open = self.device.bank(bank).open_row();
                let hit_waiting = self.txq.iter().any(|t| {
                    matches!(t.state, TxnState::Pending)
                        && t.loc.bank == bank
                        && Some(t.loc.row) == open
                });
                if !hit_waiting {
                    let domain = self.txq[idx].req.domain;
                    let cmd = DramCommand::Precharge { bank };
                    if self.device.earliest(cmd, now) == now {
                        self.device.issue(cmd, now);
                        self.note_cmd(cmd, now, Some(domain));
                    }
                }
            }
        }
    }

    /// Charges this command-bus edge's wait time for every pending
    /// transaction to the domain whose earlier command made the blocking
    /// resource busy. Runs after [`MemoryController::schedule`] on each bus
    /// edge; purely observational (reads device horizons, never issues).
    fn attribute_stalls(&mut self, now: Cycle) {
        let cmd_cycle = self.device.timing().cmd_cycle;
        let mut bank_head: Vec<Option<DomainId>> = vec![None; self.device.bank_count() as usize];
        let mut charges: Vec<(u16, Option<u16>, StallCause)> = Vec::new();
        for txn in &self.txq {
            if !matches!(txn.state, TxnState::Pending) {
                continue;
            }
            let b = txn.loc.bank as usize;
            let victim = txn.req.domain.0;
            // FCFS within a bank: a transaction behind an older same-bank
            // transaction waits on that owner, whatever the device says.
            if let Some(owner) = bank_head[b] {
                charges.push((victim, Some(owner.0), StallCause::QueueWait));
                continue;
            }
            bank_head[b] = Some(txn.req.domain);
            // This transaction heads its bank: what command does it need,
            // and which device horizon holds that command back?
            let cmd = match self.device.bank(txn.loc.bank).open_row() {
                Some(row) if row == txn.loc.row => self.column_cmd(txn),
                Some(_) => DramCommand::Precharge { bank: txn.loc.bank },
                None => DramCommand::Activate {
                    bank: txn.loc.bank,
                    row: txn.loc.row,
                },
            };
            let as_u16 = |d: Option<DomainId>| d.map(|d| d.0);
            match self.device.blocking_reason(cmd, now) {
                Some(BlockReason::Bank) => {
                    charges.push((victim, as_u16(self.leak.bank_user[b]), StallCause::BankBusy));
                }
                Some(BlockReason::Rrd) => {
                    let culprit = self.leak.act_users.back().copied().flatten();
                    charges.push((victim, culprit.map(|d| d.0), StallCause::ActWindow));
                }
                Some(BlockReason::Faw) => {
                    // tFAW binds to the oldest ACT in the window.
                    let culprit = self.leak.act_users.front().copied().flatten();
                    charges.push((victim, culprit.map(|d| d.0), StallCause::ActWindow));
                    self.stats.banks[b].faw_stall_cycles += cmd_cycle;
                }
                Some(BlockReason::Bus) => {
                    charges.push((victim, as_u16(self.leak.col_user), StallCause::BusConflict));
                }
                Some(BlockReason::CmdBus) => {
                    charges.push((victim, as_u16(self.leak.cmd_user), StallCause::BusConflict));
                }
                Some(BlockReason::Refresh) => {
                    charges.push((victim, None, StallCause::Refresh));
                }
                None => {
                    // Legal this edge but not picked: lost arbitration to
                    // whichever command did issue, or held back by the
                    // refresh drain.
                    if let Some(winner) = self.leak.issued_this_edge {
                        charges.push((victim, as_u16(winner), StallCause::BusConflict));
                    } else if self.refresh_pending {
                        charges.push((victim, None, StallCause::Refresh));
                    }
                }
            }
        }
        for (victim, culprit, cause) in charges {
            self.leak.matrix.charge(victim, culprit, cause, cmd_cycle);
        }
    }

    fn collect_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        let mut i = 0;
        while i < self.txq.len() {
            if let TxnState::Issued { done: d } = self.txq[i].state {
                if d <= now {
                    let txn = self.txq.remove(i).expect("index in range");
                    let resp = MemResponse {
                        id: txn.req.id,
                        domain: txn.req.domain,
                        addr: txn.req.addr,
                        req_type: txn.req.req_type,
                        kind: txn.req.kind,
                        arrived_at: txn.arrived,
                        completed_at: d,
                    };
                    self.stats.record(&resp);
                    self.tracer.record(now, || EventKind::Response {
                        id: resp.id,
                        domain: resp.domain,
                        latency: resp.latency(),
                        fake: resp.kind.is_fake(),
                    });
                    self.tracer.record(now, || EventKind::TxqOccupancy {
                        count: self.txq.len() as u32,
                    });
                    out.push(resp);
                    continue;
                }
            }
            i += 1;
        }
    }
}

impl MemorySubsystem for MemoryController {
    fn try_send(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        if self.txq.len() >= self.capacity {
            return Err(req);
        }
        let loc = self.mapper.decode(req.addr);
        self.tracer.record(now, || EventKind::TxqEnqueue {
            id: req.id,
            domain: req.domain,
            bank: loc.bank,
        });
        self.txq.push_back(Txn {
            req,
            loc,
            arrived: now,
            state: TxnState::Pending,
        });
        self.tracer.record(now, || EventKind::TxqOccupancy {
            count: self.txq.len() as u32,
        });
        Ok(())
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        let _prof = dg_prof::span("controller");
        self.collect_into(now, out);
        if now.is_multiple_of(self.device.timing().cmd_cycle) {
            let _prof = dg_prof::span("dram_device");
            self.leak.issued_this_edge = None;
            self.schedule(now);
            self.attribute_stalls(now);
        }
    }

    fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let cmd_cycle = self.device.timing().cmd_cycle;
        let edge = now.next_multiple_of(cmd_cycle);
        let mut ev: Option<Cycle> = None;
        let mut pending = false;
        for txn in &self.txq {
            match txn.state {
                // Completions are collected the cycle `done` is reached.
                TxnState::Issued { done } => {
                    ev = dg_sim::clock::earliest_event(ev, Some(done.max(now)));
                }
                TxnState::Pending => pending = true,
            }
        }
        // While any transaction is pending (or a refresh drain is under
        // way), every command-bus edge matters: the scheduler may issue and
        // attribute_stalls charges the interference matrix per edge.
        if pending || self.refresh_pending {
            ev = dg_sim::clock::earliest_event(ev, Some(edge));
        }
        // Refresh maintenance wakes the controller even when fully idle:
        // the first edge at or after the deadline flips `refresh_pending`.
        let refresh_edge = self
            .device
            .refresh_deadline()
            .max(now)
            .next_multiple_of(cmd_cycle);
        dg_sim::clock::earliest_event(ev, Some(refresh_edge))
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn free_slots(&self) -> usize {
        self.free_space()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn interference(&self) -> Option<InterferenceReport> {
        Some(self.leak.matrix.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        // Unit ratio keeps latencies equal to Table 2 DRAM-cycle numbers.
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    /// Ticks the controller until its queue drains, then keeps ticking for a
    /// grace window so late (dropped or straggling) responses still surface.
    /// Breaking as soon as the queue looks empty would silently pass tests
    /// that drop trailing responses.
    fn run_until_done(mc: &mut MemoryController, budget: Cycle) -> Vec<MemResponse> {
        const GRACE: Cycle = 500;
        let mut out = Vec::new();
        let mut drained_at: Option<Cycle> = None;
        for now in 0..budget {
            out.extend(mc.tick(now));
            match drained_at {
                None if mc.occupancy() == 0 && !out.is_empty() => drained_at = Some(now),
                Some(at) if now >= at + GRACE => break,
                _ => {}
            }
        }
        out
    }

    fn read_at(mc: &mut MemoryController, addr: u64, id: u64, now: Cycle) {
        let req = MemRequest::read(DomainId(0), addr, now).with_id(ReqId(id));
        mc.try_send(req, now).unwrap();
    }

    #[test]
    fn single_read_latency_closed_row() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        read_at(&mut mc, 0x40, 1, 0);
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        let t = DramDevice::new(c.dram_org, c.timing, c.clock_ratio);
        // ACT at 0, RD at tRCD, data at tRCD + tCAS + tBURST.
        assert_eq!(done[0].latency(), t.timing().closed_row_read_latency());
    }

    #[test]
    fn open_row_hit_is_faster_than_first_access() {
        let c = cfg(); // open-row
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        // Two reads to the same row: second should be a row hit.
        read_at(&mut mc, 0x0, 1, 0);
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() {
            out.extend(mc.tick(now));
            now += 1;
        }
        let first_latency = out[0].latency();
        read_at(&mut mc, 0x0, 2, now);
        let mut out2 = Vec::new();
        let start = now;
        while out2.is_empty() {
            out2.extend(mc.tick(now));
            now += 1;
        }
        let hit_latency = out2[0].completed_at - start;
        assert!(
            hit_latency < first_latency,
            "hit {hit_latency} vs miss {first_latency}"
        );
    }

    #[test]
    fn row_conflict_is_slower_than_hit() {
        let c = cfg();
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        // Open row 0 of bank 0.
        let a0 = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        read_at(&mut mc, a0, 1, 0);
        let mut now = 0;
        let mut out = Vec::new();
        while out.is_empty() {
            out.extend(mc.tick(now));
            now += 1;
        }
        // Conflict: same bank, different row.
        let a1 = mapper.encode(PhysLoc {
            bank: 0,
            row: 9,
            col: 0,
        });
        read_at(&mut mc, a1, 2, now);
        let start = now;
        let mut out2 = Vec::new();
        while out2.is_empty() {
            out2.extend(mc.tick(now));
            now += 1;
        }
        let conflict_latency = out2[0].completed_at - start;
        let t = mc.device.timing();
        assert!(conflict_latency >= t.tRP + t.tRCD + t.tCAS);
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);

        // Two requests to different banks complete much faster than two to
        // the same bank.
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let b0 = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        let b1 = mapper.encode(PhysLoc {
            bank: 1,
            row: 0,
            col: 0,
        });
        read_at(&mut mc, b0, 1, 0);
        read_at(&mut mc, b1, 2, 0);
        let done = run_until_done(&mut mc, 10_000);
        let parallel_finish = done.iter().map(|r| r.completed_at).max().unwrap();

        let mut mc2 = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let same0 = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        let same1 = mapper.encode(PhysLoc {
            bank: 0,
            row: 1,
            col: 0,
        });
        read_at(&mut mc2, same0, 1, 0);
        read_at(&mut mc2, same1, 2, 0);
        let done2 = run_until_done(&mut mc2, 10_000);
        let serial_finish = done2.iter().map(|r| r.completed_at).max().unwrap();

        assert!(
            parallel_finish < serial_finish,
            "parallel {parallel_finish} vs serial {serial_finish}"
        );
    }

    #[test]
    fn fcfs_does_not_reorder() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        let mut mc = MemoryController::new(&c, SchedPolicy::Fcfs);
        // Same bank twice then different bank: FCFS must finish them in order.
        let a = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        let b = mapper.encode(PhysLoc {
            bank: 0,
            row: 1,
            col: 0,
        });
        let e = mapper.encode(PhysLoc {
            bank: 3,
            row: 0,
            col: 0,
        });
        read_at(&mut mc, a, 1, 0);
        read_at(&mut mc, b, 2, 0);
        read_at(&mut mc, e, 3, 0);
        let mut done = Vec::new();
        for now in 0..100_000 {
            done.extend(mc.tick(now));
            if done.len() == 3 {
                break;
            }
        }
        let order: Vec<u64> = done.iter().map(|r| r.id.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn queue_backpressure() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        for i in 0..c.queues.transaction_queue {
            read_at(&mut mc, (i as u64) * 64, i as u64, 0);
        }
        let req = MemRequest::read(DomainId(0), 0x9999, 0).with_id(ReqId(99));
        assert!(mc.try_send(req, 0).is_err());
        assert_eq!(mc.free_space(), 0);
    }

    #[test]
    fn refresh_eventually_happens() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let refi = mc.device.timing().tREFI;
        for now in 0..refi + 1000 {
            mc.tick(now);
        }
        assert!(mc.device.refreshes() >= 1);
    }

    #[test]
    fn refresh_under_load_preserves_all_requests() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let mut sent = 0u64;
        let mut done = 0u64;
        let horizon = mc.device.timing().tREFI * 3;
        for now in 0..horizon {
            if now % 50 == 0 && mc.free_space() > 0 {
                read_at(&mut mc, (sent % 4096) * 64, sent, now);
                sent += 1;
            }
            done += mc.tick(now).len() as u64;
        }
        // Drain.
        for now in horizon..horizon + 10_000 {
            done += mc.tick(now).len() as u64;
        }
        assert!(mc.device.refreshes() >= 2, "refreshes ran under load");
        assert_eq!(sent, done, "no transaction lost across refresh");
    }

    #[test]
    fn bank_counters_track_hits_and_misses() {
        let c = cfg(); // open-row
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        // First access opens the row (miss); two more to the same row hit.
        read_at(&mut mc, 0x0, 1, 0);
        let mut now = 0;
        let mut done = 0;
        while done < 3 {
            if done == 1 && mc.occupancy() == 0 {
                read_at(&mut mc, 0x0, 2, now);
                read_at(&mut mc, 0x0, 3, now);
            }
            done += mc.tick(now).len();
            now += 1;
        }
        let b0 = &mc.stats().banks[0];
        assert_eq!(b0.acts, 1);
        assert_eq!(b0.row_misses, 1);
        assert_eq!(b0.row_hits, 2);
        assert_eq!(b0.precharges, 0);
    }

    #[test]
    fn closed_row_counts_auto_precharges() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        read_at(&mut mc, 0x0, 1, 0);
        run_until_done(&mut mc, 10_000);
        let b0 = &mc.stats().banks[0];
        assert_eq!(b0.acts, 1);
        assert_eq!(b0.row_misses, 1);
        assert_eq!(b0.precharges, 1);
    }

    #[test]
    fn interference_attributes_cross_domain_stalls() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        // Two domains hammering the same bank: whoever queues second waits
        // on the first, and the matrix must say so.
        let mut sent = 0u64;
        let mut done = 0u64;
        for now in 0..20_000 {
            if now % 40 == 0 && mc.free_space() >= 2 {
                let a = MemRequest::read(DomainId(0), 0x0, now).with_id(ReqId(sent));
                let b = MemRequest::read(DomainId(1), 0x2000, now).with_id(ReqId(sent + 1));
                mc.try_send(a, now).unwrap();
                mc.try_send(b, now).unwrap();
                sent += 2;
            }
            done += mc.tick(now).len() as u64;
        }
        assert!(done > 0);
        let report = mc.interference().expect("controller attributes stalls");
        // Domain 1 always queues behind domain 0 on the shared bank.
        assert!(
            report.matrix[1][0] > 0,
            "expected cross-domain stall cycles, got {report:?}"
        );
        assert!(report.total_stall_cycles > 0);
        let by_cause: u64 = report.by_cause.iter().map(|c| c.cycles).sum();
        assert_eq!(by_cause, report.total_stall_cycles);
    }

    #[test]
    fn idle_controller_attributes_nothing() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        for now in 0..1_000 {
            mc.tick(now);
        }
        assert_eq!(mc.interference().unwrap().total_stall_cycles, 0);
    }

    #[test]
    fn stats_accumulate() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        read_at(&mut mc, 0x40, 1, 0);
        let w = MemRequest::write(DomainId(1), 0x80, 0).with_id(ReqId(2));
        mc.try_send(w, 0).unwrap();
        run_until_done(&mut mc, 10_000);
        assert_eq!(mc.stats().domain(DomainId(0)).reads, 1);
        assert_eq!(mc.stats().domain(DomainId(1)).writes, 1);
    }
}
