//! The memory controller proper: transaction queue + command scheduler.

use std::collections::VecDeque;

use dg_dram::{AddressMapper, DramCommand, DramDevice, MapScheme, PhysLoc};
use dg_obs::{BankCmd, EventKind, Tracer};
use dg_sim::clock::Cycle;
use dg_sim::config::{RowPolicy, SystemConfig};
use dg_sim::types::{MemRequest, MemResponse};
use serde::{Deserialize, Serialize};

use crate::front::MemorySubsystem;
use crate::stats::MemStats;

/// DRAM command scheduling policy (§2.1: "command scheduling can vary in
/// complexity, ranging from a basic First Come First Served (FCFS) policy,
/// to policies that optimize for row-buffer hits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Strictly serve the oldest transaction; no reordering.
    Fcfs,
    /// First-Ready FCFS: row hits first, then oldest.
    FrFcfs,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    /// Waiting for its column access (may still need ACT/PRE first).
    Pending,
    /// Column command issued; data completes at `done`.
    Issued { done: Cycle },
}

#[derive(Debug, Clone)]
struct Txn {
    req: MemRequest,
    loc: PhysLoc,
    arrived: Cycle,
    state: TxnState,
}

/// The shared memory controller: a global transaction queue feeding a
/// command scheduler that drives the DRAM device.
///
/// One DRAM command may issue per command-bus edge. Refresh takes priority
/// when due: open banks are drained and precharged, then a rank-wide REF is
/// issued.
#[derive(Debug)]
pub struct MemoryController {
    device: DramDevice,
    mapper: AddressMapper,
    row_policy: RowPolicy,
    policy: SchedPolicy,
    txq: VecDeque<Txn>,
    capacity: usize,
    stats: MemStats,
    refresh_pending: bool,
    tracer: Tracer,
}

impl MemoryController {
    /// Builds a controller for the given system configuration.
    pub fn new(cfg: &SystemConfig, policy: SchedPolicy) -> Self {
        let device = DramDevice::new(cfg.dram_org, cfg.timing, cfg.clock_ratio);
        let mapper = AddressMapper::new(
            MapScheme::BankInterleaved,
            cfg.dram_org.banks,
            cfg.dram_org.row_bytes,
            cfg.dram_org.line_bytes,
        );
        // Reserve a couple of extra stats slots for shaper-internal domains.
        let stats = MemStats::new(cfg.cores + 2, cfg.dram_org.line_bytes);
        Self {
            device,
            mapper,
            row_policy: cfg.row_policy,
            policy,
            txq: VecDeque::with_capacity(cfg.queues.transaction_queue),
            capacity: cfg.queues.transaction_queue,
            stats,
            refresh_pending: false,
            tracer: Tracer::noop(),
        }
    }

    /// Records a command-bus event when tracing is enabled.
    fn trace_cmd(&self, cmd: DramCommand, now: Cycle) {
        self.tracer.record(now, || match cmd {
            DramCommand::Activate { bank, .. } => EventKind::BankCommand {
                cmd: BankCmd::Act,
                bank,
            },
            DramCommand::Read { bank, .. } => EventKind::BankCommand {
                cmd: BankCmd::Rd,
                bank,
            },
            DramCommand::Write { bank, .. } => EventKind::BankCommand {
                cmd: BankCmd::Wr,
                bank,
            },
            DramCommand::Precharge { bank } => EventKind::BankCommand {
                cmd: BankCmd::Pre,
                bank,
            },
            DramCommand::Refresh => EventKind::BankCommand {
                cmd: BankCmd::Ref,
                bank: 0,
            },
        });
    }

    /// The address mapper in use (attackers and shapers need it to target
    /// specific banks).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Free entries in the transaction queue.
    pub fn free_space(&self) -> usize {
        self.capacity - self.txq.len()
    }

    /// Current transaction queue occupancy.
    pub fn occupancy(&self) -> usize {
        self.txq.len()
    }

    /// The row-buffer policy this controller runs.
    pub fn row_policy(&self) -> RowPolicy {
        self.row_policy
    }

    fn auto_precharge(&self) -> bool {
        self.row_policy == RowPolicy::Closed
    }

    /// Attempts to issue one DRAM command at `now` (must be a bus edge).
    fn schedule(&mut self, now: Cycle) {
        // Refresh has priority: drain open banks, then REF.
        if self.device.refresh_due(now) {
            self.refresh_pending = true;
        }
        if self.refresh_pending && self.try_refresh(now) {
            return;
        }

        match self.policy {
            SchedPolicy::Fcfs => self.schedule_fcfs(now),
            SchedPolicy::FrFcfs => self.schedule_frfcfs(now),
        }
    }

    /// Returns true if a refresh-related command was issued (or refresh
    /// still blocks normal scheduling this edge).
    fn try_refresh(&mut self, now: Cycle) -> bool {
        // Precharge any open bank whose precharge is legal.
        for b in 0..self.device.bank_count() {
            if self.device.bank(b).open_row().is_some() {
                let cmd = DramCommand::Precharge { bank: b };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.trace_cmd(cmd, now);
                    return true;
                }
            }
        }
        if !self.device.all_banks_idle() {
            // Waiting for in-progress accesses / precharges to become legal;
            // block column/act scheduling so we make forward progress.
            return true;
        }
        let cmd = DramCommand::Refresh;
        if self.device.earliest(cmd, now) == now {
            self.device.issue(cmd, now);
            self.trace_cmd(cmd, now);
            self.refresh_pending = false;
            self.stats.refreshes = self.device.refreshes();
            self.stats.energy.record_refresh();
            return true;
        }
        true
    }

    fn column_cmd(&self, txn: &Txn) -> DramCommand {
        let auto_precharge = self.auto_precharge();
        if txn.req.req_type.is_write() {
            DramCommand::Write {
                bank: txn.loc.bank,
                auto_precharge,
            }
        } else {
            DramCommand::Read {
                bank: txn.loc.bank,
                auto_precharge,
            }
        }
    }

    fn issue_column(&mut self, idx: usize, now: Cycle) {
        let cmd = self.column_cmd(&self.txq[idx]);
        let done = self
            .device
            .issue(cmd, now)
            .expect("column returns data time");
        self.trace_cmd(cmd, now);
        self.txq[idx].state = TxnState::Issued { done };
    }

    fn schedule_fcfs(&mut self, now: Cycle) {
        // Serve only the oldest pending transaction.
        let Some(idx) = self
            .txq
            .iter()
            .position(|t| matches!(t.state, TxnState::Pending))
        else {
            return;
        };
        let loc = self.txq[idx].loc;
        match self.device.bank(loc.bank).open_row() {
            Some(row) if row == loc.row => {
                let cmd = self.column_cmd(&self.txq[idx]);
                if self.device.earliest(cmd, now) == now {
                    self.issue_column(idx, now);
                }
            }
            Some(_) => {
                let cmd = DramCommand::Precharge { bank: loc.bank };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.trace_cmd(cmd, now);
                }
            }
            None => {
                let cmd = DramCommand::Activate {
                    bank: loc.bank,
                    row: loc.row,
                };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.trace_cmd(cmd, now);
                }
            }
        }
    }

    fn schedule_frfcfs(&mut self, now: Cycle) {
        // 1. Oldest row-hit column access that is legal right now.
        let hit = self.txq.iter().position(|t| {
            matches!(t.state, TxnState::Pending)
                && self.device.bank(t.loc.bank).open_row() == Some(t.loc.row)
                && self.device.earliest(self.column_cmd(t), now) == now
        });
        if let Some(idx) = hit {
            self.issue_column(idx, now);
            return;
        }

        // 2. Oldest transaction whose bank is idle: activate its row.
        //    Skip banks that already have an older same-bank transaction in
        //    front (FCFS within a bank).
        let mut seen_banks = 0u64;
        for i in 0..self.txq.len() {
            let t = &self.txq[i];
            if !matches!(t.state, TxnState::Pending) {
                continue;
            }
            let bank_bit = 1u64 << t.loc.bank;
            if seen_banks & bank_bit != 0 {
                continue;
            }
            seen_banks |= bank_bit;
            if self.device.bank(t.loc.bank).open_row().is_none() {
                let cmd = DramCommand::Activate {
                    bank: t.loc.bank,
                    row: t.loc.row,
                };
                if self.device.earliest(cmd, now) == now {
                    self.device.issue(cmd, now);
                    self.trace_cmd(cmd, now);
                    return;
                }
            }
        }

        // 3. Row conflict: precharge the bank of the oldest conflicting
        //    transaction, provided no pending transaction still hits the
        //    open row (serve hits before closing).
        if self.row_policy == RowPolicy::Open {
            let conflict = self.txq.iter().position(|t| {
                matches!(t.state, TxnState::Pending)
                    && matches!(self.device.bank(t.loc.bank).open_row(), Some(r) if r != t.loc.row)
            });
            if let Some(idx) = conflict {
                let bank = self.txq[idx].loc.bank;
                let open = self.device.bank(bank).open_row();
                let hit_waiting = self.txq.iter().any(|t| {
                    matches!(t.state, TxnState::Pending)
                        && t.loc.bank == bank
                        && Some(t.loc.row) == open
                });
                if !hit_waiting {
                    let cmd = DramCommand::Precharge { bank };
                    if self.device.earliest(cmd, now) == now {
                        self.device.issue(cmd, now);
                        self.trace_cmd(cmd, now);
                    }
                }
            }
        }
    }

    fn collect(&mut self, now: Cycle) -> Vec<MemResponse> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.txq.len() {
            if let TxnState::Issued { done: d } = self.txq[i].state {
                if d <= now {
                    let txn = self.txq.remove(i).expect("index in range");
                    let resp = MemResponse {
                        id: txn.req.id,
                        domain: txn.req.domain,
                        addr: txn.req.addr,
                        req_type: txn.req.req_type,
                        kind: txn.req.kind,
                        arrived_at: txn.arrived,
                        completed_at: d,
                    };
                    self.stats.record(&resp);
                    self.tracer.record(now, || EventKind::Response {
                        id: resp.id,
                        domain: resp.domain,
                        latency: resp.latency(),
                        fake: resp.kind.is_fake(),
                    });
                    done.push(resp);
                    continue;
                }
            }
            i += 1;
        }
        done
    }
}

impl MemorySubsystem for MemoryController {
    fn try_send(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        if self.txq.len() >= self.capacity {
            return Err(req);
        }
        let loc = self.mapper.decode(req.addr);
        self.tracer.record(now, || EventKind::TxqEnqueue {
            id: req.id,
            domain: req.domain,
            bank: loc.bank,
        });
        self.txq.push_back(Txn {
            req,
            loc,
            arrived: now,
            state: TxnState::Pending,
        });
        Ok(())
    }

    fn tick(&mut self, now: Cycle) -> Vec<MemResponse> {
        let responses = self.collect(now);
        if now.is_multiple_of(self.device.timing().cmd_cycle) {
            self.schedule(now);
        }
        responses
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    fn free_slots(&self) -> usize {
        self.free_space()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::types::{DomainId, ReqId};

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::two_core();
        // Unit ratio keeps latencies equal to Table 2 DRAM-cycle numbers.
        c.clock_ratio = dg_sim::clock::ClockRatio::new(1);
        c
    }

    fn run_until_done(mc: &mut MemoryController, budget: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for now in 0..budget {
            out.extend(mc.tick(now));
            if mc.occupancy() == 0 && !out.is_empty() {
                break;
            }
        }
        out
    }

    fn read_at(mc: &mut MemoryController, addr: u64, id: u64, now: Cycle) {
        let req = MemRequest::read(DomainId(0), addr, now).with_id(ReqId(id));
        mc.try_send(req, now).unwrap();
    }

    #[test]
    fn single_read_latency_closed_row() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        read_at(&mut mc, 0x40, 1, 0);
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        let t = DramDevice::new(c.dram_org, c.timing, c.clock_ratio);
        // ACT at 0, RD at tRCD, data at tRCD + tCAS + tBURST.
        assert_eq!(done[0].latency(), t.timing().closed_row_read_latency());
    }

    #[test]
    fn open_row_hit_is_faster_than_first_access() {
        let c = cfg(); // open-row
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        // Two reads to the same row: second should be a row hit.
        read_at(&mut mc, 0x0, 1, 0);
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() {
            out.extend(mc.tick(now));
            now += 1;
        }
        let first_latency = out[0].latency();
        read_at(&mut mc, 0x0, 2, now);
        let mut out2 = Vec::new();
        let start = now;
        while out2.is_empty() {
            out2.extend(mc.tick(now));
            now += 1;
        }
        let hit_latency = out2[0].completed_at - start;
        assert!(
            hit_latency < first_latency,
            "hit {hit_latency} vs miss {first_latency}"
        );
    }

    #[test]
    fn row_conflict_is_slower_than_hit() {
        let c = cfg();
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        // Open row 0 of bank 0.
        let a0 = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        read_at(&mut mc, a0, 1, 0);
        let mut now = 0;
        let mut out = Vec::new();
        while out.is_empty() {
            out.extend(mc.tick(now));
            now += 1;
        }
        // Conflict: same bank, different row.
        let a1 = mapper.encode(PhysLoc {
            bank: 0,
            row: 9,
            col: 0,
        });
        read_at(&mut mc, a1, 2, now);
        let start = now;
        let mut out2 = Vec::new();
        while out2.is_empty() {
            out2.extend(mc.tick(now));
            now += 1;
        }
        let conflict_latency = out2[0].completed_at - start;
        let t = mc.device.timing();
        assert!(conflict_latency >= t.tRP + t.tRCD + t.tCAS);
    }

    #[test]
    fn bank_parallelism_overlaps_requests() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);

        // Two requests to different banks complete much faster than two to
        // the same bank.
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let b0 = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        let b1 = mapper.encode(PhysLoc {
            bank: 1,
            row: 0,
            col: 0,
        });
        read_at(&mut mc, b0, 1, 0);
        read_at(&mut mc, b1, 2, 0);
        let done = run_until_done(&mut mc, 10_000);
        let parallel_finish = done.iter().map(|r| r.completed_at).max().unwrap();

        let mut mc2 = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let same0 = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        let same1 = mapper.encode(PhysLoc {
            bank: 0,
            row: 1,
            col: 0,
        });
        read_at(&mut mc2, same0, 1, 0);
        read_at(&mut mc2, same1, 2, 0);
        let done2 = run_until_done(&mut mc2, 10_000);
        let serial_finish = done2.iter().map(|r| r.completed_at).max().unwrap();

        assert!(
            parallel_finish < serial_finish,
            "parallel {parallel_finish} vs serial {serial_finish}"
        );
    }

    #[test]
    fn fcfs_does_not_reorder() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mapper = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
        let mut mc = MemoryController::new(&c, SchedPolicy::Fcfs);
        // Same bank twice then different bank: FCFS must finish them in order.
        let a = mapper.encode(PhysLoc {
            bank: 0,
            row: 0,
            col: 0,
        });
        let b = mapper.encode(PhysLoc {
            bank: 0,
            row: 1,
            col: 0,
        });
        let e = mapper.encode(PhysLoc {
            bank: 3,
            row: 0,
            col: 0,
        });
        read_at(&mut mc, a, 1, 0);
        read_at(&mut mc, b, 2, 0);
        read_at(&mut mc, e, 3, 0);
        let mut done = Vec::new();
        for now in 0..100_000 {
            done.extend(mc.tick(now));
            if done.len() == 3 {
                break;
            }
        }
        let order: Vec<u64> = done.iter().map(|r| r.id.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn queue_backpressure() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        for i in 0..c.queues.transaction_queue {
            read_at(&mut mc, (i as u64) * 64, i as u64, 0);
        }
        let req = MemRequest::read(DomainId(0), 0x9999, 0).with_id(ReqId(99));
        assert!(mc.try_send(req, 0).is_err());
        assert_eq!(mc.free_space(), 0);
    }

    #[test]
    fn refresh_eventually_happens() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let refi = mc.device.timing().tREFI;
        for now in 0..refi + 1000 {
            mc.tick(now);
        }
        assert!(mc.device.refreshes() >= 1);
    }

    #[test]
    fn refresh_under_load_preserves_all_requests() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        let mut sent = 0u64;
        let mut done = 0u64;
        let horizon = mc.device.timing().tREFI * 3;
        for now in 0..horizon {
            if now % 50 == 0 && mc.free_space() > 0 {
                read_at(&mut mc, (sent % 4096) * 64, sent, now);
                sent += 1;
            }
            done += mc.tick(now).len() as u64;
        }
        // Drain.
        for now in horizon..horizon + 10_000 {
            done += mc.tick(now).len() as u64;
        }
        assert!(mc.device.refreshes() >= 2, "refreshes ran under load");
        assert_eq!(sent, done, "no transaction lost across refresh");
    }

    #[test]
    fn stats_accumulate() {
        let c = cfg().with_row_policy(RowPolicy::Closed);
        let mut mc = MemoryController::new(&c, SchedPolicy::FrFcfs);
        read_at(&mut mc, 0x40, 1, 0);
        let w = MemRequest::write(DomainId(1), 0x80, 0).with_id(ReqId(2));
        mc.try_send(w, 0).unwrap();
        run_until_done(&mut mc, 10_000);
        assert_eq!(mc.stats().domain(DomainId(0)).reads, 1);
        assert_eq!(mc.stats().domain(DomainId(1)).writes, 1);
    }
}
