//! Leveled structured logging with a shared stderr gate.
//!
//! The facade exists for two reasons: the harnesses' diagnostics were ~22
//! ad-hoc `eprintln!` sites with no level control, and the `--live`
//! dashboard repaints a multi-line stderr region that a concurrently
//! printed diagnostic would shear through. Both now go through one global
//! gate: a log line first wipes the live region (the next dashboard tick
//! repaints it below the log line), so output never interleaves.
//!
//! Levels are filtered by the `DG_LOG` environment variable
//! (`error|warn|info|debug`, default `info`), read once per process. Every
//! line has the shape
//!
//! ```text
//! [warn] retrying after budget exhaustion job=smoke/a/insecure attempt=2
//! ```
//!
//! — a human message followed by a machine-parseable `key=value` tail.
//! Values containing whitespace, `=`, or quotes are double-quoted.

use std::fmt;
use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the run cannot paper over (always printed).
    Error,
    /// Anomalies the run recovered from (partial journal tails, stalls).
    Warn,
    /// Run lifecycle (default threshold).
    Info,
    /// Per-decision detail for debugging the harness itself.
    Debug,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// The process-wide threshold: `DG_LOG`, default `info`. An unparseable
/// value falls back to the default rather than silencing diagnostics.
fn threshold() -> Level {
    static THRESHOLD: OnceLock<Level> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("DG_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    })
}

/// Whether a message at `level` would be printed.
pub fn enabled(level: Level) -> bool {
    level <= threshold()
}

/// The live region currently painted at the bottom of stderr (0 lines when
/// no dashboard is active). Guarded by one global mutex that doubles as
/// the stderr gate: log lines and dashboard repaints serialize on it.
struct Region {
    lines: usize,
}

fn region() -> &'static Mutex<Region> {
    static REGION: Mutex<Region> = Mutex::new(Region { lines: 0 });
    &REGION
}

fn lock_region() -> std::sync::MutexGuard<'static, Region> {
    region().lock().unwrap_or_else(|e| e.into_inner())
}

/// Moves the cursor up over the painted region and erases it.
fn erase(err: &mut impl Write, lines: usize) {
    if lines > 0 {
        // Cursor up N, then clear to end of screen.
        let _ = write!(err, "\x1b[{lines}A\x1b[0J");
    }
}

/// Quotes a `key=value` tail value when it would not survive
/// whitespace-splitting.
fn push_kv_value(line: &mut String, v: &str) {
    if !v.is_empty() && !v.contains(|c: char| c.is_whitespace() || c == '=' || c == '"') {
        line.push_str(v);
    } else {
        line.push('"');
        for c in v.chars() {
            if c == '"' || c == '\\' {
                line.push('\\');
            }
            line.push(c);
        }
        line.push('"');
    }
}

/// Formats and prints one log line under the stderr gate. Callers go
/// through the [`log_error!`](crate::log_error)/…/[`log_debug!`]
/// (crate::log_debug) macros, which also apply the level filter before
/// arguments are formatted.
pub fn log_kv(level: Level, msg: fmt::Arguments<'_>, kv: &[(&str, &dyn fmt::Display)]) {
    if !enabled(level) {
        return;
    }
    let mut line = format!("[{}] {}", level.label(), msg);
    for (k, v) in kv {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        push_kv_value(&mut line, &v.to_string());
    }
    let guard = lock_region();
    let mut err = std::io::stderr().lock();
    erase(&mut err, guard.lines);
    let _ = writeln!(err, "{line}");
    drop(err);
    // The region was wiped; the next dashboard tick repaints it.
    drop_region_lines(guard);
}

fn drop_region_lines(mut guard: std::sync::MutexGuard<'_, Region>) {
    guard.lines = 0;
}

/// Repaints the live region with `lines`, erasing the previous paint.
/// With `ansi` off nothing persistent is drawn, so the caller is expected
/// to print plain fallback lines through the logger instead.
pub(crate) fn paint_live(lines: &[String], ansi: bool) {
    let mut guard = lock_region();
    let mut err = std::io::stderr().lock();
    if ansi {
        erase(&mut err, guard.lines);
        for l in lines {
            let _ = writeln!(err, "{l}");
        }
        guard.lines = lines.len();
    }
    let _ = err.flush();
}

/// Erases the live region (end of a `--live` run).
pub(crate) fn clear_live() {
    let mut guard = lock_region();
    let mut err = std::io::stderr().lock();
    erase(&mut err, guard.lines);
    guard.lines = 0;
    let _ = err.flush();
}

/// Logs at [`Level::Error`]. Optional structured tail after a semicolon:
/// `log_error!("writing {} failed", path; "stage" => "journal")`.
#[macro_export]
macro_rules! log_error {
    ($($t:tt)+) => { $crate::log_at!($crate::log::Level::Error, $($t)+) };
}

/// Logs at [`Level::Warn`] (see [`log_error!`](crate::log_error) for the syntax).
#[macro_export]
macro_rules! log_warn {
    ($($t:tt)+) => { $crate::log_at!($crate::log::Level::Warn, $($t)+) };
}

/// Logs at [`Level::Info`] (see [`log_error!`](crate::log_error) for the syntax).
#[macro_export]
macro_rules! log_info {
    ($($t:tt)+) => { $crate::log_at!($crate::log::Level::Info, $($t)+) };
}

/// Logs at [`Level::Debug`] (see [`log_error!`](crate::log_error) for the syntax).
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)+) => { $crate::log_at!($crate::log::Level::Debug, $($t)+) };
}

/// Shared expansion of the level macros: message format args, then an
/// optional `; "key" => value, …` structured tail.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, $fmt:literal $(, $arg:expr)* ; $($k:literal => $v:expr),+ $(,)?) => {
        if $crate::log::enabled($lvl) {
            $crate::log::log_kv(
                $lvl,
                format_args!($fmt $(, $arg)*),
                &[$(($k, &($v) as &dyn ::std::fmt::Display)),+],
            );
        }
    };
    ($lvl:expr, $($t:tt)+) => {
        if $crate::log::enabled($lvl) {
            $crate::log::log_kv($lvl, format_args!($($t)+), &[]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn kv_values_quote_only_when_needed() {
        let mut line = String::new();
        push_kv_value(&mut line, "plain/value-1");
        assert_eq!(line, "plain/value-1");
        let mut line = String::new();
        push_kv_value(&mut line, "two words");
        assert_eq!(line, "\"two words\"");
        let mut line = String::new();
        push_kv_value(&mut line, "a\"b");
        assert_eq!(line, "\"a\\\"b\"");
        let mut line = String::new();
        push_kv_value(&mut line, "");
        assert_eq!(line, "\"\"");
    }

    #[test]
    fn macros_expand_with_and_without_tails() {
        // Smoke: both arms compile and run (error level is always enabled).
        crate::log_error!("unit test message {}", 1);
        crate::log_error!("unit test message {}", 2; "job" => "a/b", "attempt" => 1 + 1);
        crate::log_debug!("filtered unless DG_LOG=debug");
    }
}
