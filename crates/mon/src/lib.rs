//! # dg-mon — live run telemetry, stall watchdog, and trend analytics
//!
//! The live-observability plane for the DAGguise reproduction. Everything
//! observability so far (`dg-obs` traces, `dg-prof` profiles) is post-hoc:
//! a sweep is a black box until it exits. This crate threads a
//! lock-light heartbeat channel through the runner, the sharded PDES
//! coordinator, and the event-driven engine so a running sweep can be
//! watched, streamed, and supervised:
//!
//! * [`ProgressProbe`] / [`MonitorHub`] — per-job heartbeats (simulated
//!   cycles, supersteps, warp-skipped cycles) published with relaxed
//!   atomics from inside the simulation loop, folded into monotonic
//!   [`TelemetrySnapshot`]s by a sampling thread.
//! * [`Dashboard`] — the `dg-run --live` in-terminal view (per-worker
//!   state machine, aggregate sim-Mcycles/s, per-defense progress, ETA
//!   from completed-job medians).
//! * [`EventsWriter`] — `dg-run --events PATH` append-only JSONL stream
//!   with journal-style torn-tail repair on `--resume`.
//! * [`MonitorHub::watchdog_scan`] — the stall watchdog: a running job
//!   whose *simulated* clock stops advancing for a configurable host-time
//!   budget is cancelled through the existing supervision machinery,
//!   distinguishing livelock from "slow but alive".
//! * [`analyze_document`] / `dg-trend` — noise-aware regression verdicts
//!   over the `BENCH_perf.json` run history (trailing-window median ±
//!   MAD per stratified series), the basis of ci.sh's trend gate.
//! * [`log_error!`]/[`log_warn!`]/[`log_info!`]/[`log_debug!`] — the
//!   leveled structured-log facade (`DG_LOG`) that shares a stderr gate
//!   with the dashboard so diagnostics never shear the live region.
//!
//! The cardinal rule is **no observer effect**: monitoring may change
//! wall-clock timing but never simulation results — merged reports are
//! byte-identical with monitoring on or off, which the runner's
//! `monitor_has_no_observer_effect` test enforces.

pub mod config;
pub mod dashboard;
pub mod events;
pub mod heartbeat;
pub mod log;
pub mod telemetry;
pub mod trend;

pub use config::MonitorConfig;
pub use dashboard::Dashboard;
pub use events::{scan_events, truncate_events, EventsScan, EventsWriter};
pub use heartbeat::{JobState, MonitorHub, ProgressProbe};
pub use telemetry::{GroupProgress, TelemetrySnapshot, WorkerSnapshot};
pub use trend::{analyze_document, TrendOptions, TrendReport, TrendRow, Verdict};
