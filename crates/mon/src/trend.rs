//! Noise-aware perf-trend analytics over the `BENCH_perf.json` history.
//!
//! The benchmark history is a `runs` array where each run carries a
//! `scenarios` table of `{name, speedup, shards?, threads?}` rows plus
//! run-level context (`mode`, `host.parallelism`). Quick-mode numbers on
//! a busy 2-vCPU host are *extremely* noisy — single scenarios swing 3×
//! between healthy runs — so comparing the latest run against just the
//! previous one is useless. Instead each scenario is stratified into a
//! comparable series (same mode / shard count / thread context / host
//! parallelism), and the latest value is judged against the trailing
//! window's **median ± MAD**:
//!
//! * allowed drop = `max(min_drop, noise_k × 1.4826 × MAD / median)`
//!   (1.4826 scales MAD to a Gaussian σ estimate);
//! * fewer than `min_history` prior samples → verdict `Insufficient`
//!   (a MAD from 2–3 points is meaningless);
//! * delta below `−allowed` → `Regression`, above `+allowed` →
//!   `Improvement`, otherwise `Steady`.
//!
//! `--inject PCT` appends a synthetic run at `latest × (1 − PCT/100)` to
//! every series before judging — the self-test ci.sh uses to prove the
//! gate actually fires.

use std::collections::BTreeMap;

use serde::Value;

/// Tunables for the analysis (defaults calibrated against the repo's real
/// run history: see module docs).
#[derive(Debug, Clone)]
pub struct TrendOptions {
    /// Trailing window size (prior samples considered), excluding latest.
    pub window: usize,
    /// Minimum prior samples for an active verdict.
    pub min_history: usize,
    /// Noise floor: drops smaller than this fraction are never flagged.
    pub min_drop: f64,
    /// How many noise-σ (MAD-estimated) of drop to tolerate.
    pub noise_k: f64,
    /// Synthetic regression to append to each series, in percent.
    pub inject_pct: Option<f64>,
}

impl Default for TrendOptions {
    fn default() -> Self {
        TrendOptions {
            window: 8,
            min_history: 4,
            min_drop: 0.10,
            noise_k: 2.0,
            inject_pct: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Regression,
    Improvement,
    Steady,
    /// Not enough comparable history for a meaningful noise estimate.
    Insufficient,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Steady => "steady",
            Verdict::Insufficient => "insufficient",
        }
    }
}

/// One stratified series' verdict.
#[derive(Debug, Clone)]
pub struct TrendRow {
    pub scenario: String,
    /// The stratification context: `mode=quick shards=4 threads=2 host=2`.
    pub stratum: String,
    /// Prior samples actually compared against (≤ window).
    pub n_history: usize,
    /// Trailing-window median of the prior samples.
    pub median: f64,
    pub latest: f64,
    /// (latest − median) / median, in percent.
    pub delta_pct: f64,
    /// Tolerated |delta|, in percent.
    pub allowed_pct: f64,
    pub verdict: Verdict,
}

#[derive(Debug, Clone)]
pub struct TrendReport {
    pub rows: Vec<TrendRow>,
    /// Whether a synthetic regression was injected (`--inject`).
    pub injected: bool,
}

impl TrendReport {
    pub fn regressions(&self) -> Vec<&TrendRow> {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regression)
            .collect()
    }

    /// Plain-text table, one row per series, regressions first.
    pub fn table(&self) -> String {
        let mut rows: Vec<&TrendRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            let rank = |v: Verdict| match v {
                Verdict::Regression => 0,
                Verdict::Improvement => 1,
                Verdict::Steady => 2,
                Verdict::Insufficient => 3,
            };
            rank(a.verdict)
                .cmp(&rank(b.verdict))
                .then_with(|| a.scenario.cmp(&b.scenario))
                .then_with(|| a.stratum.cmp(&b.stratum))
        });
        let mut out = String::new();
        out.push_str(&format!(
            "{:<30} {:<34} {:>4} {:>10} {:>10} {:>8} {:>8}  verdict\n",
            "scenario", "stratum", "n", "median", "latest", "delta%", "allow%"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:<30} {:<34} {:>4} {:>10.3} {:>10.3} {:>+8.1} {:>8.1}  {}\n",
                r.scenario,
                r.stratum,
                r.n_history,
                r.median,
                r.latest,
                r.delta_pct,
                r.allowed_pct,
                r.verdict.label()
            ));
        }
        out
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation of `values` around `center`.
fn mad_of(values: &[f64], center: f64) -> f64 {
    let mut devs: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    median_of(&devs)
}

/// Stratification key: what must match for two samples to be comparable.
fn stratum_key(row: &Value, run: &Value) -> String {
    // Legacy rows (before sharded benches) ran unsharded.
    let shards = row.get("shards").and_then(Value::as_u64).unwrap_or(1);
    // `threads` (effective parties) landed with dg-mon; unsharded rows
    // were always single-threaded, so infer 1 to keep their history in
    // one series. Sharded rows without it are a distinct legacy stratum.
    let threads = match row.get("threads").and_then(Value::as_u64) {
        Some(t) => t.to_string(),
        None if shards == 1 => "1".to_string(),
        None => "?".to_string(),
    };
    let mode = run.get("mode").and_then(Value::as_str).unwrap_or("?");
    let host = run
        .get("host")
        .and_then(|h| h.get("parallelism"))
        .and_then(Value::as_u64)
        .map(|p| p.to_string())
        .unwrap_or_else(|| "?".to_string());
    format!("mode={mode} shards={shards} threads={threads} host={host}")
}

/// Parses a `BENCH_perf.json` document and judges every stratified series.
///
/// # Errors
///
/// Returns a description of the first structural problem (not valid JSON,
/// missing `runs`, a scenario row without `name`/`speedup`).
pub fn analyze_document(text: &str, opts: &TrendOptions) -> Result<TrendReport, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let runs = doc
        .get("runs")
        .and_then(Value::as_seq)
        .ok_or("document has no \"runs\" array")?;

    // (scenario, stratum) → speedups in run order.
    let mut series: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for (ri, run) in runs.iter().enumerate() {
        let rows = run
            .get("scenarios")
            .and_then(Value::as_seq)
            .ok_or_else(|| format!("run {ri} has no \"scenarios\" array"))?;
        for row in rows {
            let name = row
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("run {ri}: scenario row without \"name\""))?;
            let speedup = row
                .get("speedup")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("run {ri}: scenario {name} without \"speedup\""))?;
            series
                .entry((name.to_string(), stratum_key(row, run)))
                .or_default()
                .push(speedup);
        }
    }

    let mut rows = Vec::new();
    for ((scenario, stratum), mut values) in series {
        if let Some(pct) = opts.inject_pct {
            let last = *values.last().expect("series is never empty");
            values.push(last * (1.0 - pct / 100.0));
        }
        let (latest, prior) = values.split_last().expect("series is never empty");
        let window: Vec<f64> = prior.iter().rev().take(opts.window).copied().collect();
        let n_history = window.len();

        if n_history < opts.min_history {
            let mut sorted = window.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows.push(TrendRow {
                scenario,
                stratum,
                n_history,
                median: if sorted.is_empty() {
                    *latest
                } else {
                    median_of(&sorted)
                },
                latest: *latest,
                delta_pct: 0.0,
                allowed_pct: 0.0,
                verdict: Verdict::Insufficient,
            });
            continue;
        }

        let mut sorted = window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = median_of(&sorted);
        let mad = mad_of(&window, median);
        let noise_frac = if median.abs() > f64::EPSILON {
            opts.noise_k * 1.4826 * mad / median.abs()
        } else {
            0.0
        };
        let allowed = opts.min_drop.max(noise_frac);
        let delta = if median.abs() > f64::EPSILON {
            (latest - median) / median.abs()
        } else {
            0.0
        };
        let verdict = if delta < -allowed {
            Verdict::Regression
        } else if delta > allowed {
            Verdict::Improvement
        } else {
            Verdict::Steady
        };
        rows.push(TrendRow {
            scenario,
            stratum,
            n_history,
            median,
            latest: *latest,
            delta_pct: delta * 100.0,
            allowed_pct: allowed * 100.0,
            verdict,
        });
    }

    Ok(TrendReport {
        rows,
        injected: opts.inject_pct.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedups: &[f64]) -> String {
        let runs: Vec<String> = speedups
            .iter()
            .map(|s| {
                format!(
                    "{{\"mode\": \"quick\", \"host\": {{\"parallelism\": 2}}, \
                     \"scenarios\": [{{\"name\": \"a/idle\", \"shards\": 1, \
                     \"threads\": 1, \"speedup\": {s}}}]}}"
                )
            })
            .collect();
        format!("{{\"runs\": [{}]}}", runs.join(", "))
    }

    #[test]
    fn short_history_is_insufficient() {
        let report = analyze_document(&doc(&[10.0, 10.0, 9.0]), &TrendOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].verdict, Verdict::Insufficient);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn stable_series_with_big_drop_regresses() {
        let report = analyze_document(
            &doc(&[10.0, 10.2, 9.8, 10.1, 10.0, 7.0]),
            &TrendOptions::default(),
        )
        .unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Regression);
        assert_eq!(report.regressions().len(), 1);
    }

    #[test]
    fn noisy_series_tolerates_wide_swings() {
        // MAD of {10, 20, 5, 15, 12} around median 12 is 3 → allowed
        // ≈ 2×1.4826×3/12 ≈ 74% — an 8.0 latest (−33%) is within noise.
        let report = analyze_document(
            &doc(&[10.0, 20.0, 5.0, 15.0, 12.0, 8.0]),
            &TrendOptions::default(),
        )
        .unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Steady);
    }

    #[test]
    fn tight_series_small_drop_within_floor_is_steady() {
        // MAD ≈ 0 but the drop (−5%) is under the 10% floor.
        let report = analyze_document(
            &doc(&[10.0, 10.0, 10.0, 10.0, 9.5]),
            &TrendOptions::default(),
        )
        .unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Steady);
    }

    #[test]
    fn improvement_is_flagged_symmetrically() {
        let report = analyze_document(
            &doc(&[10.0, 10.0, 10.0, 10.0, 13.0]),
            &TrendOptions::default(),
        )
        .unwrap();
        assert_eq!(report.rows[0].verdict, Verdict::Improvement);
    }

    #[test]
    fn injection_forces_a_regression_on_stable_history() {
        let opts = TrendOptions {
            inject_pct: Some(20.0),
            ..Default::default()
        };
        // 4 real samples + 1 injected = 4 priors, active verdict.
        let report = analyze_document(&doc(&[10.0, 10.1, 9.9, 10.0]), &opts).unwrap();
        assert!(report.injected);
        assert_eq!(report.rows[0].verdict, Verdict::Regression);
    }

    #[test]
    fn strata_are_not_mixed() {
        let text = "{\"runs\": [\
            {\"mode\": \"quick\", \"scenarios\": [{\"name\": \"a\", \"shards\": 1, \"speedup\": 10.0}]},\
            {\"mode\": \"quick\", \"scenarios\": [{\"name\": \"a\", \"shards\": 4, \"speedup\": 2.0}]}\
        ]}";
        let report = analyze_document(text, &TrendOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(report
            .rows
            .iter()
            .all(|r| r.verdict == Verdict::Insufficient));
    }

    #[test]
    fn legacy_rows_without_threads_merge_only_when_unsharded() {
        // shards=1 without threads infers threads=1, matching new rows.
        let text = "{\"runs\": [\
            {\"mode\": \"quick\", \"scenarios\": [{\"name\": \"a\", \"shards\": 1, \"speedup\": 10.0}]},\
            {\"mode\": \"quick\", \"scenarios\": [{\"name\": \"a\", \"shards\": 1, \"threads\": 1, \"speedup\": 10.0}]}\
        ]}";
        let report = analyze_document(text, &TrendOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].n_history, 1);
    }

    #[test]
    fn structural_errors_are_reported() {
        assert!(analyze_document("nope", &TrendOptions::default()).is_err());
        assert!(analyze_document("{}", &TrendOptions::default()).is_err());
        assert!(analyze_document(
            "{\"runs\": [{\"mode\": \"quick\"}]}",
            &TrendOptions::default()
        )
        .is_err());
    }

    #[test]
    fn table_renders_every_series() {
        let report = analyze_document(
            &doc(&[10.0, 10.0, 10.0, 10.0, 5.0]),
            &TrendOptions::default(),
        )
        .unwrap();
        let table = report.table();
        assert!(table.contains("a/idle"));
        assert!(table.contains("REGRESSION"));
    }
}
