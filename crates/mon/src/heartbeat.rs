//! Worker heartbeats and the monitor hub.
//!
//! Each running job holds a [`ProgressProbe`]: a handful of relaxed
//! atomics the simulation loop bumps from inside its hot path (per
//! supervision chunk / per superstep), so publishing progress costs a few
//! `fetch_max` instructions and no locks. The [`MonitorHub`] owns one slot
//! per pool worker; the monitor thread samples the slots periodically,
//! folds them into a monotonic [`TelemetrySnapshot`](crate::TelemetrySnapshot),
//! and runs the stall watchdog over the same stamps.
//!
//! The probe doubles as the watchdog's escalation path: `cancel(reason)`
//! flips a flag the job's existing supervision check
//! (`JobCtx::expired`-style) already polls, so a stalled job aborts
//! through the same machinery as a deadline overrun.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::telemetry::{GroupProgress, TelemetrySnapshot, WorkerSnapshot};

/// Shared interior of a [`ProgressProbe`].
#[derive(Debug, Default)]
struct ProbeShared {
    sim_cycles: AtomicU64,
    supersteps: AtomicU64,
    skipped_cycles: AtomicU64,
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
}

/// Lock-light progress channel between one running job and the monitor.
///
/// Clones share state. All counters are monotonic: [`record`]
/// (ProgressProbe::record) uses `fetch_max`, so late or out-of-order
/// publishes (e.g. from shard workers racing the coordinator) can never
/// move a value backwards.
#[derive(Debug, Clone, Default)]
pub struct ProgressProbe {
    shared: Arc<ProbeShared>,
}

impl ProgressProbe {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes progress from inside the simulation loop. Values are
    /// absolute (current simulated cycle, supersteps completed so far,
    /// cycles skipped via quiescence warps so far), not deltas.
    pub fn record(&self, sim_cycles: u64, supersteps: u64, skipped_cycles: u64) {
        self.shared
            .sim_cycles
            .fetch_max(sim_cycles, Ordering::Relaxed);
        self.shared
            .supersteps
            .fetch_max(supersteps, Ordering::Relaxed);
        self.shared
            .skipped_cycles
            .fetch_max(skipped_cycles, Ordering::Relaxed);
    }

    pub fn sim_cycles(&self) -> u64 {
        self.shared.sim_cycles.load(Ordering::Relaxed)
    }

    pub fn supersteps(&self) -> u64 {
        self.shared.supersteps.load(Ordering::Relaxed)
    }

    pub fn skipped_cycles(&self) -> u64 {
        self.shared.skipped_cycles.load(Ordering::Relaxed)
    }

    /// A single value that changes iff the simulated clock made progress —
    /// what the watchdog compares between scans.
    pub fn progress_stamp(&self) -> u64 {
        self.sim_cycles().wrapping_add(self.supersteps())
    }

    /// Asks the owning job to abort. The first reason wins; later calls
    /// are ignored so the cause reported upward is the original one.
    pub fn cancel(&self, reason: &str) {
        let mut slot = self.shared.reason.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(reason.to_string());
        }
        drop(slot);
        self.shared.cancelled.store(true, Ordering::Release);
    }

    /// Polled by the job's supervision loop (cheap: one atomic load).
    pub fn cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::Acquire)
    }

    pub fn cancel_reason(&self) -> Option<String> {
        self.shared
            .reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// What a pool worker is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// No job assigned (between steals, or the queue drained).
    Idle,
    /// Executing an attempt.
    Running,
    /// Between a failed attempt and its backoff-delayed retry.
    Retrying,
}

impl JobState {
    pub fn label(self) -> &'static str {
        match self {
            JobState::Idle => "idle",
            JobState::Running => "running",
            JobState::Retrying => "retrying",
        }
    }
}

/// Per-worker slot the monitor thread samples. Touched under its own
/// mutex only at job boundaries and monitor ticks, never in the sim loop.
#[derive(Debug)]
struct Slot {
    state: JobState,
    job: Option<String>,
    attempt: u32,
    probe: Option<ProgressProbe>,
    started: Option<Instant>,
    /// Last progress stamp the watchdog observed, and when it changed.
    watch_stamp: u64,
    watch_since: Option<Instant>,
}

impl Slot {
    fn idle() -> Self {
        Slot {
            state: JobState::Idle,
            job: None,
            attempt: 0,
            probe: None,
            started: None,
            watch_stamp: 0,
            watch_since: None,
        }
    }
}

/// Smoothed throughput state: the previous sample the rate is computed
/// against, plus the last rate carried between too-close samples.
#[derive(Debug)]
struct RateState {
    at: Instant,
    cycles: u64,
    rate: f64,
}

/// Central aggregation point for one sweep: per-worker slots, terminal
/// counters, and completed-job accumulators. Shared between the pool
/// workers (job boundaries), the monitor thread (samples), and the
/// supervision loops (via the probes it hands out).
pub struct MonitorHub {
    total: u64,
    workers: usize,
    started: Instant,
    seq: AtomicU64,
    succeeded: AtomicU64,
    failed: AtomicU64,
    skipped: AtomicU64,
    retries: AtomicU64,
    stalled: AtomicU64,
    /// Progress already banked by finished jobs; live slots add on top.
    done_cycles: AtomicU64,
    done_supersteps: AtomicU64,
    done_skipped_cycles: AtomicU64,
    /// Wall-clock of completed jobs, for the ETA median.
    wall_ms: Mutex<Vec<u64>>,
    /// Per-defense (last job-id segment) totals: (planned, finished).
    groups: Mutex<BTreeMap<String, (u64, u64)>>,
    slots: Vec<Mutex<Slot>>,
    rate: Mutex<RateState>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The per-defense grouping key: the final `/`-separated segment of a job
/// id (`smoke/lbm-s1+bursty/dagguise` → `dagguise`).
fn group_of(id: &str) -> &str {
    id.rsplit('/').next().unwrap_or(id)
}

impl MonitorHub {
    /// `pending` are the job ids this run will actually execute; `skipped`
    /// counts jobs satisfied from a resumed journal (they count as done in
    /// the totals but contribute no progress or ETA signal).
    pub fn new(workers: usize, total: u64, pending: &[&str], skipped: u64) -> Self {
        let mut groups: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for id in pending {
            groups.entry(group_of(id).to_string()).or_default().0 += 1;
        }
        MonitorHub {
            total,
            workers,
            started: Instant::now(),
            seq: AtomicU64::new(0),
            succeeded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            skipped: AtomicU64::new(skipped),
            retries: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            done_cycles: AtomicU64::new(0),
            done_supersteps: AtomicU64::new(0),
            done_skipped_cycles: AtomicU64::new(0),
            wall_ms: Mutex::new(Vec::new()),
            groups: Mutex::new(groups),
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(Slot::idle()))
                .collect(),
            rate: Mutex::new(RateState {
                at: Instant::now(),
                cycles: 0,
                rate: 0.0,
            }),
        }
    }

    /// Marks `worker` as running an attempt of `job` and returns the fresh
    /// probe its simulation loop should publish into. Each attempt gets a
    /// new probe so a retry restarts the watchdog clock from zero.
    pub fn begin_job(&self, worker: usize, job: &str, attempt: u32) -> ProgressProbe {
        let probe = ProgressProbe::new();
        let mut slot = lock(&self.slots[worker % self.slots.len()]);
        slot.state = JobState::Running;
        slot.job = Some(job.to_string());
        slot.attempt = attempt;
        slot.probe = Some(probe.clone());
        if slot.started.is_none() {
            slot.started = Some(Instant::now());
        }
        slot.watch_stamp = 0;
        slot.watch_since = Some(Instant::now());
        probe
    }

    /// Marks `worker` as waiting out a retry backoff.
    pub fn job_retrying(&self, worker: usize) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        let mut slot = lock(&self.slots[worker % self.slots.len()]);
        slot.state = JobState::Retrying;
        slot.probe = None;
        slot.watch_since = None;
    }

    /// Retires `worker`'s job: banks its progress into the done
    /// accumulators and frees the slot.
    pub fn end_job(&self, worker: usize, ok: bool, wall_ms: u64) {
        let mut slot = lock(&self.slots[worker % self.slots.len()]);
        if let Some(probe) = slot.probe.take() {
            self.done_cycles
                .fetch_add(probe.sim_cycles(), Ordering::Relaxed);
            self.done_supersteps
                .fetch_add(probe.supersteps(), Ordering::Relaxed);
            self.done_skipped_cycles
                .fetch_add(probe.skipped_cycles(), Ordering::Relaxed);
        }
        let group = slot.job.as_deref().map(group_of).map(str::to_string);
        *slot = Slot::idle();
        drop(slot);
        if ok {
            self.succeeded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        lock(&self.wall_ms).push(wall_ms);
        if let Some(g) = group {
            if let Some(entry) = lock(&self.groups).get_mut(&g) {
                entry.1 += 1;
            }
        }
    }

    /// Folds the current slot states into one snapshot. Sequence numbers
    /// are assigned by the events writer, not here, so resumed runs can
    /// continue a stream without duplicating them.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let _ = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut sim_cycles = self.done_cycles.load(Ordering::Relaxed);
        let mut supersteps = self.done_supersteps.load(Ordering::Relaxed);
        let mut skipped_cycles = self.done_skipped_cycles.load(Ordering::Relaxed);
        let mut workers = Vec::with_capacity(self.slots.len());
        for (i, s) in self.slots.iter().enumerate() {
            let slot = lock(s);
            let (c, ss, sk) = slot
                .probe
                .as_ref()
                .map(|p| (p.sim_cycles(), p.supersteps(), p.skipped_cycles()))
                .unwrap_or((0, 0, 0));
            sim_cycles += c;
            supersteps += ss;
            skipped_cycles += sk;
            workers.push(WorkerSnapshot {
                worker: i as u64,
                state: slot.state.label().to_string(),
                job: slot.job.clone(),
                attempt: slot.attempt,
                sim_cycles: c,
                supersteps: ss,
                skipped_cycles: sk,
                busy_ms: slot
                    .started
                    .map(|t| t.elapsed().as_millis() as u64)
                    .unwrap_or(0),
            });
        }

        let succeeded = self.succeeded.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let skipped = self.skipped.load(Ordering::Relaxed);
        let done = succeeded + failed + skipped;

        // Trailing-window throughput: only advance the anchor when enough
        // wall time has passed for the delta to mean something.
        let mut rate = lock(&self.rate);
        let dt = rate.at.elapsed().as_secs_f64();
        if dt >= 0.2 {
            let delta = sim_cycles.saturating_sub(rate.cycles) as f64;
            rate.rate = delta / dt / 1e6;
            rate.at = Instant::now();
            rate.cycles = sim_cycles;
        }
        let mcycles_per_sec = rate.rate;
        drop(rate);

        // ETA: median completed-job wall time × remaining jobs / workers.
        let eta_ms = {
            let mut walls = lock(&self.wall_ms).clone();
            let remaining = self.total.saturating_sub(done);
            if walls.is_empty() || remaining == 0 {
                None
            } else {
                walls.sort_unstable();
                let median = walls[walls.len() / 2];
                Some(median * remaining / self.workers.max(1) as u64)
            }
        };

        let groups = lock(&self.groups)
            .iter()
            .map(|(name, &(planned, finished))| GroupProgress {
                name: name.clone(),
                total: planned,
                done: finished,
            })
            .collect();

        TelemetrySnapshot {
            seq: 0,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            total: self.total,
            done,
            succeeded,
            failed,
            skipped,
            retries: self.retries.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            sim_cycles,
            supersteps,
            skipped_cycles,
            mcycles_per_sec,
            eta_ms,
            groups,
            workers,
        }
    }

    /// The stall watchdog: cancels any running job whose simulated clock
    /// has not advanced for longer than `budget`, returning the flagged
    /// job ids. Cancellation rides the probe's abort flag, so the job
    /// unwinds through the normal supervision error path.
    pub fn watchdog_scan(&self, budget: Duration) -> Vec<String> {
        let mut flagged = Vec::new();
        for s in &self.slots {
            let mut slot = lock(s);
            if slot.state != JobState::Running {
                continue;
            }
            let Some(probe) = slot.probe.clone() else {
                continue;
            };
            let stamp = probe.progress_stamp();
            if stamp != slot.watch_stamp || slot.watch_since.is_none() {
                slot.watch_stamp = stamp;
                slot.watch_since = Some(Instant::now());
                continue;
            }
            let stuck = slot.watch_since.map(|t| t.elapsed()).unwrap_or_default();
            if stuck >= budget && !probe.cancelled() {
                probe.cancel(&format!(
                    "stall watchdog: simulated clock stalled for {:.1}s (budget {:.1}s)",
                    stuck.as_secs_f64(),
                    budget.as_secs_f64()
                ));
                self.stalled.fetch_add(1, Ordering::Relaxed);
                if let Some(job) = &slot.job {
                    flagged.push(job.clone());
                }
            }
        }
        flagged
    }

    pub fn stalled(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counters_are_monotonic() {
        let p = ProgressProbe::new();
        p.record(100, 2, 10);
        p.record(50, 1, 5); // stale publish must not regress
        assert_eq!(p.sim_cycles(), 100);
        assert_eq!(p.supersteps(), 2);
        assert_eq!(p.skipped_cycles(), 10);
        p.record(200, 2, 10);
        assert_eq!(p.progress_stamp(), 202);
    }

    #[test]
    fn probe_cancel_first_reason_wins() {
        let p = ProgressProbe::new();
        assert!(!p.cancelled());
        assert_eq!(p.cancel_reason(), None);
        p.cancel("first");
        p.cancel("second");
        assert!(p.cancelled());
        assert_eq!(p.cancel_reason().as_deref(), Some("first"));
        // Clones observe the same state.
        assert!(p.clone().cancelled());
    }

    #[test]
    fn hub_banks_progress_and_groups() {
        let hub = MonitorHub::new(2, 3, &["s/a/insecure", "s/b/insecure", "s/a/dagguise"], 0);
        let p = hub.begin_job(0, "s/a/insecure", 0);
        p.record(1_000_000, 0, 0);
        let snap = hub.snapshot();
        assert_eq!(snap.total, 3);
        assert_eq!(snap.done, 0);
        assert_eq!(snap.sim_cycles, 1_000_000);
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[0].state, "running");
        assert_eq!(snap.workers[0].job.as_deref(), Some("s/a/insecure"));

        hub.end_job(0, true, 12);
        let snap = hub.snapshot();
        assert_eq!(snap.done, 1);
        assert_eq!(snap.succeeded, 1);
        // Banked progress survives the slot being freed.
        assert_eq!(snap.sim_cycles, 1_000_000);
        assert_eq!(snap.workers[0].state, "idle");
        let insecure = snap.groups.iter().find(|g| g.name == "insecure").unwrap();
        assert_eq!((insecure.total, insecure.done), (2, 1));
        let dagguise = snap.groups.iter().find(|g| g.name == "dagguise").unwrap();
        assert_eq!((dagguise.total, dagguise.done), (1, 0));
        assert!(snap.eta_ms.is_some());
    }

    #[test]
    fn hub_counts_resumed_jobs_as_done() {
        let hub = MonitorHub::new(1, 4, &["s/a/x", "s/b/x"], 2);
        let snap = hub.snapshot();
        assert_eq!(snap.done, 2);
        assert_eq!(snap.skipped, 2);
    }

    #[test]
    fn watchdog_flags_only_stalled_jobs() {
        let hub = MonitorHub::new(2, 2, &["s/a/x", "s/b/x"], 0);
        let stalled = hub.begin_job(0, "s/a/x", 0);
        let alive = hub.begin_job(1, "s/b/x", 0);

        // Within budget: nothing is flagged.
        assert!(hub.watchdog_scan(Duration::from_secs(60)).is_empty());

        // The live job advances; the stalled one does not.
        alive.record(10, 0, 0);
        std::thread::sleep(Duration::from_millis(20));
        let flagged = hub.watchdog_scan(Duration::from_millis(10));
        assert_eq!(flagged, vec!["s/a/x".to_string()]);
        assert!(stalled.cancelled());
        assert!(stalled.cancel_reason().unwrap().contains("stall watchdog"));
        assert!(!alive.cancelled());
        assert_eq!(hub.stalled(), 1);

        // Already-cancelled jobs are not flagged twice (the live job
        // keeps advancing, so it stays unflagged too).
        alive.record(20, 0, 0);
        std::thread::sleep(Duration::from_millis(20));
        alive.record(30, 0, 0);
        assert!(hub.watchdog_scan(Duration::from_millis(10)).is_empty());
        assert_eq!(hub.stalled(), 1);
    }

    #[test]
    fn retrying_state_visible_in_snapshot() {
        let hub = MonitorHub::new(1, 1, &["s/a/x"], 0);
        hub.begin_job(0, "s/a/x", 0);
        hub.job_retrying(0);
        let snap = hub.snapshot();
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.workers[0].state, "retrying");
        // A fresh attempt resets the probe and watchdog clock.
        let p2 = hub.begin_job(0, "s/a/x", 1);
        assert_eq!(p2.sim_cycles(), 0);
        assert_eq!(snap.workers[0].attempt, 0);
    }
}
