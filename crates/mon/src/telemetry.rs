//! Serializable telemetry snapshots.
//!
//! One [`TelemetrySnapshot`] is the unit both the `--live` dashboard
//! renders and the `--events` JSONL stream appends: a monotonic fold of
//! every worker heartbeat plus the sweep-level counters. Field values are
//! cumulative for the whole run (including progress banked by completed
//! jobs), so consumers can difference any two snapshots without replaying
//! the ones between.

use serde::{Deserialize, Serialize};

/// Per-defense (job-id tail segment) completion progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupProgress {
    pub name: String,
    /// Jobs planned for this group in the executing (non-resumed) set.
    pub total: u64,
    /// Jobs of this group that reached a terminal state this run.
    pub done: u64,
}

/// One pool worker's live state at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSnapshot {
    pub worker: u64,
    /// `idle`, `running`, or `retrying` (see `JobState::label`).
    pub state: String,
    pub job: Option<String>,
    pub attempt: u32,
    /// Simulated cycles advanced by the current attempt.
    pub sim_cycles: u64,
    /// Supersteps completed by the current attempt (sharded jobs only).
    pub supersteps: u64,
    /// Simulated cycles skipped via quiescence warps by the current attempt.
    pub skipped_cycles: u64,
    /// Host milliseconds this worker has spent on the current job.
    pub busy_ms: u64,
}

/// A monotonic point-in-time view of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Stream sequence number, assigned by the events writer (strictly
    /// increasing across a resume; 0 until stamped).
    pub seq: u64,
    /// Host milliseconds since the sweep started.
    pub elapsed_ms: u64,
    /// Total jobs in the sweep (including resumed ones).
    pub total: u64,
    /// Jobs in a terminal state: succeeded + failed + skipped.
    pub done: u64,
    pub succeeded: u64,
    pub failed: u64,
    /// Jobs satisfied from a resumed journal without re-execution.
    pub skipped: u64,
    /// Retry attempts issued so far.
    pub retries: u64,
    /// Jobs the stall watchdog has cancelled so far.
    pub stalled: u64,
    /// Simulated cycles advanced across all jobs (banked + live).
    pub sim_cycles: u64,
    /// Supersteps completed across all sharded jobs (banked + live).
    pub supersteps: u64,
    /// Simulated cycles skipped via quiescence warps (banked + live).
    pub skipped_cycles: u64,
    /// Trailing-window aggregate throughput, in simulated Mcycles per
    /// host second.
    pub mcycles_per_sec: f64,
    /// Estimated host milliseconds to completion (median completed-job
    /// wall time × remaining / workers); absent until a job completes.
    pub eta_ms: Option<u64>,
    pub groups: Vec<GroupProgress>,
    pub workers: Vec<WorkerSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            seq: 7,
            elapsed_ms: 1234,
            total: 4,
            done: 2,
            succeeded: 1,
            failed: 0,
            skipped: 1,
            retries: 1,
            stalled: 0,
            sim_cycles: 80_000_000,
            supersteps: 12,
            skipped_cycles: 5_000_000,
            mcycles_per_sec: 64.5,
            eta_ms: Some(900),
            groups: vec![GroupProgress {
                name: "dagguise".to_string(),
                total: 2,
                done: 1,
            }],
            workers: vec![WorkerSnapshot {
                worker: 0,
                state: "running".to_string(),
                job: Some("smoke/lbm-s1+bursty/dagguise".to_string()),
                attempt: 1,
                sim_cycles: 40_000_000,
                supersteps: 6,
                skipped_cycles: 0,
                busy_ms: 300,
            }],
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = sample();
        let text = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn none_eta_roundtrips() {
        let mut snap = sample();
        snap.eta_ms = None;
        let text = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.eta_ms, None);
    }
}
