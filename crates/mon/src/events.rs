//! Append-only JSONL events stream (`dg-run --events PATH`).
//!
//! Each line is one [`TelemetrySnapshot`] with a strictly increasing
//! `seq`. The stream follows the job journal's crash-tolerance contract:
//! a process killed mid-append may leave one partial final line, which a
//! resume repairs by truncating to the last valid line boundary;
//! corruption anywhere *before* the tail is an error, because an
//! append-only file can only ever be damaged at its end. Unlike the
//! journal the stream is observability, not recovery state, so appends
//! flush but do not fsync.

use dg_fault::{retry_io, FaultSink, IoPlan, IoStream, RetryPolicy};
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::Path;

use crate::telemetry::TelemetrySnapshot;

/// Result of scanning an existing events file.
#[derive(Debug)]
pub struct EventsScan {
    /// Every intact snapshot, in file order.
    pub snapshots: Vec<TelemetrySnapshot>,
    /// Highest `seq` among the intact snapshots (0 when empty).
    pub last_seq: u64,
    /// Whether a partial trailing line was found (and should be dropped).
    pub dropped_partial_tail: bool,
    /// Byte length of the valid prefix; truncate to this before appending.
    pub valid_len: u64,
}

/// Parses an events file, tolerating exactly one damaged final line.
pub fn scan_events(path: &Path) -> io::Result<EventsScan> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;

    let mut snapshots = Vec::new();
    let mut last_seq = 0u64;
    let mut valid_len = 0u64;
    let mut dropped_partial_tail = false;

    let mut offset = 0usize;
    let mut chunks = text.split_inclusive('\n').peekable();
    while let Some(chunk) = chunks.next() {
        let is_last = chunks.peek().is_none();
        let line = chunk.trim_end_matches('\n');
        let end = offset + chunk.len();
        if line.trim().is_empty() {
            valid_len = end as u64;
            offset = end;
            continue;
        }
        match serde_json::from_str::<TelemetrySnapshot>(line) {
            Ok(snap) => {
                last_seq = last_seq.max(snap.seq);
                snapshots.push(snap);
                valid_len = end as u64;
                offset = end;
            }
            Err(e) => {
                if is_last {
                    dropped_partial_tail = true;
                    break;
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt events line before tail at byte {offset}: {e}"),
                ));
            }
        }
    }

    Ok(EventsScan {
        snapshots,
        last_seq,
        dropped_partial_tail,
        valid_len,
    })
}

/// Truncates an events file to its valid prefix, dropping a damaged tail.
pub fn truncate_events(path: &Path, valid_len: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_len)?;
    f.sync_data()
}

/// Appends snapshots to an events file, stamping each with the next
/// sequence number.
///
/// Writes go through a [`FaultSink`] so transient interruptions retry at
/// the exact byte; with an unarmed [`IoPlan`] (the [`EventsWriter::open`]
/// path) the sink is a plain file writer.
pub struct EventsWriter {
    sink: FaultSink,
    retry: RetryPolicy,
    next_seq: u64,
}

impl EventsWriter {
    /// Opens the stream. With `resume` set, an existing file is scanned,
    /// a damaged tail repaired, and numbering continues after the highest
    /// surviving `seq` — so a resumed run extends the stream without
    /// duplicate snapshots. Without `resume` the file is recreated and
    /// numbering starts at 1.
    pub fn open(path: &Path, resume: bool) -> io::Result<(Self, bool)> {
        Self::open_faulted(path, resume, &IoPlan::none())
    }

    /// [`EventsWriter::open`] with an injectable fault plan.
    pub fn open_faulted(path: &Path, resume: bool, plan: &IoPlan) -> io::Result<(Self, bool)> {
        let mut repaired_tail = false;
        let next_seq = if resume && path.exists() {
            let scan = scan_events(path)?;
            if scan.dropped_partial_tail {
                truncate_events(path, scan.valid_len)?;
                repaired_tail = true;
            }
            scan.last_seq + 1
        } else {
            1
        };
        let sink = if resume && path.exists() {
            FaultSink::open_append(path, IoStream::Events, plan.clone())?
        } else {
            FaultSink::create(path, IoStream::Events, plan.clone())?
        };
        Ok((
            EventsWriter {
                sink,
                retry: RetryPolicy::default(),
                next_seq,
            },
            repaired_tail,
        ))
    }

    /// Stamps `snap.seq` and appends it as one line, retrying transient
    /// write errors in place. Unlike the journal there is no fsync —
    /// the stream is observability, not recovery state.
    pub fn append(&mut self, snap: &mut TelemetrySnapshot) -> io::Result<()> {
        snap.seq = self.next_seq;
        self.next_seq += 1;
        let line = serde_json::to_string(snap)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let Self { sink, retry, .. } = self;
        sink.stage(line.as_bytes());
        sink.stage(b"\n");
        retry_io(retry, || sink.drain())
    }

    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dg_mon_events_{name}_{}", std::process::id()))
    }

    fn blank() -> TelemetrySnapshot {
        TelemetrySnapshot {
            seq: 0,
            elapsed_ms: 0,
            total: 1,
            done: 0,
            succeeded: 0,
            failed: 0,
            skipped: 0,
            retries: 0,
            stalled: 0,
            sim_cycles: 0,
            supersteps: 0,
            skipped_cycles: 0,
            mcycles_per_sec: 0.0,
            eta_ms: None,
            groups: Vec::new(),
            workers: Vec::new(),
        }
    }

    #[test]
    fn writer_stamps_increasing_seqs() {
        let path = tmp("stamp");
        let (mut w, repaired) = EventsWriter::open(&path, false).unwrap();
        assert!(!repaired);
        for i in 0..3u64 {
            let mut s = blank();
            s.elapsed_ms = i * 100;
            w.append(&mut s).unwrap();
            assert_eq!(s.seq, i + 1);
        }
        drop(w);
        let scan = scan_events(&path).unwrap();
        assert_eq!(scan.snapshots.len(), 3);
        assert_eq!(scan.last_seq, 3);
        assert!(!scan.dropped_partial_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_repairs_partial_tail_and_continues_numbering() {
        let path = tmp("repair");
        let (mut w, _) = EventsWriter::open(&path, false).unwrap();
        for _ in 0..2 {
            w.append(&mut blank()).unwrap();
        }
        drop(w);
        // Simulate a crash mid-append: a torn final line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len();
        text.push_str("{\"seq\": 3, \"elapsed_ms\"");
        std::fs::write(&path, &text).unwrap();

        let (mut w, repaired) = EventsWriter::open(&path, true).unwrap();
        assert!(repaired);
        w.append(&mut blank()).unwrap();
        drop(w);

        let scan = scan_events(&path).unwrap();
        assert!(!scan.dropped_partial_tail);
        assert_eq!(scan.snapshots.len(), 3);
        let seqs: Vec<u64> = scan.snapshots.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(std::fs::metadata(&path).unwrap().len() > keep as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("midfile");
        std::fs::write(&path, "not json\n{\"also\": \"bad\"}\n").unwrap();
        let err = scan_events(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_open_truncates_existing_stream() {
        let path = tmp("fresh");
        let (mut w, _) = EventsWriter::open(&path, false).unwrap();
        w.append(&mut blank()).unwrap();
        drop(w);
        let (mut w, _) = EventsWriter::open(&path, false).unwrap();
        w.append(&mut blank()).unwrap();
        drop(w);
        let scan = scan_events(&path).unwrap();
        assert_eq!(scan.snapshots.len(), 1);
        assert_eq!(scan.last_seq, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
