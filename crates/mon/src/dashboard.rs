//! In-terminal dashboard for `dg-run --live`.
//!
//! On a tty the dashboard repaints a multi-line stderr region in place
//! (through the log module's shared gate, so diagnostics never shear the
//! paint). On a non-tty stderr it degrades to compact single-line
//! progress records, printed only when the completion counters change, so
//! redirected output stays readable.

use std::io::IsTerminal;

use crate::log::{clear_live, paint_live};
use crate::telemetry::TelemetrySnapshot;

pub struct Dashboard {
    ansi: bool,
    /// (done, retries, stalled) of the last non-tty line, to dedupe.
    last_plain: Option<(u64, u64, u64)>,
}

fn fmt_cycles(c: u64) -> String {
    if c >= 10_000_000_000 {
        format!("{:.1}G", c as f64 / 1e9)
    } else if c >= 10_000_000 {
        format!("{:.1}M", c as f64 / 1e6)
    } else if c >= 10_000 {
        format!("{:.1}k", c as f64 / 1e3)
    } else {
        c.to_string()
    }
}

fn fmt_eta(ms: Option<u64>) -> String {
    match ms {
        None => "--".to_string(),
        Some(ms) if ms >= 60_000 => format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1000),
        Some(ms) => format!("{:.1}s", ms as f64 / 1000.0),
    }
}

fn bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        width
    } else {
        (done as usize * width) / total as usize
    };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '-' });
    }
    s
}

impl Dashboard {
    pub fn new() -> Self {
        Dashboard {
            ansi: std::io::stderr().is_terminal(),
            last_plain: None,
        }
    }

    /// Renders one snapshot: full region repaint on a tty, changed-only
    /// compact line otherwise.
    pub fn render(&mut self, snap: &TelemetrySnapshot) {
        if self.ansi {
            paint_live(&self.compose(snap), true);
        } else {
            let key = (snap.done, snap.retries, snap.stalled);
            if self.last_plain != Some(key) {
                self.last_plain = Some(key);
                crate::log_info!(
                    "sweep progress";
                    "done" => format!("{}/{}", snap.done, snap.total),
                    "ok" => snap.succeeded,
                    "failed" => snap.failed,
                    "retries" => snap.retries,
                    "stalled" => snap.stalled,
                    "mcps" => format!("{:.1}", snap.mcycles_per_sec),
                    "eta" => fmt_eta(snap.eta_ms)
                );
            }
        }
    }

    fn compose(&self, snap: &TelemetrySnapshot) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "dg-run [{}] {}/{} jobs  ok={} fail={} skip={} retry={} stall={}",
            bar(snap.done, snap.total, 24),
            snap.done,
            snap.total,
            snap.succeeded,
            snap.failed,
            snap.skipped,
            snap.retries,
            snap.stalled,
        ));
        lines.push(format!(
            "  {:.1} sim-Mcycles/s  cycles={} warped={}  elapsed={:.1}s  eta={}",
            snap.mcycles_per_sec,
            fmt_cycles(snap.sim_cycles),
            fmt_cycles(snap.skipped_cycles),
            snap.elapsed_ms as f64 / 1000.0,
            fmt_eta(snap.eta_ms),
        ));
        if !snap.groups.is_empty() {
            let cells: Vec<String> = snap
                .groups
                .iter()
                .map(|g| format!("{} {}/{}", g.name, g.done, g.total))
                .collect();
            lines.push(format!("  defenses: {}", cells.join("  ")));
        }
        for w in &snap.workers {
            let detail = match w.job.as_deref() {
                Some(job) => format!(
                    "{job} a{} cyc={} steps={} {:.1}s",
                    w.attempt,
                    fmt_cycles(w.sim_cycles),
                    w.supersteps,
                    w.busy_ms as f64 / 1000.0
                ),
                None => String::new(),
            };
            lines.push(format!("  w{} {:<8} {}", w.worker, w.state, detail));
        }
        lines
    }

    /// Erases the live region at the end of the run (tty only).
    pub fn finish(&mut self) {
        if self.ansi {
            clear_live();
        }
    }
}

impl Default for Dashboard {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(40_000_000), "40.0M");
        assert_eq!(fmt_cycles(12_500_000_000), "12.5G");
        assert_eq!(fmt_eta(None), "--");
        assert_eq!(fmt_eta(Some(1500)), "1.5s");
        assert_eq!(fmt_eta(Some(125_000)), "2m05s");
        assert_eq!(bar(2, 4, 8), "####----");
        assert_eq!(bar(0, 0, 4), "####");
    }

    #[test]
    fn compose_covers_all_sections() {
        let snap = TelemetrySnapshot {
            seq: 1,
            elapsed_ms: 2500,
            total: 4,
            done: 1,
            succeeded: 1,
            failed: 0,
            skipped: 0,
            retries: 0,
            stalled: 0,
            sim_cycles: 40_000_000,
            supersteps: 3,
            skipped_cycles: 1_000_000,
            mcycles_per_sec: 16.0,
            eta_ms: Some(7500),
            groups: vec![crate::GroupProgress {
                name: "dagguise".into(),
                total: 2,
                done: 1,
            }],
            workers: vec![crate::WorkerSnapshot {
                worker: 0,
                state: "running".into(),
                job: Some("s/a/dagguise".into()),
                attempt: 0,
                sim_cycles: 10_000_000,
                supersteps: 1,
                skipped_cycles: 0,
                busy_ms: 800,
            }],
        };
        let dash = Dashboard {
            ansi: false,
            last_plain: None,
        };
        let lines = dash.compose(&snap);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("1/4 jobs"));
        assert!(lines[1].contains("16.0 sim-Mcycles/s"));
        assert!(lines[2].contains("dagguise 1/2"));
        assert!(lines[3].contains("s/a/dagguise"));
    }
}
