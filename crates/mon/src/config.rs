//! Monitor configuration: dashboard, events stream, watchdog knobs.

use std::path::PathBuf;
use std::time::Duration;

/// How a sweep should be monitored. The zero value (all off) is the
/// default so existing callers pay nothing.
#[derive(Debug, Clone, Default)]
pub struct MonitorConfig {
    /// Render the in-terminal dashboard (`dg-run --live`).
    pub live: bool,
    /// Stream snapshots as append-only JSONL (`dg-run --events PATH`).
    pub events: Option<PathBuf>,
    /// Cancel a running job whose simulated clock has not advanced within
    /// this host-time budget (`--stall-s` / `DG_MON_STALL_S`).
    pub stall_timeout: Option<Duration>,
    /// Snapshot/watchdog sampling period (`DG_MON_INTERVAL_MS`); the
    /// zero value means "use [`MonitorConfig::interval`]'s default".
    pub interval: Option<Duration>,
}

impl MonitorConfig {
    /// Environment-seeded config: `DG_MON_STALL_S` (fractional seconds)
    /// and `DG_MON_INTERVAL_MS`. Unparseable values are ignored.
    pub fn from_env() -> Self {
        let mut cfg = MonitorConfig::default();
        if let Ok(v) = std::env::var("DG_MON_STALL_S") {
            if let Ok(secs) = v.trim().parse::<f64>() {
                if secs > 0.0 {
                    cfg.stall_timeout = Some(Duration::from_secs_f64(secs));
                }
            }
        }
        if let Ok(v) = std::env::var("DG_MON_INTERVAL_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                if ms > 0 {
                    cfg.interval = Some(Duration::from_millis(ms));
                }
            }
        }
        cfg
    }

    /// Whether any monitoring machinery needs to run at all.
    pub fn enabled(&self) -> bool {
        self.live || self.events.is_some() || self.stall_timeout.is_some()
    }

    /// The effective sampling period (default 500 ms, clamped down to the
    /// stall budget so the watchdog can actually fire within it).
    pub fn interval(&self) -> Duration {
        let base = self.interval.unwrap_or(Duration::from_millis(500));
        match self.stall_timeout {
            Some(stall) if stall < base => stall.max(Duration::from_millis(10)),
            _ => base.max(Duration::from_millis(10)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let cfg = MonitorConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.interval(), Duration::from_millis(500));
    }

    #[test]
    fn any_feature_enables() {
        let cfg = MonitorConfig {
            live: true,
            ..Default::default()
        };
        assert!(cfg.enabled());
        let cfg = MonitorConfig {
            events: Some("e.jsonl".into()),
            ..Default::default()
        };
        assert!(cfg.enabled());
        let cfg = MonitorConfig {
            stall_timeout: Some(Duration::from_secs(1)),
            ..Default::default()
        };
        assert!(cfg.enabled());
    }

    #[test]
    fn interval_clamps_to_stall_budget() {
        let cfg = MonitorConfig {
            stall_timeout: Some(Duration::from_millis(100)),
            ..Default::default()
        };
        assert_eq!(cfg.interval(), Duration::from_millis(100));
        let cfg = MonitorConfig {
            stall_timeout: Some(Duration::from_millis(1)),
            ..Default::default()
        };
        assert_eq!(cfg.interval(), Duration::from_millis(10));
        let cfg = MonitorConfig {
            interval: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        assert_eq!(cfg.interval(), Duration::from_millis(50));
    }
}
