//! `dg-trend`: noise-aware perf-trend gate over `BENCH_perf.json`.
//!
//! Reads the benchmark run history, stratifies each scenario by its
//! comparable context (mode, shards, threads, host parallelism), and
//! judges the latest sample against the trailing-window median ± MAD.
//! Exits 0 when no series regressed, 1 on regression, 2 on usage or
//! structural errors — so ci.sh can use it directly as a gate.

use std::process::ExitCode;

use dg_mon::{analyze_document, TrendOptions};

fn usage() {
    eprintln!(
        "usage: dg-trend [PATH] [options]\n\
         \n\
         Judge the latest benchmark run in PATH (default BENCH_perf.json)\n\
         against its trailing history with noise-aware verdicts.\n\
         \n\
         options:\n\
           --window N       trailing samples to compare against (default 8)\n\
           --min-history N  priors required for an active verdict (default 4)\n\
           --min-drop PCT   noise floor in percent (default 10)\n\
           --noise-k K      tolerated noise sigmas, MAD-estimated (default 2)\n\
           --inject PCT     append a synthetic PCT%-slower run to every\n\
                            series first (self-test for the gate)\n\
           --quiet          print only regressions\n\
           -h, --help       show this help"
    );
}

fn main() -> ExitCode {
    let mut path = String::from("BENCH_perf.json");
    let mut path_set = false;
    let mut opts = TrendOptions::default();
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--window" => {
                    opts.window = value("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?;
                }
                "--min-history" => {
                    opts.min_history = value("--min-history")?
                        .parse()
                        .map_err(|e| format!("--min-history: {e}"))?;
                }
                "--min-drop" => {
                    let pct: f64 = value("--min-drop")?
                        .parse()
                        .map_err(|e| format!("--min-drop: {e}"))?;
                    opts.min_drop = pct / 100.0;
                }
                "--noise-k" => {
                    opts.noise_k = value("--noise-k")?
                        .parse()
                        .map_err(|e| format!("--noise-k: {e}"))?;
                }
                "--inject" => {
                    opts.inject_pct = Some(
                        value("--inject")?
                            .parse()
                            .map_err(|e| format!("--inject: {e}"))?,
                    );
                }
                "--quiet" => quiet = true,
                "-h" | "--help" => {
                    usage();
                    std::process::exit(0);
                }
                _ if !arg.starts_with('-') && !path_set => {
                    path = arg.clone();
                    path_set = true;
                }
                _ => return Err(format!("unknown argument: {arg}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("dg-trend: {e}");
            usage();
            return ExitCode::from(2);
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dg-trend: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match analyze_document(&text, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dg-trend: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        print!("{}", report.table());
    }

    let regressions = report.regressions();
    if regressions.is_empty() {
        if !quiet {
            println!(
                "dg-trend: no regressions across {} series{}",
                report.rows.len(),
                if report.injected {
                    " (with injection)"
                } else {
                    ""
                }
            );
        }
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            println!(
                "dg-trend: REGRESSION {} [{}]: {:.3} vs median {:.3} ({:+.1}%, allowed ±{:.1}%)",
                r.scenario, r.stratum, r.latest, r.median, r.delta_pct, r.allowed_pct
            );
        }
        ExitCode::from(1)
    }
}
