//! Planned host-IO faults: what fails, where, and how often.
//!
//! A fault is addressed by *stream* (which artifact), *byte offset*
//! (where in the stream's lifetime byte count), and *kind* (which errno
//! shape). Offsets are cumulative bytes written through the sink since
//! it was opened on a fresh file (or since the start of the existing
//! file when appending), so a plan replays identically against the same
//! write sequence regardless of host timing.

use std::fmt;

/// Which artifact stream a fault targets. The runner routes each durable
/// artifact through a [`FaultSink`](crate::FaultSink) tagged with one of
/// these, so a plan can fill the disk under the journal while leaving
/// the report path healthy (or vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStream {
    /// The crash-safe job journal (`--journal`).
    Journal,
    /// The live-telemetry events stream (`--events`).
    Events,
    /// Merged report artifacts (`--out` and siblings).
    Report,
}

impl IoStream {
    /// The stable spec-string name.
    pub fn label(self) -> &'static str {
        match self {
            IoStream::Journal => "journal",
            IoStream::Events => "events",
            IoStream::Report => "report",
        }
    }

    /// Resolves a spec-string name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "journal" => Some(IoStream::Journal),
            "events" => Some(IoStream::Events),
            "report" => Some(IoStream::Report),
            _ => None,
        }
    }
}

/// The errno shape an injected IO failure takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// `ENOSPC`: the disk is full from the fault's byte offset on. Writes
    /// that would carry the stream past the offset fail persistently (the
    /// space never comes back within the run) — the runner's cue to
    /// degrade, not retry.
    Enospc,
    /// `EINTR`: the write is interrupted before transferring anything.
    /// Transient — a bounded retry succeeds once the fault's repeat count
    /// is exhausted.
    Eintr,
    /// A short write: bytes up to the fault offset are transferred, the
    /// rest are not, and the call fails with an interrupted error.
    /// Transient, but only a sink that tracks its own byte position can
    /// resume without duplicating the prefix.
    Partial,
    /// `fsync` fails with `EIO` once the stream has reached the fault
    /// offset. Persistent: after a failed fsync the kernel may have
    /// dropped the dirty pages, so durability of the tail is gone either
    /// way.
    FsyncFail,
}

impl IoFaultKind {
    /// The stable spec-string name.
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::Eintr => "eintr",
            IoFaultKind::Partial => "partial",
            IoFaultKind::FsyncFail => "fsync",
        }
    }

    /// Resolves a spec-string name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "enospc" => Some(IoFaultKind::Enospc),
            "eintr" => Some(IoFaultKind::Eintr),
            "partial" => Some(IoFaultKind::Partial),
            "fsync" => Some(IoFaultKind::FsyncFail),
            _ => None,
        }
    }

    /// How many times this kind fires by default: transient kinds fire
    /// once (then the "signal" or "scheduler hiccup" has passed),
    /// persistent kinds fire forever (`0` = unlimited — a full disk stays
    /// full).
    pub fn default_times(self) -> u32 {
        match self {
            IoFaultKind::Enospc | IoFaultKind::FsyncFail => 0,
            IoFaultKind::Eintr | IoFaultKind::Partial => 1,
        }
    }
}

/// One planned IO fault: `stream@byte:kind[xN]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// The artifact stream to fault.
    pub stream: IoStream,
    /// Cumulative byte offset in the stream at which the fault arms.
    pub at_byte: u64,
    /// The errno shape.
    pub kind: IoFaultKind,
    /// How many times the fault fires (`0` = unlimited).
    pub times: u32,
}

impl IoFault {
    /// Parses one fault spec of the form `stream@byte:kind` with an
    /// optional `xN` repeat suffix, e.g. `journal@300:enospc` or
    /// `events@0:eintrx3`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed specs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let bad = || format!("bad fault spec `{spec}` (expected stream@byte:kind[xN])");
        let (stream_s, rest) = spec.split_once('@').ok_or_else(bad)?;
        let (byte_s, kind_s) = rest.split_once(':').ok_or_else(bad)?;
        let stream = IoStream::by_name(stream_s).ok_or_else(|| {
            format!("unknown fault stream `{stream_s}` (expected journal, events, or report)")
        })?;
        let at_byte: u64 = byte_s
            .parse()
            .map_err(|_| format!("bad fault byte offset `{byte_s}` in `{spec}`"))?;
        let (kind_name, times) = match kind_s.split_once('x') {
            Some((k, n)) => {
                let times: u32 = n
                    .parse()
                    .map_err(|_| format!("bad fault repeat count `{n}` in `{spec}`"))?;
                (k, Some(times))
            }
            None => (kind_s, None),
        };
        let kind = IoFaultKind::by_name(kind_name).ok_or_else(|| {
            format!("unknown fault kind `{kind_name}` (expected enospc, eintr, partial, or fsync)")
        })?;
        Ok(IoFault {
            stream,
            at_byte,
            kind,
            times: times.unwrap_or_else(|| kind.default_times()),
        })
    }
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}:{}",
            self.stream.label(),
            self.at_byte,
            self.kind.label()
        )?;
        if self.times != self.kind.default_times() {
            write!(f, "x{}", self.times)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let f = IoFault::parse("journal@300:enospc").unwrap();
        assert_eq!(f.stream, IoStream::Journal);
        assert_eq!(f.at_byte, 300);
        assert_eq!(f.kind, IoFaultKind::Enospc);
        assert_eq!(f.times, 0, "enospc is persistent by default");

        let f = IoFault::parse("events@0:eintrx3").unwrap();
        assert_eq!(f.stream, IoStream::Events);
        assert_eq!(f.kind, IoFaultKind::Eintr);
        assert_eq!(f.times, 3);

        let f = IoFault::parse("report@17:partial").unwrap();
        assert_eq!(f.times, 1, "partial writes are one-shot by default");
        assert_eq!(IoFault::parse("journal@40:fsync").unwrap().times, 0);
    }

    #[test]
    fn display_round_trips() {
        for spec in ["journal@300:enospc", "events@0:eintrx3", "report@9:partial"] {
            let f = IoFault::parse(spec).unwrap();
            assert_eq!(f.to_string(), spec);
            assert_eq!(IoFault::parse(&f.to_string()).unwrap(), f);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "journal300:enospc",
            "journal@300",
            "disk@300:enospc",
            "journal@xyz:enospc",
            "journal@300:rain",
            "journal@300:eintrxq",
            "",
        ] {
            assert!(IoFault::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
