//! The injectable IO facade: a file sink that consults a fault plan.
//!
//! [`FaultSink`] is the write path the runner's durable artifacts go
//! through. Callers *stage* a whole record (one JSONL line), then
//! *drain* it to the file; the sink tracks its cumulative byte position,
//! so a retried drain after an injected `EINTR` or partial write resumes
//! at the exact byte where the last attempt stopped — never duplicating
//! a prefix mid-file. With an empty [`IoPlan`] every operation is a
//! plain passthrough to the file.

use crate::plan::{IoFault, IoFaultKind, IoStream};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// `ENOSPC` as a raw OS error, so `io::Error::raw_os_error` round-trips
/// exactly like a real full disk.
const ENOSPC: i32 = 28;
/// `EINTR` as a raw OS error. Maps to `ErrorKind::Interrupted`.
const EINTR: i32 = 4;

/// One scheduled fault plus how many times it has fired.
#[derive(Debug)]
struct PlannedFault {
    fault: IoFault,
    fired: u32,
}

impl PlannedFault {
    fn armed(&self) -> bool {
        self.fault.times == 0 || self.fired < self.fault.times
    }
}

/// A shared, clonable fault plan. The default (and [`IoPlan::none`]) is
/// unarmed: sinks short-circuit every check, so a plan-free run takes
/// exactly the passthrough path. Cloning shares fire counts — the same
/// plan handed to the journal writer and the events writer is one
/// budgeted schedule, not two.
#[derive(Debug, Clone, Default)]
pub struct IoPlan {
    inner: Option<Arc<Mutex<Vec<PlannedFault>>>>,
}

impl IoPlan {
    /// The unarmed plan: every sink operation is a passthrough.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit faults.
    pub fn from_faults(faults: Vec<IoFault>) -> Self {
        if faults.is_empty() {
            return Self::none();
        }
        let planned = faults
            .into_iter()
            .map(|fault| PlannedFault { fault, fired: 0 })
            .collect();
        Self {
            inner: Some(Arc::new(Mutex::new(planned))),
        }
    }

    /// Parses `stream@byte:kind[xN]` specs (see [`IoFault::parse`]) into
    /// one plan.
    ///
    /// # Errors
    ///
    /// Returns the first parse failure.
    pub fn parse<S: AsRef<str>>(specs: &[S]) -> Result<Self, String> {
        let faults = specs
            .iter()
            .map(|s| IoFault::parse(s.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_faults(faults))
    }

    /// Whether any fault is scheduled at all (fired or not).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Consults the plan for a write of `len` bytes starting at stream
    /// position `pos`. Returns the fault kind to inject plus the armed
    /// byte offset (the split point for partial writes), marking the
    /// fault fired.
    fn take_write_fault(&self, stream: IoStream, pos: u64, len: u64) -> Option<(IoFaultKind, u64)> {
        let inner = self.inner.as_ref()?;
        let mut plan = inner.lock().expect("fault plan lock");
        for p in plan.iter_mut() {
            if p.fault.stream != stream || !p.armed() {
                continue;
            }
            let hit = match p.fault.kind {
                // The disk is full from `at_byte`: any write that would
                // carry the stream past it fails.
                IoFaultKind::Enospc => pos + len > p.fault.at_byte,
                // Interruptions hit the write that crosses the offset.
                IoFaultKind::Eintr | IoFaultKind::Partial => {
                    pos <= p.fault.at_byte && p.fault.at_byte < pos + len
                }
                IoFaultKind::FsyncFail => false,
            };
            if hit {
                p.fired += 1;
                return Some((p.fault.kind, p.fault.at_byte));
            }
        }
        None
    }

    /// Consults the plan for an fsync at stream position `pos`.
    fn take_sync_fault(&self, stream: IoStream, pos: u64) -> bool {
        let Some(inner) = self.inner.as_ref() else {
            return false;
        };
        let mut plan = inner.lock().expect("fault plan lock");
        for p in plan.iter_mut() {
            if p.fault.stream == stream
                && p.fault.kind == IoFaultKind::FsyncFail
                && p.armed()
                && pos >= p.fault.at_byte
            {
                p.fired += 1;
                return true;
            }
        }
        false
    }
}

fn enospc_error(stream: IoStream, pos: u64) -> io::Error {
    // Raw errno, not `ErrorKind::StorageFull` by name: raw_os_error is
    // what real ENOSPC carries and what classification keys on.
    let os = io::Error::from_raw_os_error(ENOSPC);
    io::Error::new(
        os.kind(),
        format!("injected ENOSPC on {} stream at byte {pos}", stream.label()),
    )
}

fn eintr_error(stream: IoStream, pos: u64) -> io::Error {
    let os = io::Error::from_raw_os_error(EINTR);
    io::Error::new(
        os.kind(),
        format!("injected EINTR on {} stream at byte {pos}", stream.label()),
    )
}

fn partial_error(stream: IoStream, wrote: u64, total: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!(
            "injected partial write on {} stream: {wrote} of {total} bytes transferred",
            stream.label()
        ),
    )
}

fn fsync_error(stream: IoStream, pos: u64) -> io::Error {
    io::Error::other(format!(
        "injected fsync failure (EIO) on {} stream at byte {pos}",
        stream.label()
    ))
}

/// A record-oriented file sink that consults an [`IoPlan`] on every
/// write and fsync.
///
/// The staging buffer is the unit of durability: callers stage one
/// logical record (bytes), then drain. A drain that fails part-way keeps
/// the untransferred remainder staged, so retrying the drain continues
/// from the exact byte offset — the invariant that makes transient-fault
/// retry safe for append-only JSONL files.
#[derive(Debug)]
pub struct FaultSink {
    file: File,
    stream: IoStream,
    plan: IoPlan,
    /// Cumulative bytes actually written to the file through this sink
    /// (starting from the pre-existing length when opened for append).
    pos: u64,
    /// Staged-but-unwritten bytes.
    pending: Vec<u8>,
}

impl FaultSink {
    /// Opens (creating parent directories as needed) a file for
    /// appending; the fault-plan position starts at the existing length.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append(path: &Path, stream: IoStream, plan: IoPlan) -> io::Result<Self> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let pos = file.metadata()?.len();
        Ok(Self {
            file,
            stream,
            plan,
            pos,
            pending: Vec::new(),
        })
    }

    /// Creates (truncating) a file; the fault-plan position starts at 0.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, stream: IoStream, plan: IoPlan) -> io::Result<Self> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        Ok(Self {
            file: File::create(path)?,
            stream,
            plan,
            pos: 0,
            pending: Vec::new(),
        })
    }

    /// Stages bytes for the next [`FaultSink::drain`]. Staging never
    /// fails; faults fire on the write path.
    pub fn stage(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Whether staged bytes remain untransferred (a failed drain leaves
    /// its remainder staged).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Writes all staged bytes to the file, consulting the fault plan.
    /// On an injected partial write, the transferred prefix is unstaged
    /// (and counted into the position) before the error returns, so a
    /// retry picks up exactly where the fault struck.
    ///
    /// # Errors
    ///
    /// Injected faults or real filesystem errors.
    pub fn drain(&mut self) -> io::Result<()> {
        while !self.pending.is_empty() {
            let len = self.pending.len() as u64;
            if let Some((kind, at)) = self.plan.take_write_fault(self.stream, self.pos, len) {
                match kind {
                    IoFaultKind::Enospc => return Err(enospc_error(self.stream, self.pos)),
                    IoFaultKind::Eintr => return Err(eintr_error(self.stream, self.pos)),
                    IoFaultKind::Partial => {
                        let keep = (at.saturating_sub(self.pos)).min(len) as usize;
                        self.file.write_all(&self.pending[..keep])?;
                        self.pending.drain(..keep);
                        self.pos += keep as u64;
                        return Err(partial_error(self.stream, keep as u64, len));
                    }
                    IoFaultKind::FsyncFail => unreachable!("fsync faults fire on sync"),
                }
            }
            self.file.write_all(&self.pending)?;
            self.pos += len;
            self.pending.clear();
        }
        Ok(())
    }

    /// Syncs file data to disk, consulting the fault plan.
    ///
    /// # Errors
    ///
    /// An injected fsync failure or a real one.
    pub fn sync_data(&mut self) -> io::Result<()> {
        if self.plan.take_sync_fault(self.stream, self.pos) {
            return Err(fsync_error(self.stream, self.pos));
        }
        self.file.sync_data()
    }

    /// Cumulative bytes written through this sink (including any
    /// pre-existing length when opened for append).
    pub fn position(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dg_fault_sink_{name}_{}", std::process::id()))
    }

    fn plan(specs: &[&str]) -> IoPlan {
        IoPlan::parse(specs).unwrap()
    }

    #[test]
    fn unarmed_plan_is_passthrough() {
        let path = tmp("passthrough");
        let mut sink = FaultSink::create(&path, IoStream::Journal, IoPlan::none()).unwrap();
        sink.stage(b"hello\n");
        sink.drain().unwrap();
        sink.sync_data().unwrap();
        assert_eq!(sink.position(), 6);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_is_persistent_and_write_atomic() {
        let path = tmp("enospc");
        let mut sink =
            FaultSink::create(&path, IoStream::Journal, plan(&["journal@10:enospc"])).unwrap();
        sink.stage(b"0123456789"); // exactly fills the "disk"
        sink.drain().unwrap();
        sink.stage(b"x");
        let err = sink.drain().unwrap_err();
        assert_eq!(err.kind(), io::Error::from_raw_os_error(28).kind());
        // Still full on every retry; nothing leaked to the file.
        assert!(sink.drain().is_err());
        assert!(sink.has_pending());
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn eintr_fires_n_times_then_clears() {
        let path = tmp("eintr");
        let mut sink =
            FaultSink::create(&path, IoStream::Events, plan(&["events@0:eintrx2"])).unwrap();
        sink.stage(b"abc");
        assert_eq!(sink.drain().unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(sink.drain().unwrap_err().kind(), io::ErrorKind::Interrupted);
        sink.drain().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_write_resumes_at_exact_byte() {
        let path = tmp("partial");
        let mut sink =
            FaultSink::create(&path, IoStream::Journal, plan(&["journal@4:partial"])).unwrap();
        sink.stage(b"0123456789");
        let err = sink.drain().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(sink.position(), 4);
        assert!(sink.has_pending());
        // The retry writes only the remainder — no duplicated prefix.
        sink.drain().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_fault_fires_at_offset() {
        let path = tmp("fsync");
        let mut sink =
            FaultSink::create(&path, IoStream::Journal, plan(&["journal@4:fsyncx1"])).unwrap();
        sink.stage(b"ab");
        sink.drain().unwrap();
        sink.sync_data().unwrap(); // position 2 < 4: not armed yet
        sink.stage(b"cd");
        sink.drain().unwrap();
        assert!(sink.sync_data().is_err());
        sink.sync_data().unwrap(); // x1: fired out
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streams_are_independent() {
        let path = tmp("streams");
        let shared = plan(&["journal@0:enospc"]);
        let mut sink = FaultSink::create(&path, IoStream::Events, shared).unwrap();
        sink.stage(b"ok");
        sink.drain().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_positions_after_existing_bytes() {
        let path = tmp("append_pos");
        std::fs::write(&path, b"12345").unwrap();
        let sink = FaultSink::open_append(&path, IoStream::Journal, IoPlan::none()).unwrap();
        assert_eq!(sink.position(), 5);
        std::fs::remove_file(&path).unwrap();
    }
}
