//! Simulation-layer faults: deterministic model-level failure modes.
//!
//! Each kind is paired with the supervision mechanism that must catch
//! it, so a chaos sweep is a live proof of the runner's defenses:
//!
//! | fault            | symptom                         | caught by            |
//! |------------------|---------------------------------|----------------------|
//! | [`StuckBank`]    | responses held for a window     | deadline → retry     |
//! | [`DropResponse`] | a core waits forever            | deadline → quarantine|
//! | [`FreezeClock`]  | simulated clock stops advancing | stall watchdog       |
//! | [`Panic`]        | worker thread panics            | panic isolation      |
//!
//! Faults are drawn per job id from a seed ([`draw_sim_fault`]), so
//! `--fault-seed 7` assigns the same faults to the same jobs on every
//! host — a failed chaos sweep reproduces from its quarantine bundle.
//!
//! [`StuckBank`]: SimFaultKind::StuckBank
//! [`DropResponse`]: SimFaultKind::DropResponse
//! [`FreezeClock`]: SimFaultKind::FreezeClock
//! [`Panic`]: SimFaultKind::Panic

use std::fmt;
use std::time::{Duration, Instant};

/// A model-level fault, injected into `System`/`ShardedSystem` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFaultKind {
    /// A memory bank wedges: every response completing in
    /// `[at, at + hold)` is held and delivered in arrival order at
    /// `at + hold`. Transient by nature — first-attempt-only draws model
    /// a glitch an escalated retry rides out.
    StuckBank {
        /// Cycle at which the bank wedges.
        at: u64,
        /// Cycles the bank stays wedged.
        hold: u64,
    },
    /// The `nth` (1-based) response bound for the primary domain is
    /// silently dropped, so the victim core waits forever and the run
    /// can only end by exhausting its cycle budget. Persistent: every
    /// attempt loses the same response.
    DropResponse {
        /// Which primary-domain response to drop (1-based).
        nth: u64,
    },
    /// The *simulated* clock freezes at cycle `at` while host time keeps
    /// passing — the livelock signature the stall watchdog exists to
    /// catch. Implemented at the supervision layer (the chunked run loop
    /// pins the clock and keeps heartbeating the frozen value).
    FreezeClock {
        /// Cycle at which the simulated clock pins.
        at: u64,
    },
    /// The worker thread panics deterministically at cycle `at`,
    /// exercising the runner's per-job panic isolation.
    Panic {
        /// Cycle at which the panic fires.
        at: u64,
    },
}

impl SimFaultKind {
    /// Whether this fault needs the reference (unsharded) data plane:
    /// bank/response faults live inside the single-`System` memory tick
    /// and are not modeled by the sharded runtime.
    pub fn needs_reference_runtime(self) -> bool {
        matches!(
            self,
            SimFaultKind::StuckBank { .. } | SimFaultKind::DropResponse { .. }
        )
    }

    /// Whether this kind recurs on retries by default. Data-loss and
    /// crash faults are modeled as persistent (the "bad config point"
    /// shape that must end in quarantine); stalls and glitches are
    /// one-time (a fresh attempt genuinely recovers).
    pub fn default_every_attempt(self) -> bool {
        matches!(
            self,
            SimFaultKind::DropResponse { .. } | SimFaultKind::Panic { .. }
        )
    }
}

impl fmt::Display for SimFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimFaultKind::StuckBank { at, hold } => write!(f, "stuck@{at}+{hold}"),
            SimFaultKind::DropResponse { nth } => write!(f, "drop@{nth}"),
            SimFaultKind::FreezeClock { at } => write!(f, "freeze@{at}"),
            SimFaultKind::Panic { at } => write!(f, "panic@{at}"),
        }
    }
}

/// A simulation fault with its retry scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimFault {
    /// What goes wrong.
    pub kind: SimFaultKind,
    /// Whether the fault re-fires on retry attempts (`false` =
    /// first-attempt-only, so a retry proves recovery).
    pub every_attempt: bool,
}

impl SimFault {
    /// Wraps a kind with its default retry scope
    /// (see [`SimFaultKind::default_every_attempt`]).
    pub fn new(kind: SimFaultKind) -> Self {
        Self {
            kind,
            every_attempt: kind.default_every_attempt(),
        }
    }

    /// Whether the fault fires on the given zero-based attempt.
    pub fn fires_on(&self, attempt: u32) -> bool {
        self.every_attempt || attempt == 0
    }

    /// Parses `stuck@AT+HOLD`, `drop@NTH`, `freeze@AT`, or `panic@AT`,
    /// with an optional trailing `!` forcing the fault onto every
    /// attempt.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed specs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (body, forced) = match spec.strip_suffix('!') {
            Some(b) => (b, true),
            None => (spec, false),
        };
        let bad = || {
            format!(
                "bad sim fault `{spec}` (expected stuck@AT+HOLD, drop@NTH, freeze@AT, or panic@AT)"
            )
        };
        let (name, args) = body.split_once('@').ok_or_else(bad)?;
        let num = |s: &str| s.parse::<u64>().map_err(|_| bad());
        let kind = match name {
            "stuck" => {
                let (at, hold) = args.split_once('+').ok_or_else(bad)?;
                SimFaultKind::StuckBank {
                    at: num(at)?,
                    hold: num(hold)?,
                }
            }
            "drop" => SimFaultKind::DropResponse { nth: num(args)? },
            "freeze" => SimFaultKind::FreezeClock { at: num(args)? },
            "panic" => SimFaultKind::Panic { at: num(args)? },
            _ => return Err(bad()),
        };
        let mut fault = Self::new(kind);
        if forced {
            fault.every_attempt = true;
        }
        Ok(fault)
    }
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if self.every_attempt && !self.kind.default_every_attempt() {
            write!(f, "!")?;
        }
        Ok(())
    }
}

/// FNV-1a over bytes, finished with a SplitMix64 mix — the same recipe
/// the runner uses for job seeds, duplicated here so `dg-fault` stays
/// dependency-free.
fn mix_id(seed: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix(h)
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws the fault (if any) a chaos plan assigns to `job_id`: a pure
/// function of `(seed, job_id, rate)`. `rate` is the probability in
/// `[0, 1]` that the job gets a fault at all; kinds are equally likely
/// among the assigned.
pub fn draw_sim_fault(seed: u64, job_id: &str, rate: f64) -> Option<SimFault> {
    let h = mix_id(seed, job_id);
    // 53 uniform mantissa bits -> [0, 1).
    let p = (h >> 11) as f64 / (1u64 << 53) as f64;
    if p >= rate.clamp(0.0, 1.0) {
        return None;
    }
    let r1 = splitmix(h ^ 0x6661_756c_742d_3031); // "fault-01"
    let r2 = splitmix(h ^ 0x6661_756c_742d_3032);
    // Activation cycles land early enough that smoke-scale runs reach
    // them, late enough that the system is warmed up.
    let at = 2_000 + r1 % 200_000;
    let kind = match h & 3 {
        0 => SimFaultKind::StuckBank {
            at,
            hold: 50_000 + r2 % 2_000_000,
        },
        1 => SimFaultKind::DropResponse { nth: 1 + r2 % 16 },
        2 => SimFaultKind::FreezeClock { at },
        _ => SimFaultKind::Panic { at },
    };
    Some(SimFault::new(kind))
}

/// Host-time escape hatch for an injected frozen clock: even with no
/// supervisor armed, the spin gives up after this long so a chaos sweep
/// cannot hang a host forever. `DG_FAULT_FREEZE_CAP_S` overrides the
/// 120 s default (tests use sub-second caps).
pub fn freeze_cap() -> Duration {
    std::env::var("DG_FAULT_FREEZE_CAP_S")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .map_or(Duration::from_secs(120), Duration::from_secs_f64)
}

/// Holds a frozen simulated clock: publishes `heartbeat` (which should
/// re-record the pinned cycle so a watchdog sees host time passing with
/// no simulated progress) and polls `cancelled` until a supervisor
/// intervenes or [`freeze_cap`] expires. Returns the abort diagnosis.
pub fn hold_frozen_clock(
    at: u64,
    mut heartbeat: impl FnMut(),
    mut cancelled: impl FnMut() -> bool,
) -> String {
    let cap = freeze_cap();
    let started = Instant::now();
    loop {
        heartbeat();
        if cancelled() {
            return format!("injected frozen clock at cycle {at}: supervisor cancelled");
        }
        if started.elapsed() > cap {
            return format!(
                "injected frozen clock at cycle {at}: no supervisor intervened within {:.1}s",
                cap.as_secs_f64()
            );
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_rate_scaled() {
        let a = draw_sim_fault(7, "sweep/job-a", 1.0);
        assert_eq!(a, draw_sim_fault(7, "sweep/job-a", 1.0));
        assert!(a.is_some(), "rate 1.0 always assigns a fault");
        assert_eq!(draw_sim_fault(7, "sweep/job-a", 0.0), None);
        // Different seeds reassign.
        let ids: Vec<String> = (0..64).map(|i| format!("sweep/job-{i}")).collect();
        let with_a: Vec<_> = ids.iter().map(|i| draw_sim_fault(1, i, 0.5)).collect();
        let with_b: Vec<_> = ids.iter().map(|i| draw_sim_fault(2, i, 0.5)).collect();
        assert_ne!(with_a, with_b);
        // Rate 0.5 hits a middling fraction, not all or none.
        let hits = with_a.iter().filter(|f| f.is_some()).count();
        assert!((8..=56).contains(&hits), "rate 0.5 hit {hits}/64");
    }

    #[test]
    fn all_kinds_are_reachable() {
        let mut seen = [false; 4];
        for i in 0..256 {
            if let Some(f) = draw_sim_fault(3, &format!("k/{i}"), 1.0) {
                let idx = match f.kind {
                    SimFaultKind::StuckBank { .. } => 0,
                    SimFaultKind::DropResponse { .. } => 1,
                    SimFaultKind::FreezeClock { .. } => 2,
                    SimFaultKind::Panic { .. } => 3,
                };
                seen[idx] = true;
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn retry_scope_defaults_match_fault_classes() {
        let stuck = SimFault::parse("stuck@100+50").unwrap();
        assert!(stuck.fires_on(0) && !stuck.fires_on(1), "glitches heal");
        let freeze = SimFault::parse("freeze@100").unwrap();
        assert!(!freeze.fires_on(1), "stalls heal on retry");
        let drop = SimFault::parse("drop@3").unwrap();
        assert!(drop.fires_on(0) && drop.fires_on(5), "data loss persists");
        let panic = SimFault::parse("panic@9").unwrap();
        assert!(panic.fires_on(2), "crashes persist");
        let forced = SimFault::parse("stuck@100+50!").unwrap();
        assert!(forced.fires_on(7), "`!` forces every attempt");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for spec in [
            "stuck@100+50",
            "drop@3",
            "freeze@4096",
            "panic@77",
            "stuck@1+2!",
        ] {
            let f = SimFault::parse(spec).unwrap();
            assert_eq!(f.to_string(), spec);
        }
        assert!(SimFault::parse("melt@3").is_err());
        assert!(SimFault::parse("stuck@100").is_err());
        assert!(SimFault::parse("drop@x").is_err());
    }

    #[test]
    fn frozen_clock_spin_obeys_cancellation() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let beats = AtomicU32::new(0);
        let msg = hold_frozen_clock(
            42,
            || {
                beats.fetch_add(1, Ordering::Relaxed);
            },
            || beats.load(Ordering::Relaxed) >= 3,
        );
        assert!(msg.contains("frozen clock at cycle 42"), "{msg}");
        assert!(msg.contains("supervisor cancelled"), "{msg}");
        assert_eq!(beats.load(Ordering::Relaxed), 3);
    }
}
