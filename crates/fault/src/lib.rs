//! # dg-fault — deterministic fault injection for the sweep service
//!
//! Production sweeps run on hostile hosts: disks fill up, writes get
//! interrupted, fsync lies, and simulation models occasionally livelock
//! or crash. This crate makes those failures *reproducible* so every
//! supervision mechanism in the runner can be proven against the fault
//! class it exists to catch:
//!
//! * [`IoPlan`] / [`FaultSink`] ([`io`]) — an injectable IO facade for the
//!   journal, events stream, and report artifacts. A plan schedules
//!   `ENOSPC`, `EINTR`, partial writes, and fsync failures at exact byte
//!   offsets ([`IoFault`], parsed from `stream@byte:kind` specs). Without
//!   a plan the sink is a plain file writer — the observer-effect
//!   discipline is that an unarmed fault plane changes nothing.
//! * [`RetryPolicy`] / [`retry_io`] ([`retry`]) — bounded
//!   exponential-backoff retry for *transient* errors (`EINTR`,
//!   interrupted/partial writes); persistent errors (`ENOSPC`, fsync
//!   `EIO`) surface immediately so callers can degrade gracefully
//!   instead of spinning on a full disk.
//! * [`SimFault`] ([`sim`]) — seeded simulation-layer faults (stuck bank,
//!   dropped response, frozen simulated clock, deterministic panic),
//!   drawn per job id by [`draw_sim_fault`] so a chaos sweep is exactly
//!   reproducible from `--fault-seed`.
//!
//! Everything is a pure function of the plan/seed: the same plan against
//! the same write sequence fires at the same bytes, and the same seed
//! assigns the same faults to the same job ids, which is what lets CI
//! byte-compare a chaos run's recovery against an uninjected run.

pub mod io;
pub mod plan;
pub mod retry;
pub mod sim;

pub use io::{FaultSink, IoPlan};
pub use plan::{IoFault, IoFaultKind, IoStream};
pub use retry::{is_transient, retry_io, RetryPolicy};
pub use sim::{draw_sim_fault, freeze_cap, hold_frozen_clock, SimFault, SimFaultKind};
