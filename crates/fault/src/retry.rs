//! Transient-vs-persistent IO error classification and bounded retry.
//!
//! The split drives the runner's whole degradation story: transient
//! errors (`EINTR`, interrupted or partial writes) are retried in place
//! with exponential backoff because the next attempt can genuinely
//! succeed; persistent errors (`ENOSPC`, fsync `EIO`, permissions)
//! surface immediately so the caller can flip to a degraded mode instead
//! of burning wall-clock on a disk that will still be full in a second.

use std::io;
use std::time::Duration;

/// Bounded exponential-backoff retry for transient IO errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retry.
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base: Duration::from_millis(2),
            max: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (zero-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let mult = 1u32 << retry.min(16);
        self.base.saturating_mul(mult).min(self.max)
    }
}

/// Whether an IO error is worth retrying: interruptions and timeouts
/// are; full disks, bad file descriptors, and failed fsyncs are not.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op`, retrying transient failures (see [`is_transient`]) under
/// `policy`. The first success, first persistent error, or the final
/// attempt's error is returned.
///
/// # Errors
///
/// The terminal error of the last attempt.
pub fn retry_io<T>(policy: &RetryPolicy, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let attempts = policy.attempts.max(1);
    let mut retry = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && retry + 1 < attempts => {
                std::thread::sleep(policy.backoff(retry));
                retry += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_micros(10),
            max: Duration::from_micros(100),
        }
    }

    #[test]
    fn classification_matches_errno_shapes() {
        assert!(is_transient(&io::Error::from_raw_os_error(4))); // EINTR
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::Interrupted,
            "partial"
        )));
        assert!(!is_transient(&io::Error::from_raw_os_error(28))); // ENOSPC
        assert!(!is_transient(&io::Error::other("fsync EIO")));
        assert!(!is_transient(&io::Error::new(
            io::ErrorKind::PermissionDenied,
            "ro fs"
        )));
    }

    #[test]
    fn transient_errors_retry_to_success() {
        let mut left = 2;
        let out = retry_io(&quick(), || {
            if left > 0 {
                left -= 1;
                Err(io::Error::from_raw_os_error(4))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn persistent_errors_fail_fast() {
        let mut calls = 0;
        let err = retry_io(&quick(), || -> io::Result<()> {
            calls += 1;
            Err(io::Error::from_raw_os_error(28))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "ENOSPC must not be retried");
        assert_eq!(err.raw_os_error(), Some(28));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut calls = 0;
        let err = retry_io(&quick(), || -> io::Result<()> {
            calls += 1;
            Err(io::Error::from_raw_os_error(4))
        })
        .unwrap_err();
        assert_eq!(calls, 4, "attempts bound includes the first try");
        assert!(is_transient(&err));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = quick();
        assert_eq!(p.backoff(0), Duration::from_micros(10));
        assert_eq!(p.backoff(1), Duration::from_micros(20));
        assert_eq!(p.backoff(9), Duration::from_micros(100));
    }
}
