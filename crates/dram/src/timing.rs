//! DRAM timing parameters converted into the CPU clock domain.

use dg_sim::clock::{ClockRatio, Cycle};
use dg_sim::config::DramTiming;
use serde::{Deserialize, Serialize};

/// The Table 2 timing parameters, pre-multiplied into CPU cycles.
///
/// The bank and device state machines operate exclusively on these converted
/// values so that the rest of the simulator never mixes clock domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct CpuTiming {
    /// ACT-to-ACT, same bank.
    pub tRC: Cycle,
    /// ACT-to-RD/WR.
    pub tRCD: Cycle,
    /// ACT-to-PRE minimum.
    pub tRAS: Cycle,
    /// Four-activate window.
    pub tFAW: Cycle,
    /// End of write data to PRE.
    pub tWR: Cycle,
    /// PRE-to-ACT.
    pub tRP: Cycle,
    /// Rank switch / bus turnaround pad.
    pub tRTRS: Cycle,
    /// RD to first data beat.
    pub tCAS: Cycle,
    /// RD-to-PRE.
    pub tRTP: Cycle,
    /// Data burst duration.
    pub tBURST: Cycle,
    /// Column-to-column spacing.
    pub tCCD: Cycle,
    /// Write-to-read turnaround.
    pub tWTR: Cycle,
    /// ACT-to-ACT, different banks.
    pub tRRD: Cycle,
    /// Refresh interval.
    pub tREFI: Cycle,
    /// Refresh cycle time.
    pub tRFC: Cycle,
    /// WR to first data beat.
    pub tCWD: Cycle,
    /// CPU cycles per DRAM command-bus cycle (command bus granularity).
    pub cmd_cycle: Cycle,
}

impl CpuTiming {
    /// Converts a DRAM-cycle parameter set into CPU cycles.
    pub fn from_dram(t: DramTiming, ratio: ClockRatio) -> Self {
        let c = |v: u64| ratio.dram_to_cpu(v);
        Self {
            tRC: c(t.tRC),
            tRCD: c(t.tRCD),
            tRAS: c(t.tRAS),
            tFAW: c(t.tFAW),
            tWR: c(t.tWR),
            tRP: c(t.tRP),
            tRTRS: c(t.tRTRS),
            tCAS: c(t.tCAS),
            tRTP: c(t.tRTP),
            tBURST: c(t.tBURST),
            tCCD: c(t.tCCD),
            tWTR: c(t.tWTR),
            tRRD: c(t.tRRD),
            tREFI: c(t.tREFI),
            tRFC: c(t.tRFC),
            tCWD: c(t.tCWD),
            cmd_cycle: ratio.cpu_per_dram(),
        }
    }

    /// Minimum closed-row read latency (ACT → RD → last data beat).
    pub fn closed_row_read_latency(&self) -> Cycle {
        self.tRCD + self.tCAS + self.tBURST
    }

    /// Worst-case single read service time when a conflicting row is open:
    /// PRE → ACT → RD → data (the "row conflict delay" ε of Figure 1d).
    pub fn row_conflict_read_latency(&self) -> Cycle {
        self.tRP + self.tRCD + self.tCAS + self.tBURST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_scales_by_ratio() {
        let t = CpuTiming::from_dram(DramTiming::default(), ClockRatio::new(3));
        assert_eq!(t.tRC, 117);
        assert_eq!(t.tRCD, 33);
        assert_eq!(t.tCAS, 33);
        assert_eq!(t.tBURST, 12);
        assert_eq!(t.cmd_cycle, 3);
    }

    #[test]
    fn unit_ratio_is_identity() {
        let t = CpuTiming::from_dram(DramTiming::default(), ClockRatio::new(1));
        assert_eq!(t.tRC, 39);
        assert_eq!(t.tREFI, 6240);
    }

    #[test]
    fn derived_latencies() {
        let t = CpuTiming::from_dram(DramTiming::default(), ClockRatio::new(1));
        assert_eq!(t.closed_row_read_latency(), 11 + 11 + 4);
        assert_eq!(t.row_conflict_read_latency(), 11 + 11 + 11 + 4);
    }
}
