//! Physical address to (bank, row, column) mapping.
//!
//! The mapping determines which requests contend in the same bank — the
//! property the Figure 1 attacks exploit. Two schemes are provided:
//!
//! * [`MapScheme::RowBankCol`] — bank bits are taken from just above the
//!   column bits, so consecutive cache lines *within a row-sized region*
//!   stay in one bank, and region-sized strides switch banks.
//! * [`MapScheme::BankInterleaved`] — bank bits are taken from just above
//!   the line offset, so consecutive cache lines round-robin across banks
//!   (the usual high-parallelism default; used by our baseline).

use dg_sim::types::Addr;
use serde::{Deserialize, Serialize};

use crate::command::{BankId, RowId};

/// Decoded physical location of a cache-line request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysLoc {
    /// Target bank.
    pub bank: BankId,
    /// Target row within the bank.
    pub row: RowId,
    /// Column (line index within the row).
    pub col: u64,
}

/// Address interleaving scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MapScheme {
    /// row : bank : column : line-offset (row-region granularity banking).
    RowBankCol,
    /// row : column : bank : line-offset (cache-line granularity banking).
    #[default]
    BankInterleaved,
}

/// Maps physical addresses to DRAM coordinates.
///
/// # Example
///
/// ```
/// use dg_dram::mapping::{AddressMapper, MapScheme};
///
/// let m = AddressMapper::new(MapScheme::BankInterleaved, 8, 8192, 64);
/// let a = m.decode(0x0);
/// let b = m.decode(0x40);
/// assert_ne!(a.bank, b.bank); // consecutive lines interleave across banks
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    scheme: MapScheme,
    banks: u32,
    row_bytes: u64,
    line_bytes: u64,
}

impl AddressMapper {
    /// Creates a mapper.
    ///
    /// # Panics
    ///
    /// Panics unless `banks`, `row_bytes` and `line_bytes` are powers of two
    /// and a row holds at least one line.
    pub fn new(scheme: MapScheme, banks: u32, row_bytes: u64, line_bytes: u64) -> Self {
        assert!(banks.is_power_of_two(), "banks must be a power of two");
        assert!(
            row_bytes.is_power_of_two(),
            "row_bytes must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line_bytes must be a power of two"
        );
        assert!(row_bytes >= line_bytes, "row must hold at least one line");
        Self {
            scheme,
            banks,
            row_bytes,
            line_bytes,
        }
    }

    /// Number of banks this mapper distributes across.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Lines per row.
    pub fn cols_per_row(&self) -> u64 {
        self.row_bytes / self.line_bytes
    }

    /// Decodes a physical address into DRAM coordinates.
    pub fn decode(&self, addr: Addr) -> PhysLoc {
        let line = addr / self.line_bytes;
        let banks = u64::from(self.banks);
        let cols = self.cols_per_row();
        match self.scheme {
            MapScheme::BankInterleaved => {
                let bank = (line % banks) as BankId;
                let rest = line / banks;
                PhysLoc {
                    bank,
                    row: rest / cols,
                    col: rest % cols,
                }
            }
            MapScheme::RowBankCol => {
                let col = line % cols;
                let rest = line / cols;
                let bank = (rest % banks) as BankId;
                PhysLoc {
                    bank,
                    row: rest / banks,
                    col,
                }
            }
        }
    }

    /// Builds an address that decodes to the given coordinates — the inverse
    /// of [`decode`](Self::decode). Used by attackers and fake-request
    /// generators that need to hit a prescribed bank (§4.4: "the fake
    /// request accesses a random address in the targeted bank").
    pub fn encode(&self, loc: PhysLoc) -> Addr {
        let banks = u64::from(self.banks);
        let cols = self.cols_per_row();
        let line = match self.scheme {
            MapScheme::BankInterleaved => (loc.row * cols + loc.col) * banks + u64::from(loc.bank),
            MapScheme::RowBankCol => (loc.row * banks + u64::from(loc.bank)) * cols + loc.col,
        };
        line * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(scheme: MapScheme) -> AddressMapper {
        AddressMapper::new(scheme, 8, 8192, 64)
    }

    #[test]
    fn interleaved_spreads_consecutive_lines() {
        let m = mapper(MapScheme::BankInterleaved);
        let banks: Vec<u32> = (0..8).map(|i| m.decode(i * 64).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Same bank returns after `banks` lines, next column.
        let a = m.decode(0);
        let b = m.decode(8 * 64);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn row_bank_col_keeps_row_region_in_bank() {
        let m = mapper(MapScheme::RowBankCol);
        // All lines within one row-sized region share a bank and row.
        let first = m.decode(0);
        for i in 0..m.cols_per_row() {
            let loc = m.decode(i * 64);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.col, i);
        }
        // The next region moves to the next bank.
        let next = m.decode(8192);
        assert_eq!(next.bank, first.bank + 1);
    }

    #[test]
    fn encode_inverts_decode() {
        for scheme in [MapScheme::BankInterleaved, MapScheme::RowBankCol] {
            let m = mapper(scheme);
            for addr in (0..1_000_000u64).step_by(64 * 37) {
                let loc = m.decode(addr);
                assert_eq!(m.encode(loc), addr, "scheme {scheme:?} addr {addr:#x}");
            }
        }
    }

    #[test]
    fn decode_inverts_encode() {
        let m = mapper(MapScheme::BankInterleaved);
        for bank in 0..8 {
            for row in [0u64, 1, 17, 1023] {
                for col in [0u64, 1, 127] {
                    let loc = PhysLoc { bank, row, col };
                    assert_eq!(m.decode(m.encode(loc)), loc);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_banks_rejected() {
        AddressMapper::new(MapScheme::BankInterleaved, 6, 8192, 64);
    }

    #[test]
    fn line_offset_ignored() {
        let m = mapper(MapScheme::BankInterleaved);
        assert_eq!(m.decode(0x40), m.decode(0x7F));
    }
}
