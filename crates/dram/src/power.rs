//! DDR3 energy model (the DRAMSim2 power-model substitute).
//!
//! §4.4 of the paper notes that "issuing fake requests … can incur high
//! energy consumption" and adopts the *suppression* optimisation (fake
//! requests update timing state but never move data to the DIMMs). This
//! model quantifies that trade-off: it accumulates per-command energy from
//! a DDR3 current profile (IDD-style, simplified to per-operation charges)
//! plus background power, and separates the energy attributable to fake
//! traffic so the suppression savings can be reported.
//!
//! The per-operation energies below follow the usual Micron DDR3 power
//! methodology collapsed to the operation granularity this simulator
//! schedules at (one ACT+PRE pair, one RD burst, one WR burst, one REF),
//! for a 1.5 V x8 DDR3-1600 device.

use dg_sim::clock::Cycle;
use serde::{Deserialize, Serialize};

/// Per-operation and background energy parameters, in picojoules (pJ) and
/// milliwatts (mW).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Energy of one ACT + PRE pair (row open + close).
    pub act_pre_pj: f64,
    /// Energy of one read burst (column access + I/O).
    pub read_pj: f64,
    /// Energy of one write burst.
    pub write_pj: f64,
    /// Energy of one all-bank refresh.
    pub refresh_pj: f64,
    /// Background (standby) power in mW, charged per cycle.
    pub background_mw: f64,
    /// CPU clock in Hz (to convert cycles to time for background energy).
    pub clock_hz: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            // Representative DDR3-1600 x8 numbers (per 64B line access).
            act_pre_pj: 2600.0,
            read_pj: 2300.0,
            write_pj: 2500.0,
            refresh_pj: 28_000.0,
            background_mw: 90.0,
            clock_hz: 2.4e9,
        }
    }
}

/// Accumulates DRAM energy, split by real vs fake traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounter {
    /// ACT/PRE pairs for real requests.
    pub real_activations: u64,
    /// ACT/PRE pairs for fake requests.
    pub fake_activations: u64,
    /// Real read bursts.
    pub real_reads: u64,
    /// Fake read bursts.
    pub fake_reads: u64,
    /// Real write bursts.
    pub real_writes: u64,
    /// Fake write bursts.
    pub fake_writes: u64,
    /// Refresh operations.
    pub refreshes: u64,
    /// Cycles elapsed (for background energy).
    pub cycles: Cycle,
}

impl EnergyCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one serviced transaction: an activation plus a read or
    /// write burst, attributed to real or fake traffic.
    pub fn record_access(&mut self, is_write: bool, is_fake: bool) {
        match (is_fake, is_write) {
            (false, false) => {
                self.real_activations += 1;
                self.real_reads += 1;
            }
            (false, true) => {
                self.real_activations += 1;
                self.real_writes += 1;
            }
            (true, false) => {
                self.fake_activations += 1;
                self.fake_reads += 1;
            }
            (true, true) => {
                self.fake_activations += 1;
                self.fake_writes += 1;
            }
        }
    }

    /// Records one refresh.
    pub fn record_refresh(&mut self) {
        self.refreshes += 1;
    }

    /// Merges another counter's activity into this one. `cycles` is *not*
    /// summed: parallel channels cover the same wall-clock window, so the
    /// caller re-applies [`EnergyCounter::set_cycles`] after merging.
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.real_activations += other.real_activations;
        self.fake_activations += other.fake_activations;
        self.real_reads += other.real_reads;
        self.fake_reads += other.fake_reads;
        self.real_writes += other.real_writes;
        self.fake_writes += other.fake_writes;
        self.refreshes += other.refreshes;
    }

    /// Sets the elapsed cycles for background-energy accounting.
    pub fn set_cycles(&mut self, cycles: Cycle) {
        self.cycles = cycles;
    }

    /// Energy consumed by real traffic, in nanojoules.
    pub fn real_nj(&self, p: &PowerParams) -> f64 {
        (self.real_activations as f64 * p.act_pre_pj
            + self.real_reads as f64 * p.read_pj
            + self.real_writes as f64 * p.write_pj)
            / 1000.0
    }

    /// Energy consumed by fake traffic if fakes are *performed* (not
    /// suppressed), in nanojoules.
    pub fn fake_nj(&self, p: &PowerParams) -> f64 {
        (self.fake_activations as f64 * p.act_pre_pj
            + self.fake_reads as f64 * p.read_pj
            + self.fake_writes as f64 * p.write_pj)
            / 1000.0
    }

    /// Energy saved by the §4.4 suppression optimisation: fake requests
    /// update timing state only, so their DIMM access energy is avoided
    /// entirely (the command-bus energy is second-order and ignored).
    pub fn suppression_savings_nj(&self, p: &PowerParams) -> f64 {
        self.fake_nj(p)
    }

    /// Background energy over the elapsed cycles, in nanojoules.
    pub fn background_nj(&self, p: &PowerParams) -> f64 {
        let seconds = self.cycles as f64 / p.clock_hz;
        p.background_mw * 1e-3 * seconds * 1e9
    }

    /// Refresh energy in nanojoules.
    pub fn refresh_nj(&self, p: &PowerParams) -> f64 {
        self.refreshes as f64 * p.refresh_pj / 1000.0
    }

    /// Total energy with fakes suppressed, in nanojoules.
    pub fn total_suppressed_nj(&self, p: &PowerParams) -> f64 {
        self.real_nj(p) + self.refresh_nj(p) + self.background_nj(p)
    }

    /// Total energy with fakes performed, in nanojoules.
    pub fn total_unsuppressed_nj(&self, p: &PowerParams) -> f64 {
        self.total_suppressed_nj(p) + self.fake_nj(p)
    }

    /// Fraction of access energy that fake traffic would add without
    /// suppression (0 when there is no traffic).
    pub fn fake_overhead(&self, p: &PowerParams) -> f64 {
        let real = self.real_nj(p);
        if real == 0.0 {
            0.0
        } else {
            self.fake_nj(p) / real
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_attribution() {
        let mut e = EnergyCounter::new();
        e.record_access(false, false); // real read
        e.record_access(true, false); // real write
        e.record_access(false, true); // fake read
        e.record_access(true, true); // fake write
        assert_eq!(e.real_activations, 2);
        assert_eq!(e.fake_activations, 2);
        assert_eq!(e.real_reads, 1);
        assert_eq!(e.real_writes, 1);
        assert_eq!(e.fake_reads, 1);
        assert_eq!(e.fake_writes, 1);
    }

    #[test]
    fn suppression_saves_exactly_fake_energy() {
        let p = PowerParams::default();
        let mut e = EnergyCounter::new();
        for _ in 0..10 {
            e.record_access(false, false);
        }
        for _ in 0..5 {
            e.record_access(false, true);
        }
        let saved = e.suppression_savings_nj(&p);
        assert!(saved > 0.0);
        assert!((e.total_unsuppressed_nj(&p) - e.total_suppressed_nj(&p) - saved).abs() < 1e-9);
    }

    #[test]
    fn background_energy_scales_with_time() {
        let p = PowerParams::default();
        let mut e = EnergyCounter::new();
        e.set_cycles(2_400_000); // 1 ms at 2.4 GHz
                                 // 90 mW for 1 ms = 90 µJ = 90_000 nJ.
        assert!((e.background_nj(&p) - 90_000.0).abs() < 1.0);
    }

    #[test]
    fn fake_overhead_ratio() {
        let p = PowerParams::default();
        let mut e = EnergyCounter::new();
        assert_eq!(e.fake_overhead(&p), 0.0);
        e.record_access(false, false);
        e.record_access(false, true);
        let ratio = e.fake_overhead(&p);
        assert!(
            ratio > 0.9 && ratio < 1.1,
            "similar energy per access: {ratio}"
        );
    }

    #[test]
    fn refresh_energy() {
        let p = PowerParams::default();
        let mut e = EnergyCounter::new();
        e.record_refresh();
        e.record_refresh();
        assert!((e.refresh_nj(&p) - 56.0).abs() < 1e-9);
    }
}
