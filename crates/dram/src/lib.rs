//! Cycle-level DRAM device model (the DRAMSim2 substitute).
//!
//! The paper evaluates DAGguise on gem5 + DRAMSim2; this crate rebuilds the
//! DRAM side from scratch: a single-channel, single-rank, multi-bank DDR3
//! device with the Table 2 timing parameters, per-bank row-buffer state
//! machines, a shared command bus and data bus, the four-activate window,
//! and periodic refresh.
//!
//! The model exposes *earliest-legal-issue* queries so a memory-controller
//! scheduler (in `dg-mem`) can ask "when could I issue this command?" and
//! *issue* operations that advance device state. All externally visible
//! times are in global CPU cycles (see [`dg_sim::clock`]); the constructor
//! converts the DRAM-cycle parameters of [`dg_sim::config::DramTiming`]
//! using the configured clock ratio.
//!
//! # Example
//!
//! ```
//! use dg_dram::{DramDevice, DramCommand};
//! use dg_sim::config::{DramOrg, DramTiming};
//! use dg_sim::clock::ClockRatio;
//!
//! let mut dev = DramDevice::new(DramOrg::default(), DramTiming::default(), ClockRatio::default());
//! let t = dev.earliest(DramCommand::Activate { bank: 0, row: 5 }, 0);
//! dev.issue(DramCommand::Activate { bank: 0, row: 5 }, t);
//! let rd = DramCommand::Read { bank: 0, auto_precharge: true };
//! let t_rd = dev.earliest(rd, t);
//! let done = dev.issue(rd, t_rd).expect("read returns data time");
//! assert!(done > t_rd);
//! ```

pub mod bank;
pub mod checker;
pub mod command;
pub mod device;
pub mod mapping;
pub mod power;
pub mod timing;

pub use bank::{Bank, BankState};
pub use checker::{check_trace, CommandRecorder, TraceEntry, Violation};
pub use command::DramCommand;
pub use device::{BlockReason, DramDevice};
pub use mapping::{AddressMapper, MapScheme, PhysLoc};
pub use power::{EnergyCounter, PowerParams};
pub use timing::CpuTiming;
