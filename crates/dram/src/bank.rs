//! Per-bank row-buffer state machine.
//!
//! Each bank tracks its open row and the earliest cycle at which each
//! command class (ACT, RD/WR, PRE) may legally be issued, updating those
//! horizons as commands are applied. The device model (see
//! [`crate::device`]) layers the rank-wide constraints (tRRD, tFAW, bus
//! turnaround, refresh) on top.

use dg_sim::clock::Cycle;
use serde::{Deserialize, Serialize};

use crate::command::RowId;
use crate::timing::CpuTiming;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BankState {
    /// No row is open (precharged).
    #[default]
    Idle,
    /// `row` is open in the row buffer.
    Active {
        /// The open row.
        row: RowId,
    },
}

/// One DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    /// Earliest legal ACT.
    next_act: Cycle,
    /// Earliest legal RD/WR (valid only while a row is open).
    next_col: Cycle,
    /// Earliest legal PRE.
    next_pre: Cycle,
}

impl Bank {
    /// A bank in the reset state: idle, every command legal at cycle 0.
    pub fn new() -> Self {
        Self {
            state: BankState::Idle,
            next_act: 0,
            next_col: 0,
            next_pre: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Returns the open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Earliest cycle an ACT may be issued.
    pub fn earliest_activate(&self) -> Cycle {
        self.next_act
    }

    /// Earliest cycle a RD/WR may be issued (meaningful only when a row is
    /// open).
    pub fn earliest_column(&self) -> Cycle {
        self.next_col
    }

    /// Earliest cycle a PRE may be issued.
    pub fn earliest_precharge(&self) -> Cycle {
        self.next_pre
    }

    /// Applies an ACT at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not idle or `t` is before the legal horizon —
    /// callers must consult [`earliest_activate`](Self::earliest_activate).
    pub fn activate(&mut self, t: Cycle, row: RowId, timing: &CpuTiming) {
        assert_eq!(self.state, BankState::Idle, "ACT to non-idle bank");
        assert!(
            t >= self.next_act,
            "ACT at {t} before horizon {}",
            self.next_act
        );
        self.state = BankState::Active { row };
        self.next_col = t + timing.tRCD;
        self.next_pre = t + timing.tRAS;
        self.next_act = t + timing.tRC;
    }

    /// Applies a RD at cycle `t`. With `auto_precharge`, the bank precharges
    /// itself as soon as legal after the access.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or `t` is before the column horizon.
    pub fn read(&mut self, t: Cycle, auto_precharge: bool, timing: &CpuTiming) {
        assert!(
            matches!(self.state, BankState::Active { .. }),
            "RD to idle bank"
        );
        assert!(
            t >= self.next_col,
            "RD at {t} before horizon {}",
            self.next_col
        );
        self.next_col = self.next_col.max(t + timing.tCCD);
        self.next_pre = self.next_pre.max(t + timing.tRTP);
        if auto_precharge {
            let pre_at = self.next_pre;
            self.apply_precharge(pre_at, timing);
        }
    }

    /// Applies a WR at cycle `t`. Write data occupies the bus starting at
    /// `t + tCWD`; the bank may not precharge until `tWR` after the last
    /// data beat.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or `t` is before the column horizon.
    pub fn write(&mut self, t: Cycle, auto_precharge: bool, timing: &CpuTiming) {
        assert!(
            matches!(self.state, BankState::Active { .. }),
            "WR to idle bank"
        );
        assert!(
            t >= self.next_col,
            "WR at {t} before horizon {}",
            self.next_col
        );
        self.next_col = self.next_col.max(t + timing.tCCD);
        self.next_pre = self
            .next_pre
            .max(t + timing.tCWD + timing.tBURST + timing.tWR);
        if auto_precharge {
            let pre_at = self.next_pre;
            self.apply_precharge(pre_at, timing);
        }
    }

    /// Applies a PRE at cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the precharge horizon.
    pub fn precharge(&mut self, t: Cycle, timing: &CpuTiming) {
        assert!(
            t >= self.next_pre,
            "PRE at {t} before horizon {}",
            self.next_pre
        );
        self.apply_precharge(t, timing);
    }

    fn apply_precharge(&mut self, t: Cycle, timing: &CpuTiming) {
        self.state = BankState::Idle;
        self.next_act = self.next_act.max(t + timing.tRP);
    }

    /// Applies a rank-wide refresh that ends at cycle `done`.
    pub fn refresh_until(&mut self, done: Cycle) {
        self.state = BankState::Idle;
        self.next_act = self.next_act.max(done);
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::clock::ClockRatio;
    use dg_sim::config::DramTiming;

    fn timing() -> CpuTiming {
        // Unit clock ratio keeps the numbers equal to Table 2.
        CpuTiming::from_dram(DramTiming::default(), ClockRatio::new(1))
    }

    #[test]
    fn reset_state() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.earliest_activate(), 0);
    }

    #[test]
    fn activate_opens_row_and_sets_horizons() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(10, 42, &t);
        assert_eq!(b.open_row(), Some(42));
        assert_eq!(b.earliest_column(), 10 + t.tRCD);
        assert_eq!(b.earliest_precharge(), 10 + t.tRAS);
        assert_eq!(b.earliest_activate(), 10 + t.tRC);
    }

    #[test]
    fn read_without_autopre_keeps_row_open() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 1, &t);
        b.read(t.tRCD, false, &t);
        assert_eq!(b.open_row(), Some(1));
        // Second read gated by tCCD.
        assert_eq!(b.earliest_column(), t.tRCD + t.tCCD);
    }

    #[test]
    fn read_with_autopre_closes_row() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 1, &t);
        b.read(t.tRCD, true, &t);
        assert_eq!(b.state(), BankState::Idle);
        // Auto-precharge fires at tRAS (the binding constraint here), then
        // tRP before the next ACT.
        assert_eq!(b.earliest_activate(), t.tRAS + t.tRP);
    }

    #[test]
    fn write_delays_precharge_by_recovery() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 1, &t);
        let wr_at = t.tRCD;
        b.write(wr_at, false, &t);
        assert_eq!(
            b.earliest_precharge(),
            (wr_at + t.tCWD + t.tBURST + t.tWR).max(t.tRAS)
        );
    }

    #[test]
    fn explicit_precharge_then_activate() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 7, &t);
        b.read(t.tRCD, false, &t);
        let pre_at = b.earliest_precharge();
        b.precharge(pre_at, &t);
        assert_eq!(b.state(), BankState::Idle);
        assert!(b.earliest_activate() >= pre_at + t.tRP);
    }

    #[test]
    fn trc_binds_back_to_back_activates() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 1, &t);
        b.read(t.tRCD, true, &t);
        // Even though the auto-precharge completes earlier than tRC, the
        // ACT-to-ACT spacing must still respect tRC.
        assert!(b.earliest_activate() >= t.tRC.min(t.tRAS + t.tRP));
    }

    #[test]
    fn refresh_blocks_activation() {
        let mut b = Bank::new();
        b.refresh_until(500);
        assert_eq!(b.earliest_activate(), 500);
        assert_eq!(b.state(), BankState::Idle);
    }

    #[test]
    #[should_panic(expected = "ACT to non-idle bank")]
    fn double_activate_panics() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 1, &t);
        b.activate(t.tRC, 2, &t);
    }

    #[test]
    #[should_panic(expected = "before horizon")]
    fn early_read_panics() {
        let t = timing();
        let mut b = Bank::new();
        b.activate(0, 1, &t);
        b.read(1, false, &t);
    }

    #[test]
    #[should_panic(expected = "RD to idle bank")]
    fn read_idle_panics() {
        let t = timing();
        let mut b = Bank::new();
        b.read(100, false, &t);
    }
}
