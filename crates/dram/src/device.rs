//! The rank-level device model: banks plus shared command bus, data bus,
//! activation-window and refresh constraints.

use dg_sim::clock::{ClockRatio, Cycle};
use dg_sim::config::{DramOrg, DramTiming};
use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::command::{BankId, DramCommand};
use crate::timing::CpuTiming;

/// Last column operation type, for bus turnaround accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum LastCol {
    None,
    Read { data_end: Cycle },
    Write { data_end: Cycle },
}

/// The device-level constraint that currently blocks a command, as reported
/// by [`DramDevice::blocking_reason`]. Deliberately device-local (no
/// domains, no observability types) so higher layers can map it onto their
/// own attribution categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The target bank's own timing horizon (tRCD/tRAS/tRP/tRC/tWR).
    Bank,
    /// ACT-to-ACT spacing across banks (tRRD).
    Rrd,
    /// The four-activate window (tFAW).
    Faw,
    /// Data-bus occupancy or turnaround (tCCD, read↔write padding).
    Bus,
    /// The shared command bus is carrying another command this edge.
    CmdBus,
    /// A refresh is in progress (tRFC).
    Refresh,
}

/// A single-channel, single-rank DRAM device.
///
/// The device answers two questions for the memory-controller scheduler:
/// [`earliest`](Self::earliest) — "when could this command legally issue?"
/// — and [`issue`](Self::issue) — "apply it". Column commands return the
/// cycle at which the last data beat leaves the device, which the controller
/// uses as the transaction completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramDevice {
    timing: CpuTiming,
    banks: Vec<Bank>,
    /// Earliest cycle the shared command bus is free.
    next_cmd: Cycle,
    /// Earliest cycle an ACT to *any* bank is allowed (tRRD).
    next_act_any: Cycle,
    /// Issue times of the four most recent ACTs (tFAW window).
    recent_acts: [Cycle; 4],
    recent_act_idx: usize,
    n_recent_acts: usize,
    last_col: LastCol,
    /// Earliest column command as constrained by tCCD on the channel.
    next_col_any: Cycle,
    /// Next refresh deadline.
    refresh_due: Cycle,
    /// Cycle the in-progress refresh completes (0 when none).
    refresh_until: Cycle,
    /// Count of issued refreshes (statistics).
    refreshes: u64,
}

impl DramDevice {
    /// Builds a device from the Table 2 organization/timing, converting all
    /// parameters into CPU cycles with `ratio`.
    pub fn new(org: DramOrg, timing: DramTiming, ratio: ClockRatio) -> Self {
        let t = CpuTiming::from_dram(timing, ratio);
        Self {
            banks: vec![Bank::new(); org.banks as usize],
            next_cmd: 0,
            next_act_any: 0,
            recent_acts: [0; 4],
            recent_act_idx: 0,
            n_recent_acts: 0,
            last_col: LastCol::None,
            next_col_any: 0,
            refresh_due: t.tREFI,
            refresh_until: 0,
            refreshes: 0,
            timing: t,
        }
    }

    /// The converted timing parameters in CPU cycles.
    pub fn timing(&self) -> &CpuTiming {
        &self.timing
    }

    /// Number of banks.
    pub fn bank_count(&self) -> u32 {
        self.banks.len() as u32
    }

    /// Read-only view of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: BankId) -> &Bank {
        &self.banks[bank as usize]
    }

    /// True when a refresh should be scheduled at or before `now`.
    pub fn refresh_due(&self, now: Cycle) -> bool {
        now >= self.refresh_due
    }

    /// The absolute cycle at which the next refresh becomes due. Event-driven
    /// schedulers use this to wake for refresh maintenance even when no
    /// transactions are queued.
    pub fn refresh_deadline(&self) -> Cycle {
        self.refresh_due
    }

    /// Number of refreshes performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Returns true when every bank is precharged (required before REF).
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Earliest cycle ≥ `now` at which `cmd` may legally issue.
    ///
    /// The result is aligned to a DRAM command-bus edge.
    pub fn earliest(&self, cmd: DramCommand, now: Cycle) -> Cycle {
        let mut t = now.max(self.next_cmd).max(self.refresh_until);
        match cmd {
            DramCommand::Activate { bank, .. } => {
                t = t
                    .max(self.banks[bank as usize].earliest_activate())
                    .max(self.next_act_any)
                    .max(self.faw_horizon());
            }
            DramCommand::Read { bank, .. } => {
                t = t
                    .max(self.banks[bank as usize].earliest_column())
                    .max(self.next_col_any)
                    .max(self.read_turnaround());
            }
            DramCommand::Write { bank, .. } => {
                t = t
                    .max(self.banks[bank as usize].earliest_column())
                    .max(self.next_col_any)
                    .max(self.write_turnaround());
            }
            DramCommand::Precharge { bank } => {
                t = t.max(self.banks[bank as usize].earliest_precharge());
            }
            DramCommand::Refresh => {
                let all_pre = self
                    .banks
                    .iter()
                    .map(|b| b.earliest_activate())
                    .max()
                    .unwrap_or(0);
                // REF may issue once every bank could accept an ACT, i.e. all
                // precharges have completed.
                t = t.max(all_pre);
            }
        }
        t.next_multiple_of(self.timing.cmd_cycle)
    }

    /// The binding constraint preventing `cmd` from issuing at `now`, or
    /// `None` when it may issue now. Ties are resolved toward the more
    /// specific reason (bank and window constraints before generic bus
    /// occupancy). Pure observation: never mutates device state, so
    /// attribution layers can call it freely without perturbing timing.
    pub fn blocking_reason(&self, cmd: DramCommand, now: Cycle) -> Option<BlockReason> {
        if self.earliest(cmd, now) <= now {
            return None;
        }
        // Priority order for ties: refresh first (it also pushes bank
        // horizons, and "refresh" is the more informative answer), then the
        // command-specific constraints, then generic command-bus occupancy.
        let mut cands: Vec<(Cycle, BlockReason)> = vec![(self.refresh_until, BlockReason::Refresh)];
        match cmd {
            DramCommand::Activate { bank, .. } => {
                cands.push((
                    self.banks[bank as usize].earliest_activate(),
                    BlockReason::Bank,
                ));
                cands.push((self.next_act_any, BlockReason::Rrd));
                cands.push((self.faw_horizon(), BlockReason::Faw));
            }
            DramCommand::Read { bank, .. } => {
                cands.push((
                    self.banks[bank as usize].earliest_column(),
                    BlockReason::Bank,
                ));
                cands.push((self.next_col_any, BlockReason::Bus));
                cands.push((self.read_turnaround(), BlockReason::Bus));
            }
            DramCommand::Write { bank, .. } => {
                cands.push((
                    self.banks[bank as usize].earliest_column(),
                    BlockReason::Bank,
                ));
                cands.push((self.next_col_any, BlockReason::Bus));
                cands.push((self.write_turnaround(), BlockReason::Bus));
            }
            DramCommand::Precharge { bank } => {
                cands.push((
                    self.banks[bank as usize].earliest_precharge(),
                    BlockReason::Bank,
                ));
            }
            DramCommand::Refresh => {
                let all_pre = self
                    .banks
                    .iter()
                    .map(|b| b.earliest_activate())
                    .max()
                    .unwrap_or(0);
                cands.push((all_pre, BlockReason::Bank));
            }
        }
        cands.push((self.next_cmd, BlockReason::CmdBus));
        // Pick the latest horizon; `>` keeps the earliest-listed entry on
        // ties, so refresh beats the bank horizons it also pushed and the
        // specific reasons beat generic command-bus occupancy.
        let mut best = cands[0];
        for &(t, r) in &cands[1..] {
            if t > best.0 {
                best = (t, r);
            }
        }
        Some(best.1)
    }

    /// Earliest ACT as constrained by the four-activate window.
    fn faw_horizon(&self) -> Cycle {
        if self.n_recent_acts < 4 {
            0
        } else {
            // The oldest of the last four ACTs.
            self.recent_acts[self.recent_act_idx] + self.timing.tFAW
        }
    }

    /// Earliest RD command as constrained by the previous column operation.
    fn read_turnaround(&self) -> Cycle {
        match self.last_col {
            LastCol::None => 0,
            // Consecutive reads: the new burst must not overlap the old one.
            LastCol::Read { data_end } => data_end.saturating_sub(self.timing.tCAS),
            // Write-to-read: tWTR after the last write data beat.
            LastCol::Write { data_end } => data_end + self.timing.tWTR,
        }
    }

    /// Earliest WR command as constrained by the previous column operation.
    fn write_turnaround(&self) -> Cycle {
        match self.last_col {
            LastCol::None => 0,
            // Read-to-write: bus turnaround pad after the read burst.
            LastCol::Read { data_end } => {
                (data_end + self.timing.tRTRS).saturating_sub(self.timing.tCWD)
            }
            LastCol::Write { data_end } => data_end.saturating_sub(self.timing.tCWD),
        }
    }

    /// Issues `cmd` at cycle `t`, advancing device state.
    ///
    /// Returns the data completion time for column commands (`RD`: last read
    /// beat leaves the device; `WR`: last write beat accepted), `None`
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than [`earliest`](Self::earliest) allows —
    /// schedulers must only issue legal commands.
    pub fn issue(&mut self, cmd: DramCommand, t: Cycle) -> Option<Cycle> {
        assert!(t >= self.earliest(cmd, 0), "illegal issue of {cmd} at {t}");
        assert!(
            t.is_multiple_of(self.timing.cmd_cycle),
            "command at {t} not on a DRAM bus edge"
        );
        self.next_cmd = t + self.timing.cmd_cycle;
        match cmd {
            DramCommand::Activate { bank, row } => {
                self.banks[bank as usize].activate(t, row, &self.timing);
                self.next_act_any = t + self.timing.tRRD;
                self.recent_acts[self.recent_act_idx] = t;
                self.recent_act_idx = (self.recent_act_idx + 1) % 4;
                self.n_recent_acts = (self.n_recent_acts + 1).min(4);
                None
            }
            DramCommand::Read {
                bank,
                auto_precharge,
            } => {
                self.banks[bank as usize].read(t, auto_precharge, &self.timing);
                let data_end = t + self.timing.tCAS + self.timing.tBURST;
                self.last_col = LastCol::Read { data_end };
                self.next_col_any = t + self.timing.tCCD;
                Some(data_end)
            }
            DramCommand::Write {
                bank,
                auto_precharge,
            } => {
                self.banks[bank as usize].write(t, auto_precharge, &self.timing);
                let data_end = t + self.timing.tCWD + self.timing.tBURST;
                self.last_col = LastCol::Write { data_end };
                self.next_col_any = t + self.timing.tCCD;
                Some(data_end)
            }
            DramCommand::Precharge { bank } => {
                self.banks[bank as usize].precharge(t, &self.timing);
                None
            }
            DramCommand::Refresh => {
                let done = t + self.timing.tRFC;
                for b in &mut self.banks {
                    b.refresh_until(done);
                }
                self.refresh_until = done;
                self.refresh_due += self.timing.tREFI;
                self.refreshes += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_sim::config::{DramOrg, DramTiming};

    fn device() -> DramDevice {
        DramDevice::new(
            DramOrg::default(),
            DramTiming::default(),
            ClockRatio::new(1),
        )
    }

    fn act(bank: BankId, row: u64) -> DramCommand {
        DramCommand::Activate { bank, row }
    }

    fn rd(bank: BankId) -> DramCommand {
        DramCommand::Read {
            bank,
            auto_precharge: false,
        }
    }

    fn rda(bank: BankId) -> DramCommand {
        DramCommand::Read {
            bank,
            auto_precharge: true,
        }
    }

    fn wr(bank: BankId) -> DramCommand {
        DramCommand::Write {
            bank,
            auto_precharge: false,
        }
    }

    #[test]
    fn basic_read_sequence() {
        let mut d = device();
        let t0 = d.earliest(act(0, 5), 0);
        assert_eq!(t0, 0);
        d.issue(act(0, 5), t0);
        let t1 = d.earliest(rd(0), t0);
        assert_eq!(t1, t0 + d.timing().tRCD);
        let done = d.issue(rd(0), t1).unwrap();
        assert_eq!(done, t1 + d.timing().tCAS + d.timing().tBURST);
    }

    #[test]
    fn command_bus_serializes_commands() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        // ACT to another bank is limited by tRRD (5 > 1 command cycle).
        let t = d.earliest(act(1, 1), 0);
        assert_eq!(t, d.timing().tRRD);
    }

    #[test]
    fn trrd_spaces_activates() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        assert_eq!(d.earliest(act(1, 0), 0), d.timing().tRRD);
    }

    #[test]
    fn tfaw_limits_burst_of_activates() {
        let mut d = device();
        let t = *d.timing();
        let mut at = 0;
        for b in 0..4 {
            at = d.earliest(act(b, 0), at);
            d.issue(act(b, 0), at);
        }
        // Fifth ACT must wait for the FAW window from the first ACT.
        let fifth = d.earliest(act(4, 0), at);
        assert!(
            fifth >= t.tFAW,
            "fifth ACT at {fifth}, expected >= tFAW {}",
            t.tFAW
        );
    }

    #[test]
    fn consecutive_reads_gated_by_burst() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        d.issue(act(1, 1), d.earliest(act(1, 1), 0));
        let t_rd0 = d.earliest(rd(0), 0);
        let end0 = d.issue(rd(0), t_rd0).unwrap();
        let t_rd1 = d.earliest(rd(1), t_rd0);
        // Second read's data must start after the first burst ends.
        assert!(t_rd1 + d.timing().tCAS >= end0);
        // And at least tCCD after the first RD command.
        assert!(t_rd1 >= t_rd0 + d.timing().tCCD);
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        d.issue(act(1, 1), d.earliest(act(1, 1), 0));
        let t_wr = d.earliest(wr(0), 0);
        let wr_end = d.issue(wr(0), t_wr).unwrap();
        let t_rd = d.earliest(rd(1), t_wr);
        assert!(
            t_rd >= wr_end + d.timing().tWTR,
            "read at {t_rd}, write data end {wr_end}"
        );
    }

    #[test]
    fn read_to_write_turnaround() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        d.issue(act(1, 1), d.earliest(act(1, 1), 0));
        let t_rd = d.earliest(rd(0), 0);
        let rd_end = d.issue(rd(0), t_rd).unwrap();
        let t_wr = d.earliest(wr(1), t_rd);
        assert!(t_wr + d.timing().tCWD >= rd_end + d.timing().tRTRS);
    }

    #[test]
    fn auto_precharge_enables_reactivation() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        let t_rd = d.earliest(rda(0), 0);
        d.issue(rda(0), t_rd);
        assert!(d.bank(0).open_row().is_none());
        let t_act = d.earliest(act(0, 2), t_rd);
        // Re-activation respects tRC and the auto-precharge + tRP.
        assert!(t_act >= d.timing().tRC.min(d.timing().tRAS + d.timing().tRP));
        d.issue(act(0, 2), t_act);
    }

    #[test]
    fn refresh_blocks_everything() {
        let mut d = device();
        assert!(!d.refresh_due(0));
        let due = d.timing().tREFI;
        assert!(d.refresh_due(due));
        let t = d.earliest(DramCommand::Refresh, due);
        d.issue(DramCommand::Refresh, t);
        assert_eq!(d.refreshes(), 1);
        let act_t = d.earliest(act(0, 1), t);
        assert!(act_t >= t + d.timing().tRFC);
        assert!(!d.refresh_due(t));
    }

    #[test]
    fn refresh_waits_for_open_banks() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        // REF cannot issue while bank 0's row is open; earliest is pushed to
        // when the precharge could have completed.
        let t_ref = d.earliest(DramCommand::Refresh, 0);
        assert!(t_ref >= d.timing().tRAS);
    }

    #[test]
    fn earliest_is_idempotent_and_aligned() {
        let d = device();
        for now in 0..10 {
            let t = d.earliest(act(0, 0), now);
            assert_eq!(t % d.timing().cmd_cycle, 0);
            assert!(t >= now);
        }
    }

    #[test]
    fn clock_ratio_three_aligns_to_edges() {
        let mut d = DramDevice::new(
            DramOrg::default(),
            DramTiming::default(),
            ClockRatio::new(3),
        );
        let t = d.earliest(act(0, 0), 1);
        assert_eq!(t % 3, 0);
        d.issue(act(0, 0), t);
        let t_rd = d.earliest(rd(0), t);
        assert_eq!(t_rd % 3, 0);
        assert!(t_rd >= t + d.timing().tRCD);
    }

    #[test]
    #[should_panic(expected = "illegal issue")]
    fn premature_issue_panics() {
        let mut d = device();
        d.issue(act(0, 1), 0);
        d.issue(rd(0), 0); // before tRCD
    }

    #[test]
    fn blocking_reason_names_the_binding_constraint() {
        let mut d = device();
        assert_eq!(d.blocking_reason(act(0, 1), 0), None);
        d.issue(act(0, 1), 0);
        // RD right after ACT waits on the bank's tRCD.
        assert_eq!(d.blocking_reason(rd(0), 1), Some(BlockReason::Bank));
        // ACT to another bank waits on tRRD.
        assert_eq!(d.blocking_reason(act(1, 1), 1), Some(BlockReason::Rrd));
        // Write→read turnaround holds a read on another (ready) bank.
        d.issue(act(1, 1), d.earliest(act(1, 1), 1));
        let t_wr = d.earliest(wr(0), 0);
        let wr_end = d.issue(wr(0), t_wr).unwrap();
        assert_eq!(d.blocking_reason(rd(1), wr_end), Some(BlockReason::Bus));
    }

    #[test]
    fn blocking_reason_reports_faw_and_refresh() {
        let mut d = device();
        let mut at = 0;
        for b in 0..4 {
            at = d.earliest(act(b, 0), at);
            d.issue(act(b, 0), at);
        }
        // The fifth ACT is held by the four-activate window (tFAW is the
        // latest horizon: it spans from the *first* ACT, well past tRRD).
        assert_eq!(d.blocking_reason(act(4, 0), at + 1), Some(BlockReason::Faw));

        let mut d = device();
        let due = d.earliest(DramCommand::Refresh, d.timing().tREFI);
        d.issue(DramCommand::Refresh, due);
        assert_eq!(
            d.blocking_reason(act(0, 1), due + 1),
            Some(BlockReason::Refresh)
        );
    }
}
