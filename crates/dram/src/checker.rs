//! Independent DRAM command-trace legality checker.
//!
//! [`DramDevice`](crate::device::DramDevice) *prevents* illegal command
//! schedules; this module *detects* them after the fact, from a recorded
//! command trace, using a separate (deliberately re-derived) encoding of
//! the JEDEC constraints. Running both against the same traffic is a
//! differential test: any schedule the device emits must pass the checker,
//! and seeded violations must be caught. The figure harnesses can also
//! dump command traces and have them audited.

use dg_sim::clock::Cycle;
use serde::{Deserialize, Serialize};

use crate::command::DramCommand;
use crate::timing::CpuTiming;

/// One entry of a recorded command trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Issue cycle (CPU clock).
    pub at: Cycle,
    /// The command.
    pub cmd: DramCommand,
}

/// A detected timing violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Index of the offending trace entry.
    pub index: usize,
    /// Which constraint was violated.
    pub constraint: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankHistory {
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    last_wr: Option<Cycle>,
    open: bool,
}

/// Checks a command trace against the timing parameters. Returns every
/// violation found (empty = legal).
///
/// Covered constraints: command-bus serialization, tRC/tRRD/tFAW
/// (activation spacing), tRCD (ACT→column), tRAS/tRTP/tWR (→PRE), tRP
/// (PRE→ACT), tCCD (column spacing), tWTR (write→read turnaround), state
/// legality (no ACT on an open bank, no column on a closed one), and
/// tRFC (refresh blackout).
pub fn check_trace(trace: &[TraceEntry], t: &CpuTiming, banks: u32) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut hist = vec![BankHistory::default(); banks as usize];
    let mut last_cmd_at: Option<Cycle> = None;
    let mut recent_acts: Vec<Cycle> = Vec::new();
    let mut last_any_act: Option<Cycle> = None;
    let mut last_col: Option<(Cycle, bool)> = None; // (issue, is_write)
    let mut refresh_until: Cycle = 0;

    let mut fail = |index: usize, constraint: &'static str, detail: String| {
        v.push(Violation {
            index,
            constraint,
            detail,
        });
    };

    for (i, e) in trace.iter().enumerate() {
        if let Some(prev) = last_cmd_at {
            if e.at < prev {
                fail(i, "order", format!("command at {} after {}", e.at, prev));
            } else if e.at == prev {
                fail(i, "cmd-bus", format!("two commands share cycle {}", e.at));
            } else if e.at - prev < t.cmd_cycle {
                fail(
                    i,
                    "cmd-bus",
                    format!("commands {} apart, bus needs {}", e.at - prev, t.cmd_cycle),
                );
            }
        }
        last_cmd_at = Some(e.at);
        if e.at % t.cmd_cycle != 0 {
            fail(i, "cmd-edge", format!("{} not on a bus edge", e.at));
        }
        if e.at < refresh_until && !matches!(e.cmd, DramCommand::Refresh) {
            fail(i, "tRFC", format!("command at {} during refresh", e.at));
        }

        match e.cmd {
            DramCommand::Activate { bank, .. } => {
                let h = &mut hist[bank as usize];
                if h.open {
                    fail(i, "state", format!("ACT to open bank {bank}"));
                }
                if let Some(a) = h.last_act {
                    if e.at - a < t.tRC {
                        fail(i, "tRC", format!("ACT-ACT {} < {}", e.at - a, t.tRC));
                    }
                }
                if let Some(p) = h.last_pre {
                    if e.at - p < t.tRP {
                        fail(i, "tRP", format!("PRE-ACT {} < {}", e.at - p, t.tRP));
                    }
                }
                if let Some(a) = last_any_act {
                    if e.at - a < t.tRRD {
                        fail(i, "tRRD", format!("ACT-ACT(any) {} < {}", e.at - a, t.tRRD));
                    }
                }
                recent_acts.push(e.at);
                if recent_acts.len() > 4 {
                    recent_acts.remove(0);
                }
                if recent_acts.len() == 4 {
                    let span = e.at - recent_acts[0];
                    if span < t.tFAW && recent_acts[0] != e.at {
                        fail(i, "tFAW", format!("4 ACTs in {span} < {}", t.tFAW));
                    }
                }
                last_any_act = Some(e.at);
                h.last_act = Some(e.at);
                h.open = true;
            }
            DramCommand::Read {
                bank,
                auto_precharge,
            }
            | DramCommand::Write {
                bank,
                auto_precharge,
            } => {
                let is_write = matches!(e.cmd, DramCommand::Write { .. });
                let h = &mut hist[bank as usize];
                if !h.open {
                    fail(i, "state", format!("column access to closed bank {bank}"));
                }
                if let Some(a) = h.last_act {
                    if e.at - a < t.tRCD {
                        fail(i, "tRCD", format!("ACT-col {} < {}", e.at - a, t.tRCD));
                    }
                }
                if let Some((c, prev_write)) = last_col {
                    if e.at - c < t.tCCD {
                        fail(i, "tCCD", format!("col-col {} < {}", e.at - c, t.tCCD));
                    }
                    if prev_write && !is_write {
                        let wdata_end = c + t.tCWD + t.tBURST;
                        if e.at < wdata_end + t.tWTR {
                            fail(
                                i,
                                "tWTR",
                                format!("WR→RD at {} before {}", e.at, wdata_end + t.tWTR),
                            );
                        }
                    }
                }
                last_col = Some((e.at, is_write));
                if is_write {
                    h.last_wr = Some(e.at);
                } else {
                    h.last_rd = Some(e.at);
                }
                if auto_precharge {
                    // The implicit precharge occurs at the latest of the
                    // row/column recovery points; model it as a PRE at that
                    // time for subsequent tRP accounting.
                    let ras_point = h.last_act.map_or(e.at, |a| a + t.tRAS);
                    let col_point = if is_write {
                        e.at + t.tCWD + t.tBURST + t.tWR
                    } else {
                        e.at + t.tRTP
                    };
                    h.last_pre = Some(ras_point.max(col_point));
                    h.open = false;
                }
            }
            DramCommand::Precharge { bank } => {
                let h = &mut hist[bank as usize];
                if let Some(a) = h.last_act {
                    if e.at - a < t.tRAS {
                        fail(i, "tRAS", format!("ACT-PRE {} < {}", e.at - a, t.tRAS));
                    }
                }
                if let Some(r) = h.last_rd {
                    if e.at.saturating_sub(r) < t.tRTP {
                        fail(i, "tRTP", format!("RD-PRE {} < {}", e.at - r, t.tRTP));
                    }
                }
                if let Some(w) = h.last_wr {
                    let need = t.tCWD + t.tBURST + t.tWR;
                    if e.at.saturating_sub(w) < need {
                        fail(i, "tWR", format!("WR-PRE {} < {need}", e.at - w));
                    }
                }
                h.last_pre = Some(e.at);
                h.open = false;
            }
            DramCommand::Refresh => {
                for (b, h) in hist.iter().enumerate() {
                    if h.open {
                        fail(i, "state", format!("REF with bank {b} open"));
                    }
                }
                refresh_until = e.at + t.tRFC;
                for h in &mut hist {
                    h.last_pre = None;
                    h.last_act = None;
                }
            }
        }
    }
    v
}

/// Records command traces by wrapping issue calls (harness utility).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecorder {
    /// The recorded trace.
    pub trace: Vec<TraceEntry>,
}

impl CommandRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one issued command.
    pub fn record(&mut self, cmd: DramCommand, at: Cycle) {
        self.trace.push(TraceEntry { at, cmd });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BankId;
    use crate::device::DramDevice;
    use dg_sim::clock::ClockRatio;
    use dg_sim::config::{DramOrg, DramTiming};
    use dg_sim::rng::DetRng;

    fn timing() -> CpuTiming {
        CpuTiming::from_dram(DramTiming::default(), ClockRatio::new(1))
    }

    #[test]
    fn device_schedules_pass_the_checker_differential() {
        // Drive the device with randomized traffic; every schedule it
        // produces must be judged legal by the independent checker.
        let mut dev = DramDevice::new(
            DramOrg::default(),
            DramTiming::default(),
            ClockRatio::new(1),
        );
        let mut rec = CommandRecorder::new();
        let mut rng = DetRng::new(0xD1FF);
        let mut now = 0;
        for _ in 0..300 {
            let bank = rng.next_below(8) as BankId;
            let row = rng.next_below(64);
            let is_write = rng.next_bool(0.3);
            let auto = rng.next_bool(0.5);
            // Close the bank if a different row is open.
            if let Some(open) = dev.bank(bank).open_row() {
                if open != row {
                    let pre = DramCommand::Precharge { bank };
                    let at = dev.earliest(pre, now);
                    dev.issue(pre, at);
                    rec.record(pre, at);
                    now = at;
                }
            }
            if dev.bank(bank).open_row().is_none() {
                let act = DramCommand::Activate { bank, row };
                let at = dev.earliest(act, now);
                dev.issue(act, at);
                rec.record(act, at);
                now = at;
            }
            let col = if is_write {
                DramCommand::Write {
                    bank,
                    auto_precharge: auto,
                }
            } else {
                DramCommand::Read {
                    bank,
                    auto_precharge: auto,
                }
            };
            let at = dev.earliest(col, now);
            dev.issue(col, at);
            rec.record(col, at);
            now = at;
        }
        let violations = check_trace(&rec.trace, &timing(), 8);
        assert!(
            violations.is_empty(),
            "device emitted illegal schedule: {violations:?}"
        );
    }

    #[test]
    fn seeded_trcd_violation_is_caught() {
        let t = timing();
        let trace = vec![
            TraceEntry {
                at: 0,
                cmd: DramCommand::Activate { bank: 0, row: 1 },
            },
            TraceEntry {
                at: t.tRCD - 1,
                cmd: DramCommand::Read {
                    bank: 0,
                    auto_precharge: false,
                },
            },
        ];
        let v = check_trace(&trace, &t, 8);
        assert!(v.iter().any(|x| x.constraint == "tRCD"), "{v:?}");
    }

    #[test]
    fn seeded_trc_violation_is_caught() {
        let t = timing();
        let trace = vec![
            TraceEntry {
                at: 0,
                cmd: DramCommand::Activate { bank: 0, row: 1 },
            },
            TraceEntry {
                at: t.tRAS,
                cmd: DramCommand::Precharge { bank: 0 },
            },
            TraceEntry {
                at: t.tRAS + t.tRP,
                cmd: DramCommand::Activate { bank: 0, row: 2 },
            },
        ];
        // tRAS + tRP = tRC for Table 2, so this is legal…
        assert!(check_trace(&trace, &t, 8).is_empty());
        // …but one cycle earlier is not.
        let mut bad = trace.clone();
        bad[2].at -= 1;
        let v = check_trace(&bad, &t, 8);
        assert!(
            v.iter()
                .any(|x| x.constraint == "tRC" || x.constraint == "tRP"),
            "{v:?}"
        );
    }

    #[test]
    fn state_violations_caught() {
        let t = timing();
        // Column access without an open row.
        let v = check_trace(
            &[TraceEntry {
                at: 0,
                cmd: DramCommand::Read {
                    bank: 3,
                    auto_precharge: false,
                },
            }],
            &t,
            8,
        );
        assert!(v.iter().any(|x| x.constraint == "state"));
        // Double ACT.
        let v = check_trace(
            &[
                TraceEntry {
                    at: 0,
                    cmd: DramCommand::Activate { bank: 0, row: 1 },
                },
                TraceEntry {
                    at: t.tRC,
                    cmd: DramCommand::Activate { bank: 0, row: 2 },
                },
            ],
            &t,
            8,
        );
        assert!(v.iter().any(|x| x.constraint == "state"));
    }

    #[test]
    fn command_bus_collision_caught() {
        let t = timing();
        let v = check_trace(
            &[
                TraceEntry {
                    at: 0,
                    cmd: DramCommand::Activate { bank: 0, row: 1 },
                },
                TraceEntry {
                    at: 0,
                    cmd: DramCommand::Activate { bank: 1, row: 1 },
                },
            ],
            &t,
            8,
        );
        assert!(v.iter().any(|x| x.constraint == "cmd-bus"));
    }

    #[test]
    fn wtr_violation_caught() {
        let t = timing();
        let mut trace = vec![
            TraceEntry {
                at: 0,
                cmd: DramCommand::Activate { bank: 0, row: 1 },
            },
            TraceEntry {
                at: t.tRRD,
                cmd: DramCommand::Activate { bank: 1, row: 1 },
            },
        ];
        let wr_at = t.tRCD;
        trace.push(TraceEntry {
            at: wr_at,
            cmd: DramCommand::Write {
                bank: 0,
                auto_precharge: false,
            },
        });
        // Read far too soon after the write.
        trace.push(TraceEntry {
            at: wr_at + t.tCCD,
            cmd: DramCommand::Read {
                bank: 1,
                auto_precharge: false,
            },
        });
        trace.sort_by_key(|e| e.at);
        let v = check_trace(&trace, &t, 8);
        assert!(v.iter().any(|x| x.constraint == "tWTR"), "{v:?}");
    }

    #[test]
    fn empty_trace_is_legal() {
        assert!(check_trace(&[], &timing(), 8).is_empty());
    }
}
