//! DRAM command vocabulary.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bank index within the rank.
pub type BankId = u32;

/// A row index within a bank.
pub type RowId = u64;

/// The DRAM commands a memory controller can issue (§2.1: "each memory
/// request is converted to a sequence of DRAM commands").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramCommand {
    /// Open `row` in `bank` (ACT).
    Activate {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: RowId,
    },
    /// Column read from the open row of `bank` (RD / RDA).
    Read {
        /// Target bank.
        bank: BankId,
        /// Issue with auto-precharge (closed-row policy).
        auto_precharge: bool,
    },
    /// Column write to the open row of `bank` (WR / WRA).
    Write {
        /// Target bank.
        bank: BankId,
        /// Issue with auto-precharge (closed-row policy).
        auto_precharge: bool,
    },
    /// Close the open row of `bank` (PRE).
    Precharge {
        /// Target bank.
        bank: BankId,
    },
    /// All-bank refresh (REF); blocks the whole rank for `tRFC`.
    Refresh,
}

impl DramCommand {
    /// The bank this command targets, or `None` for rank-wide commands.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. }
            | DramCommand::Precharge { bank } => Some(bank),
            DramCommand::Refresh => None,
        }
    }

    /// True for RD/WR (column commands that move data on the bus).
    pub fn is_column(&self) -> bool {
        matches!(self, DramCommand::Read { .. } | DramCommand::Write { .. })
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramCommand::Activate { bank, row } => write!(f, "ACT b{bank} r{row}"),
            DramCommand::Read {
                bank,
                auto_precharge,
            } => write!(f, "{} b{bank}", if auto_precharge { "RDA" } else { "RD" }),
            DramCommand::Write {
                bank,
                auto_precharge,
            } => write!(f, "{} b{bank}", if auto_precharge { "WRA" } else { "WR" }),
            DramCommand::Precharge { bank } => write!(f, "PRE b{bank}"),
            DramCommand::Refresh => write!(f, "REF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_extraction() {
        assert_eq!(DramCommand::Activate { bank: 3, row: 9 }.bank(), Some(3));
        assert_eq!(
            DramCommand::Read {
                bank: 1,
                auto_precharge: false
            }
            .bank(),
            Some(1)
        );
        assert_eq!(DramCommand::Precharge { bank: 7 }.bank(), Some(7));
        assert_eq!(DramCommand::Refresh.bank(), None);
    }

    #[test]
    fn column_classification() {
        assert!(DramCommand::Read {
            bank: 0,
            auto_precharge: true
        }
        .is_column());
        assert!(DramCommand::Write {
            bank: 0,
            auto_precharge: false
        }
        .is_column());
        assert!(!DramCommand::Activate { bank: 0, row: 0 }.is_column());
        assert!(!DramCommand::Refresh.is_column());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            DramCommand::Activate { bank: 2, row: 5 }.to_string(),
            "ACT b2 r5"
        );
        assert_eq!(
            DramCommand::Read {
                bank: 0,
                auto_precharge: true
            }
            .to_string(),
            "RDA b0"
        );
        assert_eq!(
            DramCommand::Write {
                bank: 1,
                auto_precharge: false
            }
            .to_string(),
            "WR b1"
        );
        assert_eq!(DramCommand::Refresh.to_string(), "REF");
    }
}
