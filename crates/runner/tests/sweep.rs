//! End-to-end sweep properties: worker-count independence and
//! kill/resume crash safety, exercised through a real (tiny) experiment
//! spec running actual simulations.

use dg_runner::{
    host_cost_leaderboard, latency_leaderboard, merged_profile, merged_report_with_latency,
    ExperimentSpec, RunnerConfig,
};
use std::path::PathBuf;
use std::time::Duration;

const SPEC: &str = r#"
name = "it"

[scale]
preset = "smoke"
budget = 40_000_000

[grid]
defenses = ["insecure", "dagguise"]
victims = ["docdist"]
corunners = ["lbm", "xz"]
seeds = [0]
"#;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dg_runner_it_{name}_{}", std::process::id()));
    p
}

fn quiet(jobs: usize) -> RunnerConfig {
    RunnerConfig {
        jobs,
        verbose: false,
        backoff: Duration::from_millis(1),
        ..RunnerConfig::default()
    }
}

fn spec() -> ExperimentSpec {
    ExperimentSpec::from_toml_str(SPEC).unwrap()
}

/// Satellite (a): the merged report must be byte-identical whatever the
/// worker count, because each job's RNG seed derives from its stable id,
/// never from scheduling.
#[test]
fn merged_report_is_independent_of_worker_count() {
    let spec = spec();
    let seq = spec.run(&quiet(1)).unwrap();
    let par = spec.run(&quiet(4)).unwrap();
    assert_eq!(seq.progress.succeeded, 4);
    assert_eq!(par.progress.succeeded, 4);
    assert_eq!(
        seq.merged_report_json(&spec.name),
        par.merged_report_json(&spec.name),
        "reports must be byte-identical across --jobs values"
    );
    // The canonical dg-run report embeds the per-defense latency
    // leaderboard; histogram merging is bucket-wise and associative, so it
    // must stay byte-identical too.
    assert_eq!(
        merged_report_with_latency(&spec.name, &seq),
        merged_report_with_latency(&spec.name, &par),
        "latency-merged reports must be byte-identical across --jobs values"
    );

    let rows = latency_leaderboard(&seq);
    assert_eq!(rows.len(), 2, "one latency row per defense");
    for row in &rows {
        assert!(row.requests > 0, "{}: empty merged histogram", row.defense);
        assert!(row.p50 > 0, "{}: p50 missing", row.defense);
        assert!(
            row.p50 <= row.p99 && row.p99 <= row.p999 && row.p999 <= row.max,
            "{}: percentiles must be monotone",
            row.defense
        );
    }
}

/// Tentpole: a profiled sweep collects one host-time attribution tree per
/// job, dominated by known spans, without perturbing the simulation.
#[test]
fn profiled_sweep_attributes_host_time_per_defense() {
    // Unique sweep name: the profile collector is process-global and this
    // is the only test that drains it.
    let profiled = ExperimentSpec::from_toml_str(&format!("profile = true\n{SPEC}"))
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(profiled.expand().iter().all(|j| j.profile));
    let out = profiled.run(&quiet(2)).unwrap();
    assert_eq!(out.progress.succeeded, 4);

    let profiles: Vec<(String, dg_prof::ProfileReport)> = dg_prof::collector::drain()
        .into_iter()
        .filter(|(id, _)| id.starts_with("it/"))
        .collect();
    // Detect whether dg-prof was built with its `prof` feature; without it
    // the collector legitimately stays empty.
    dg_prof::start();
    let prof_compiled_in = dg_prof::is_enabled();
    dg_prof::stop();
    if !prof_compiled_in {
        assert!(profiles.is_empty());
        return;
    }
    assert_eq!(profiles.len(), 4, "one profile per successful job");
    for (id, p) in &profiles {
        assert!(p.total_ns > 0, "{id}: empty profile");
        // ci.sh holds the profiled smoke (a process with the sweep to
        // itself) to >= 0.9; here three sibling tests contend for the
        // same small host and preemption between spans eats coverage.
        assert!(
            p.coverage >= 0.85,
            "{id}: only {:.2} of wall time attributed",
            p.coverage
        );
        // Top-5, not top-3: sim's *self* time is scan overhead (its hot
        // children — dram_device, core_tick, mem_tick — are ranked
        // separately) and races `controller` within a few percent, which
        // parallel-test load on a small host flips either way.
        let top = p.top_self();
        assert!(
            top.iter().take(5).any(|(name, _)| name == "sim"),
            "{id}: sim phase missing from top-5 self time: {top:?}"
        );
    }

    let rows = host_cost_leaderboard(&profiles);
    assert_eq!(rows.len(), 2, "one host-cost row per defense");
    let folded = merged_profile(&profiles).unwrap().collapsed();
    assert!(folded.contains("run;sim"), "collapsed stacks: {folded}");

    // Profiling must not leak into the deterministic report: an
    // unprofiled run of the same spec merges identically.
    let unprofiled = spec().run(&quiet(2)).unwrap();
    assert_eq!(
        merged_report_with_latency("it", &out),
        merged_report_with_latency("it", &unprofiled),
        "profiling must not perturb the merged report"
    );
}

/// Satellite (d): a sweep killed mid-run — journal cut short, last line
/// half-written — resumes to a merged report byte-identical to an
/// uninterrupted run, at a different worker count, without re-running the
/// journaled jobs.
#[test]
fn killed_sweep_resumes_to_identical_report() {
    let spec = spec();
    let uninterrupted = spec.run(&quiet(2)).unwrap();
    let reference = uninterrupted.merged_report_json(&spec.name);

    // Produce a complete journal, then truncate it to simulate a kill:
    // keep the first two entries and leave a half-written third line.
    let journal = tmp("resume");
    let _ = std::fs::remove_file(&journal);
    let mut cfg = quiet(2);
    cfg.journal = Some(journal.clone());
    spec.run(&cfg).unwrap();

    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "one journal line per job");
    let mut cut: String = lines[..2].join("\n");
    cut.push('\n');
    cut.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(&journal, cut).unwrap();

    let mut cfg = quiet(3);
    cfg.resume = Some(journal.clone());
    let resumed = spec.run(&cfg).unwrap();
    assert_eq!(resumed.progress.skipped, 2, "journaled jobs are skipped");
    assert_eq!(
        resumed.merged_report_json(&spec.name),
        reference,
        "resumed report must be byte-identical to an uninterrupted run"
    );

    // The journal now holds the re-run jobs too: a second resume skips
    // everything.
    let mut cfg = quiet(1);
    cfg.resume = Some(journal.clone());
    let all_skipped = spec.run(&cfg).unwrap();
    assert_eq!(all_skipped.progress.skipped, 4);
    assert_eq!(all_skipped.progress.succeeded, 0);
    assert_eq!(all_skipped.merged_report_json(&spec.name), reference);
    std::fs::remove_file(&journal).unwrap();
}

/// Satellite (f) mechanics: an override that shrinks one job's budget
/// forces `SimError::Deadline` on the first attempt; escalation makes the
/// retry succeed, and the retried result matches an un-overridden run of
/// the same grid point (budget affects only *whether* a run finishes, not
/// its simulated behavior).
#[test]
fn forced_deadline_retries_and_converges() {
    let base = spec();
    let with_override = ExperimentSpec::from_toml_str(&format!(
        "{SPEC}\n[[override]]\nmatch = \"+lbm/insecure\"\nbudget = 50_000\n"
    ))
    .unwrap();
    let mut cfg = quiet(2);
    cfg.retries = 3;
    cfg.escalation = 1000; // 50k -> 50M on the first retry
    let out = with_override.run(&cfg).unwrap();
    assert_eq!(out.progress.succeeded, 4);
    assert!(
        out.progress.retries >= 1,
        "the tiny budget must force a retry"
    );

    let rec = out.get("it/docdist-s0+lbm/insecure").unwrap();
    assert_eq!(rec.attempts, 2);

    let reference = base.run(&quiet(2)).unwrap();
    let ref_rec = reference.get("it/docdist-s0+lbm/insecure").unwrap();
    assert_eq!(
        rec.output, ref_rec.output,
        "escalated retry must produce the same simulation result"
    );
}
