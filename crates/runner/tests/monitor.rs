//! Live-telemetry properties: monitoring must be purely observational
//! (byte-identical merged reports with it on or off), the events stream
//! must survive kill/--resume like the journal, and the stall watchdog
//! must cancel exactly the jobs whose simulated clock stops advancing.

use dg_mon::{scan_events, MonitorConfig};
use dg_runner::{merged_report_with_latency, run_sweep, ExperimentSpec, JobDesc, RunnerConfig};
use dg_sim::error::SimError;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SPEC: &str = r#"
name = "mon"

[scale]
preset = "smoke"
budget = 40_000_000

[grid]
defenses = ["insecure", "dagguise"]
victims = ["docdist"]
corunners = ["lbm", "xz"]
seeds = [0]
"#;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dg_runner_mon_{name}_{}", std::process::id()));
    p
}

fn quiet(jobs: usize) -> RunnerConfig {
    RunnerConfig {
        jobs,
        verbose: false,
        backoff: Duration::from_millis(1),
        ..RunnerConfig::default()
    }
}

fn spec() -> ExperimentSpec {
    ExperimentSpec::from_toml_str(SPEC).unwrap()
}

/// Satellite (b): enabling the dashboard, the events stream, and the
/// watchdog together must not change a single byte of the merged report —
/// heartbeats are write-only from the simulation's point of view.
#[test]
fn monitoring_does_not_perturb_the_report() {
    let spec = spec();
    let bare = spec.run(&quiet(2)).unwrap();
    let reference = merged_report_with_latency(&spec.name, &bare);

    let events = tmp("observer_events");
    let _ = std::fs::remove_file(&events);
    let mut cfg = quiet(2);
    cfg.monitor = MonitorConfig {
        live: true,
        events: Some(events.clone()),
        // Generous budget: armed, but must never fire here.
        stall_timeout: Some(Duration::from_secs(120)),
        interval: Some(Duration::from_millis(20)),
    };
    let monitored = spec.run(&cfg).unwrap();
    assert_eq!(monitored.progress.succeeded, 4);
    assert_eq!(
        merged_report_with_latency(&spec.name, &monitored),
        reference,
        "monitoring must be invisible in the merged report"
    );

    // The stream itself must be a well-formed, strictly-ordered record of
    // the run, ending in a terminal snapshot.
    let scan = scan_events(&events).unwrap();
    assert!(!scan.dropped_partial_tail);
    assert!(!scan.snapshots.is_empty());
    for pair in scan.snapshots.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seqs must strictly increase");
        assert!(pair[0].done <= pair[1].done, "done counts are monotonic");
        assert!(
            pair[0].sim_cycles <= pair[1].sim_cycles,
            "merged telemetry cycles are monotonic"
        );
    }
    assert_eq!(scan.snapshots[0].seq, 1, "fresh streams start at seq 1");
    let last = scan.snapshots.last().unwrap();
    assert_eq!(last.total, 4);
    assert_eq!(last.done, 4, "final snapshot must be terminal");
    assert_eq!(last.succeeded, 4);
    assert_eq!(last.stalled, 0, "the generous watchdog must not fire");
    assert!(
        last.sim_cycles > 0,
        "heartbeats must have reported simulated progress"
    );
    std::fs::remove_file(&events).unwrap();
}

/// Satellite (c): a sweep killed mid-run tears both the journal and the
/// events stream. `--resume` repairs the half-written events tail exactly
/// like the journal's, and the resumed run continues the stream with
/// fresh sequence numbers — no duplicates, no gap.
#[test]
fn killed_events_stream_repairs_and_resumes() {
    let spec = spec();
    let reference = merged_report_with_latency(&spec.name, &spec.run(&quiet(2)).unwrap());

    let journal = tmp("resume_journal");
    let events = tmp("resume_events");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&events);

    let mut cfg = quiet(2);
    cfg.journal = Some(journal.clone());
    cfg.monitor.events = Some(events.clone());
    cfg.monitor.interval = Some(Duration::from_millis(20));
    spec.run(&cfg).unwrap();

    // Simulate the kill: journal cut to two entries plus a half-written
    // line, events stream left with a torn trailing snapshot.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "one journal line per job");
    let mut cut: String = lines[..2].join("\n");
    cut.push('\n');
    cut.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(&journal, cut).unwrap();

    let pre_kill = scan_events(&events).unwrap();
    let survivor_seq = pre_kill.last_seq;
    assert!(survivor_seq >= 1);
    let mut stream = std::fs::read_to_string(&events).unwrap();
    stream.push_str("{\"seq\":999,\"elapsed_ms\":12,\"tot");
    std::fs::write(&events, stream).unwrap();

    let mut cfg = quiet(3);
    cfg.resume = Some(journal.clone());
    cfg.monitor.events = Some(events.clone());
    cfg.monitor.interval = Some(Duration::from_millis(20));
    let resumed = spec.run(&cfg).unwrap();
    assert_eq!(resumed.progress.skipped, 2, "journaled jobs are skipped");
    assert_eq!(
        merged_report_with_latency(&spec.name, &resumed),
        reference,
        "resumed report must be byte-identical to an uninterrupted run"
    );

    let scan = scan_events(&events).unwrap();
    assert!(!scan.dropped_partial_tail, "the torn tail must be repaired");
    let seqs: Vec<u64> = scan.snapshots.iter().map(|s| s.seq).collect();
    for pair in seqs.windows(2) {
        assert!(pair[0] < pair[1], "no duplicate snapshots after resume");
    }
    assert!(
        seqs.contains(&survivor_seq) && seqs.contains(&(survivor_seq + 1)),
        "the resumed stream must continue numbering from the surviving \
         tail without a gap: {seqs:?}"
    );
    let last = scan.snapshots.last().unwrap();
    assert_eq!(last.done, 4, "resumed stream ends in a terminal snapshot");
    assert_eq!(last.skipped, 2);

    std::fs::remove_file(&journal).unwrap();
    std::fs::remove_file(&events).unwrap();
}

struct WdJob {
    id: String,
}

impl JobDesc for WdJob {
    fn id(&self) -> &str {
        &self.id
    }
}

/// Tentpole (watchdog): a running job whose simulated clock never
/// advances is cancelled within the host-time budget and recorded with
/// the stall diagnosis, while jobs that keep publishing progress — even
/// slow ones — finish untouched.
#[test]
fn watchdog_cancels_only_the_stalled_job() {
    let jobs = vec![
        WdJob {
            id: "wd/alive".into(),
        },
        WdJob {
            id: "wd/stall".into(),
        },
    ];
    let mut cfg = quiet(2);
    cfg.monitor.stall_timeout = Some(Duration::from_millis(300));
    cfg.monitor.interval = Some(Duration::from_millis(50));

    let started = Instant::now();
    let out = run_sweep(&cfg, &jobs, |job, ctx| {
        let probe = ctx.monitor.as_ref().expect("watchdog arms monitoring");
        if job.id.ends_with("stall") {
            // Hold the simulated clock at zero until a supervisor
            // intervenes — the shape of a deadlocked or livelocked model.
            let t0 = Instant::now();
            while !ctx.expired() {
                if t0.elapsed() > Duration::from_secs(30) {
                    return Err(SimError::Aborted("watchdog never fired within 30s".into()));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            return Err(SimError::Aborted("simulated clock held".into()));
        }
        // Outlive several watchdog budgets, heartbeating all the while: a
        // slow-but-healthy job the watchdog must leave alone.
        for step in 1..=40u64 {
            probe.record(step * 1_000, step, 0);
            std::thread::sleep(Duration::from_millis(25));
        }
        Ok::<u64, SimError>(1)
    })
    .unwrap();

    let stalled = out.get("wd/stall").unwrap();
    let err = stalled.error.as_deref().unwrap();
    assert!(
        err.contains("stall watchdog"),
        "stall diagnosis missing from record: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "the watchdog, not the 30s escape hatch, must have ended the job"
    );

    let alive = out.get("wd/alive").unwrap();
    assert!(
        alive.is_ok(),
        "heartbeating job must not be flagged: {:?}",
        alive.error
    );
    assert_eq!(out.progress.failed, 1);
    assert_eq!(out.progress.succeeded, 1);
}
