//! Fault-injection supervision: planned IO faults and failing jobs must
//! degrade the sweep gracefully — completed results survive, damage is
//! surfaced through [`SweepHealth`]/[`ExitClass`], terminal failures are
//! quarantined — and transient faults must be invisible in the output.

use dg_fault::IoPlan;
use dg_runner::{replay_journal, run_sweep, ExitClass, JobCtx, JobDesc, RunnerConfig};
use dg_sim::error::SimError;
use std::path::PathBuf;
use std::time::Duration;

struct TestJob {
    id: String,
}

impl JobDesc for TestJob {
    fn id(&self) -> &str {
        &self.id
    }
}

fn jobs(n: usize) -> Vec<TestJob> {
    (0..n)
        .map(|i| TestJob {
            id: format!("ft/job-{i}"),
        })
        .collect()
}

fn ok_exec(_job: &TestJob, ctx: &JobCtx) -> Result<u64, SimError> {
    Ok(ctx.seed.rotate_left(13))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dg_fault_it_{name}_{}", std::process::id()))
}

fn quiet() -> RunnerConfig {
    RunnerConfig {
        jobs: 2,
        verbose: false,
        backoff: Duration::from_millis(1),
        ..RunnerConfig::default()
    }
}

/// ENOSPC mid-sweep: the journal degrades to in-memory mode, every
/// completed result still merges, the exit class says Infra — and a
/// healthy-disk resume from the surviving journal prefix converges to
/// the uninjected report.
#[test]
fn enospc_degrades_journal_and_healthy_resume_converges() {
    let jobs = jobs(9);
    let reference = run_sweep(&quiet(), &jobs, ok_exec).unwrap();
    let reference = reference.merged_report_json("ft");

    let journal = tmp("enospc");
    let _ = std::fs::remove_file(&journal);
    let mut cfg = quiet();
    cfg.jobs = 1; // deterministic write order: the fault lands mid-sweep
    cfg.journal = Some(journal.clone());
    cfg.fault_io = IoPlan::parse(&["journal@150:enospc"]).unwrap();
    let degraded = run_sweep(&cfg, &jobs, ok_exec).unwrap();

    assert!(degraded.health.journal_degraded, "journal must degrade");
    assert!(degraded.health.infra_failed());
    assert_eq!(degraded.exit_class(), ExitClass::Infra);
    assert_eq!(ExitClass::Infra.code(), 3);
    assert_eq!(
        degraded.progress.succeeded, 9,
        "degradation must not drop completed results"
    );
    assert_eq!(
        degraded.merged_report_json("ft"),
        reference,
        "the degraded run's merged report must still be canonical"
    );
    let on_disk = std::fs::metadata(&journal).unwrap().len();
    assert!(
        on_disk < 9 * 60,
        "a full disk cannot hold all records, got {on_disk} bytes"
    );

    // Healthy disk again: resume re-runs only the unjournaled jobs and
    // lands on the byte-identical report.
    let mut cfg = quiet();
    cfg.resume = Some(journal.clone());
    let resumed = run_sweep(&cfg, &jobs, ok_exec).unwrap();
    assert!(!resumed.health.infra_failed());
    assert_eq!(resumed.exit_class(), ExitClass::Success);
    assert_eq!(resumed.merged_report_json("ft"), reference);
    std::fs::remove_file(&journal).unwrap();
}

/// Transient faults (EINTR, short write) are retried at the exact byte:
/// the sweep neither fails nor degrades, and the journal ends up a fully
/// valid record of every job.
#[test]
fn transient_io_faults_are_invisible_after_retry() {
    let jobs = jobs(6);
    let journal = tmp("transient");
    let _ = std::fs::remove_file(&journal);
    let mut cfg = quiet();
    cfg.journal = Some(journal.clone());
    cfg.fault_io = IoPlan::parse(&["journal@40:eintr", "journal@110:partial"]).unwrap();
    let out = run_sweep(&cfg, &jobs, ok_exec).unwrap();

    assert!(!out.health.infra_failed(), "{:?}", out.health.io_errors);
    assert_eq!(out.exit_class(), ExitClass::Success);
    assert_eq!(out.progress.succeeded, 6);

    let replay = replay_journal::<u64>(&journal).unwrap();
    assert!(!replay.dropped_partial_tail, "no torn or duplicated bytes");
    assert_eq!(
        replay.entries.len(),
        6,
        "every record journaled exactly once"
    );
    std::fs::remove_file(&journal).unwrap();
}

/// Watchdog-style cancellations (`SimError::Aborted` with a stall
/// diagnosis) are terminal by default and retryable only behind
/// `retry_stalled` — the stall exit class tells the two apart.
#[test]
fn stalled_jobs_retry_only_when_opted_in() {
    let jobs = jobs(3);
    let exec = |job: &TestJob, ctx: &JobCtx| -> Result<u64, SimError> {
        if job.id.ends_with("job-1") && ctx.attempt == 0 {
            // Manufacture the watchdog signature: the probe is cancelled
            // with a stall diagnosis, then the attempt aborts.
            if let Some(p) = &ctx.monitor {
                p.cancel("stall watchdog: simulated clock stuck");
            }
            return Err(SimError::Aborted("supervisor cancelled".into()));
        }
        ok_exec(job, ctx)
    };

    // Monitoring must be live for cancellation to carry a diagnosis; a
    // generous stall budget keeps the real watchdog quiet.
    let mut cfg = quiet();
    cfg.monitor.stall_timeout = Some(Duration::from_secs(120));
    cfg.retries = 2;
    let out = run_sweep(&cfg, &jobs, exec).unwrap();
    assert_eq!(out.progress.failed, 1, "stalls are terminal by default");
    assert_eq!(out.health.stalled, 1);
    assert_eq!(out.exit_class(), ExitClass::Stall);
    assert_eq!(ExitClass::Stall.code(), 4);

    let mut cfg = quiet();
    cfg.monitor.stall_timeout = Some(Duration::from_secs(120));
    cfg.retries = 2;
    cfg.retry_stalled = true;
    let out = run_sweep(&cfg, &jobs, exec).unwrap();
    assert_eq!(out.progress.failed, 0, "opt-in makes the stall retryable");
    assert_eq!(out.progress.succeeded, 3);
    assert_eq!(out.exit_class(), ExitClass::Success);
    let rec = out.get("ft/job-1").unwrap();
    assert_eq!(rec.attempts, 2, "recovered on the retry");
}

/// Terminally failed jobs land in quarantine: one JSON diagnostics
/// bundle per job, carrying identity, attempts, the error, and a repro
/// command.
#[test]
fn exhausted_jobs_are_quarantined_with_diagnostics() {
    let jobs = jobs(4);
    let exec = |job: &TestJob, ctx: &JobCtx| -> Result<u64, SimError> {
        if job.id.ends_with("job-2") {
            return Err(SimError::InvalidConfig("synthetic terminal failure".into()));
        }
        ok_exec(job, ctx)
    };
    let qdir = tmp("quarantine_dir");
    let _ = std::fs::remove_dir_all(&qdir);
    let mut cfg = quiet();
    cfg.retries = 1;
    cfg.quarantine = Some(qdir.clone());
    cfg.repro_prefix = Some("dg-run chaos.toml".to_string());
    let out = run_sweep(&cfg, &jobs, exec).unwrap();

    assert_eq!(out.progress.failed, 1);
    assert_eq!(out.health.quarantined.len(), 1);
    let (id, bundle) = &out.health.quarantined[0];
    assert_eq!(id, "ft/job-2");
    let doc = std::fs::read_to_string(bundle).unwrap();
    for needle in [
        "\"id\": \"ft/job-2\"",
        "synthetic terminal failure",
        "\"attempts\": 1",
        "dg-run chaos.toml --only 'ft/job-2'",
        "\"wall_ms\"",
    ] {
        assert!(doc.contains(needle), "bundle missing {needle}: {doc}");
    }
    // Quarantine never rewrites history: the record still fails loudly.
    assert_eq!(out.exit_class(), ExitClass::JobFailures);
    std::fs::remove_dir_all(&qdir).unwrap();
}

/// The failure budget turns bounded failure into success — and infra
/// damage outranks it.
#[test]
fn failure_budget_gates_the_exit_class() {
    let jobs = jobs(5);
    let exec = |job: &TestJob, ctx: &JobCtx| -> Result<u64, SimError> {
        if job.id.ends_with("job-0") {
            return Err(SimError::InvalidConfig("bad grid point".into()));
        }
        ok_exec(job, ctx)
    };

    let out = run_sweep(&quiet(), &jobs, exec).unwrap();
    assert_eq!(out.exit_class(), ExitClass::JobFailures);
    assert_eq!(ExitClass::JobFailures.code(), 1);

    let mut cfg = quiet();
    cfg.max_failures = 1;
    let out = run_sweep(&cfg, &jobs, exec).unwrap();
    assert_eq!(out.progress.failed, 1);
    assert_eq!(out.exit_class(), ExitClass::Success);
    assert_eq!(ExitClass::Success.code(), 0);

    // Infra outranks the budget: a degraded journal is never a success.
    let journal = tmp("budget_enospc");
    let _ = std::fs::remove_file(&journal);
    let mut cfg = quiet();
    cfg.jobs = 1;
    cfg.max_failures = 1;
    cfg.journal = Some(journal.clone());
    cfg.fault_io = IoPlan::parse(&["journal@30:enospc"]).unwrap();
    let out = run_sweep(&cfg, &jobs, exec).unwrap();
    assert_eq!(out.exit_class(), ExitClass::Infra);
    std::fs::remove_file(&journal).unwrap();
}
