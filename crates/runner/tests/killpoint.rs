//! Randomized kill-point recovery harness: a sweep killed at *any* byte
//! offset of its journal — and of its events stream — must resume to a
//! merged report byte-identical to an uninterrupted run.
//!
//! The harness crashes a reference sweep at ≥50 distinct seeded offsets
//! (the issue's acceptance floor) by truncating the on-disk files to a
//! prefix, exactly what a `kill -9` mid-append leaves behind. Jobs are
//! synthetic (pure functions of the job seed) so each recovery cycle is
//! microseconds, not simulation time.

use dg_runner::runner::run_sweep;
use dg_runner::{JobCtx, JobDesc, RunnerConfig};
use dg_sim::error::SimError;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

struct TestJob {
    id: String,
}

impl JobDesc for TestJob {
    fn id(&self) -> &str {
        &self.id
    }
}

/// A deterministic, instant "simulation": output is a pure function of
/// the ctx seed, like every real executor is contracted to be.
fn exec(_job: &TestJob, ctx: &JobCtx) -> Result<u64, SimError> {
    Ok(ctx.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7)
}

fn jobs() -> Vec<TestJob> {
    (0..9)
        .map(|i| TestJob {
            id: format!("kp/job-{i}"),
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dg_killpoint_{name}_{}", std::process::id()))
}

fn quiet() -> RunnerConfig {
    RunnerConfig {
        jobs: 2,
        verbose: false,
        backoff: Duration::from_millis(1),
        ..RunnerConfig::default()
    }
}

/// SplitMix64: the harness's own offsets are seeded, not random, so a
/// failing offset reproduces exactly.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws `n` distinct offsets in `[0, len]` from a seeded stream.
fn seeded_offsets(seed: u64, n: usize, len: usize) -> Vec<usize> {
    let mut state = seed;
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    while out.len() < n {
        let off = (splitmix(&mut state) as usize) % (len + 1);
        if seen.insert(off) {
            out.push(off);
        }
    }
    out
}

#[test]
fn every_journal_crash_offset_resumes_byte_identical() {
    let jobs = jobs();
    let reference = run_sweep(&quiet(), &jobs, exec).unwrap();
    let reference = reference.merged_report_json("kp");

    // A complete journal to carve crash prefixes from.
    let journal = tmp("journal");
    let _ = std::fs::remove_file(&journal);
    let mut cfg = quiet();
    cfg.journal = Some(journal.clone());
    run_sweep(&cfg, &jobs, exec).unwrap();
    let full = std::fs::read(&journal).unwrap();
    assert!(full.len() > 200, "journal too small to be interesting");

    let offsets = seeded_offsets(0xDA66_0001, 40, full.len());
    for &off in &offsets {
        std::fs::write(&journal, &full[..off]).unwrap();
        let mut cfg = quiet();
        cfg.resume = Some(journal.clone());
        let resumed = run_sweep(&cfg, &jobs, exec)
            .unwrap_or_else(|e| panic!("resume after crash at byte {off} failed: {e}"));
        assert_eq!(
            resumed.merged_report_json("kp"),
            reference,
            "crash at journal byte {off}: resumed report diverged"
        );
        assert_eq!(
            resumed.progress.skipped + resumed.progress.succeeded,
            jobs.len() as u64,
            "crash at journal byte {off}: job accounting broken"
        );
    }
    assert!(offsets.len() >= 40);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn every_events_crash_offset_resumes_byte_identical() {
    let jobs = jobs();
    let reference = run_sweep(&quiet(), &jobs, exec).unwrap();
    let reference = reference.merged_report_json("kp");

    // A complete journal + events stream to carve crash prefixes from.
    // A short sampling interval guarantees the stream has content even
    // though the synthetic jobs are instant.
    let journal = tmp("ev_journal");
    let events = tmp("events");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&events);
    let mut cfg = quiet();
    cfg.journal = Some(journal.clone());
    cfg.monitor.events = Some(events.clone());
    cfg.monitor.interval = Some(Duration::from_millis(1));
    run_sweep(&cfg, &jobs, exec).unwrap();
    let full_journal = std::fs::read(&journal).unwrap();
    let full_events = std::fs::read(&events).unwrap();
    assert!(!full_events.is_empty(), "events stream never flushed");

    // One crash tears both files: pair each events offset with a journal
    // offset from an independent seeded stream.
    let ev_offsets = seeded_offsets(0xDA66_0002, 16, full_events.len());
    let jr_offsets = seeded_offsets(0xDA66_0003, 16, full_journal.len());
    for (&ev_off, &jr_off) in ev_offsets.iter().zip(&jr_offsets) {
        std::fs::write(&events, &full_events[..ev_off]).unwrap();
        std::fs::write(&journal, &full_journal[..jr_off]).unwrap();
        let mut cfg = quiet();
        cfg.resume = Some(journal.clone());
        cfg.monitor.events = Some(events.clone());
        cfg.monitor.interval = Some(Duration::from_millis(1));
        let resumed = run_sweep(&cfg, &jobs, exec).unwrap_or_else(|e| {
            panic!("resume after crash at events byte {ev_off} / journal byte {jr_off}: {e}")
        });
        assert_eq!(
            resumed.merged_report_json("kp"),
            reference,
            "crash at events byte {ev_off} / journal byte {jr_off}: report diverged"
        );
        // The repaired stream must still be a valid, monotone JSONL log.
        let scan = dg_mon::scan_events(&events)
            .unwrap_or_else(|e| panic!("events unscannable after crash at byte {ev_off}: {e}"));
        let seqs: Vec<u64> = scan.snapshots.iter().map(|s| s.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            seqs.len(),
            "crash at events byte {ev_off}: duplicate seqs after repair"
        );
    }
    std::fs::remove_file(&journal).unwrap();
    std::fs::remove_file(&events).unwrap();
}
