//! Sweep-level latency aggregation: merges per-job HDR latency snapshots
//! into a per-defense percentile leaderboard embedded in the merged report.
//!
//! Unlike the host-time profiles ([`profile`](crate::profile)), latency
//! histograms are *simulated*-time artifacts: deterministic for a
//! deterministic sweep, and merged bucket-wise (associative, commutative),
//! so the leaderboard — like everything else in the merged report — is
//! byte-identical across worker counts and kill/`--resume` cycles.

use crate::job::JobRecord;
use crate::runner::SweepOutcome;
use dg_prof::HistSnapshot;
use dg_system::ColocationResult;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// One defense's merged victim-latency percentiles across its grid points.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyRow {
    /// Defense name (job-id suffix after the last `/`).
    pub defense: String,
    /// Jobs that contributed a victim-domain latency snapshot.
    pub jobs: u64,
    /// Real memory requests the merged histogram covers.
    pub requests: u64,
    /// Median simulated latency in CPU cycles (bucket lower bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest observed latency.
    pub max: u64,
}

/// The defense segment of a job id (`{sweep}/{point}/{defense}`).
fn defense_of(id: &str) -> &str {
    id.rsplit('/').next().unwrap_or(id)
}

/// Iterates `(defense, victim-domain snapshot)` over successful jobs that
/// recorded one. The sweep is victim-centric (the victim always runs on
/// domain 0), so the leaderboard merges domain-0 latency only — mixing in
/// co-runner traffic would dilute exactly the tail the defenses perturb.
fn victim_snapshots(
    records: &[JobRecord<ColocationResult>],
) -> impl Iterator<Item = (&str, &HistSnapshot)> {
    records.iter().filter_map(|r| {
        let snap = r.output.as_ref()?.latency.first()?;
        Some((defense_of(&r.id), snap))
    })
}

/// Merges per-job victim latency into one row per defense, sorted by
/// defense name (the merged report must not depend on float ordering).
pub fn latency_leaderboard(outcome: &SweepOutcome<ColocationResult>) -> Vec<LatencyRow> {
    let mut by_defense: BTreeMap<&str, Vec<&HistSnapshot>> = BTreeMap::new();
    for (defense, snap) in victim_snapshots(&outcome.records) {
        by_defense.entry(defense).or_default().push(snap);
    }
    by_defense
        .into_iter()
        .map(|(defense, snaps)| {
            let merged = HistSnapshot::merged(&snaps);
            LatencyRow {
                defense: defense.to_string(),
                jobs: snaps.len() as u64,
                requests: merged.count,
                p50: merged.p50,
                p90: merged.p90,
                p99: merged.p99,
                p999: merged.p999,
                max: merged.max,
            }
        })
        .collect()
}

/// The canonical merged report for a colocation sweep: pretty JSON with a
/// per-defense latency leaderboard ahead of the per-job records. Supersedes
/// the generic [`SweepOutcome::merged_report_json`] for `dg-run` — same
/// determinism contract, richer shape.
pub fn merged_report_with_latency(
    sweep_name: &str,
    outcome: &SweepOutcome<ColocationResult>,
) -> String {
    let latency = Value::Seq(
        latency_leaderboard(outcome)
            .iter()
            .map(Serialize::to_value)
            .collect(),
    );
    let jobs = Value::Seq(outcome.records.iter().map(Serialize::to_value).collect());
    let doc = Value::Map(vec![
        ("sweep".to_string(), sweep_name.to_value()),
        ("latency".to_string(), latency),
        ("jobs".to_string(), jobs),
    ]);
    serde_json::to_string_pretty(&doc).expect("merged report serialization is infallible")
}

/// Renders the leaderboard as the text table `dg-run` prints next to its
/// summary. Empty string when no job carried latency data.
pub fn latency_table(rows: &[LatencyRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "victim memory latency (simulated cycles, merged per defense)\n\
         defense                  p50      p90      p99     p999      max    jobs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}\n",
            r.defense, r.p50, r.p90, r.p99, r.p999, r.max, r.jobs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_obs::SweepProgress;
    use dg_prof::LogHistogram;

    fn snap(values: &[u64]) -> HistSnapshot {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    fn record(id: &str, values: &[u64]) -> JobRecord<ColocationResult> {
        JobRecord {
            id: id.to_string(),
            attempts: 1,
            output: Some(ColocationResult {
                cores: vec![],
                bandwidth_gbps: vec![],
                total_cycles: 1,
                latency: vec![snap(values), snap(&[1_000_000])],
                leakage: None,
            }),
            error: None,
        }
    }

    fn outcome(records: Vec<JobRecord<ColocationResult>>) -> SweepOutcome<ColocationResult> {
        SweepOutcome {
            records,
            progress: SweepProgress::default(),
            health: Default::default(),
        }
    }

    #[test]
    fn leaderboard_merges_victim_domain_per_defense() {
        let out = outcome(vec![
            record("s/a+x/insecure", &[40, 40, 40, 40]),
            record("s/b+x/insecure", &[200, 200, 200, 200]),
            record("s/a+x/dagguise", &[400; 8]),
        ]);
        let rows = latency_leaderboard(&out);
        assert_eq!(rows.len(), 2);
        // BTreeMap order: dagguise before insecure.
        assert_eq!(rows[0].defense, "dagguise");
        assert_eq!(rows[0].jobs, 1);
        assert_eq!(rows[0].requests, 8);
        assert!(rows[0].p99 >= 256, "p99 in the 400 bucket: {}", rows[0].p99);
        let insecure = &rows[1];
        assert_eq!(insecure.defense, "insecure");
        assert_eq!(insecure.jobs, 2);
        assert_eq!(insecure.requests, 8);
        // Merged across both jobs: median straddles the two value groups.
        assert!(insecure.p50 >= 40 && insecure.p50 <= 200);
        // Co-runner domain (the 1_000_000 sample) must NOT leak in.
        assert!(insecure.max < 1_000_000);
    }

    #[test]
    fn merged_report_carries_latency_section() {
        let out = outcome(vec![record("s/a+x/insecure", &[40, 80, 400])]);
        let json = merged_report_with_latency("s", &out);
        assert!(json.contains("\"sweep\": \"s\""));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"id\": \"s/a+x/insecure\""));
        let table = latency_table(&latency_leaderboard(&out));
        assert!(table.contains("insecure"));
    }

    #[test]
    fn jobs_without_latency_are_skipped() {
        let mut bare = record("s/a+x/insecure", &[40]);
        bare.output.as_mut().unwrap().latency.clear();
        let out = outcome(vec![bare]);
        assert!(latency_leaderboard(&out).is_empty());
        assert_eq!(latency_table(&[]), "");
    }
}
