//! Sweep-level host-cost aggregation: merges per-job span profiles into a
//! per-defense host-time leaderboard and a standalone profile artifact.
//!
//! Host time is everything the merged report is not: nondeterministic,
//! machine-dependent, and load-sensitive. Profiles therefore never enter
//! the canonical report — `dg-run --profile PATH` drains the process-global
//! [`dg_prof::collector`] after the sweep and writes them to their own
//! artifact (plus a collapsed-stack sibling for flamegraphs), answering
//! *where does the simulator itself spend wall time per defense?*

use dg_prof::ProfileReport;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// One defense's aggregated host cost across all its profiled jobs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostCostRow {
    /// Defense name (job-id suffix after the last `/`).
    pub defense: String,
    /// Profiled jobs merged into this row.
    pub jobs: u64,
    /// Total wall time across those jobs, in nanoseconds.
    pub total_ns: u64,
    /// Fraction of wall time attributed to named spans.
    pub coverage: f64,
    /// The three hottest components by self time, `(span, self_ns)`.
    pub top_self: Vec<(String, u64)>,
}

/// The defense segment of a job id (`{sweep}/{point}/{defense}`).
fn defense_of(id: &str) -> &str {
    id.rsplit('/').next().unwrap_or(id)
}

/// Groups per-job profiles by defense and merges each group, sorted by
/// descending total host time (ties by name). `profiles` is `(job id,
/// report)` as drained from [`dg_prof::collector::drain`].
pub fn host_cost_leaderboard(profiles: &[(String, ProfileReport)]) -> Vec<HostCostRow> {
    let mut by_defense: BTreeMap<&str, ProfileReport> = BTreeMap::new();
    let mut jobs: BTreeMap<&str, u64> = BTreeMap::new();
    for (id, report) in profiles {
        let defense = defense_of(id);
        *jobs.entry(defense).or_insert(0) += 1;
        match by_defense.get_mut(defense) {
            Some(acc) => acc.merge(report),
            None => {
                by_defense.insert(defense, report.clone());
            }
        }
    }
    let mut rows: Vec<HostCostRow> = by_defense
        .into_iter()
        .map(|(defense, merged)| HostCostRow {
            defense: defense.to_string(),
            jobs: jobs[defense],
            total_ns: merged.total_ns,
            coverage: merged.coverage,
            top_self: merged.top_self().into_iter().take(3).collect(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| a.defense.cmp(&b.defense))
    });
    rows
}

/// Merges every profiled job into one whole-sweep attribution tree, for
/// the collapsed-stack flamegraph export. `None` when nothing was profiled.
pub fn merged_profile(profiles: &[(String, ProfileReport)]) -> Option<ProfileReport> {
    let mut it = profiles.iter();
    let mut acc = it.next()?.1.clone();
    for (_, p) in it {
        acc.merge(p);
    }
    Some(acc)
}

/// The standalone profile artifact: the host-cost leaderboard plus every
/// job's attribution tree, in job-id order (the collector drains sorted).
pub fn profile_report_json(sweep_name: &str, profiles: &[(String, ProfileReport)]) -> String {
    let leaderboard = Value::Seq(
        host_cost_leaderboard(profiles)
            .iter()
            .map(Serialize::to_value)
            .collect(),
    );
    let jobs = Value::Seq(
        profiles
            .iter()
            .map(|(id, report)| {
                Value::Map(vec![
                    ("id".to_string(), id.to_value()),
                    ("defense".to_string(), defense_of(id).to_value()),
                    ("profile".to_string(), report.to_value()),
                ])
            })
            .collect(),
    );
    let doc = Value::Map(vec![
        ("sweep".to_string(), sweep_name.to_value()),
        ("leaderboard".to_string(), leaderboard),
        ("jobs".to_string(), jobs),
    ]);
    serde_json::to_string_pretty(&doc).expect("profile report serialization is infallible")
}

/// Renders the leaderboard as the text table `dg-run --profile` prints.
/// Empty string when nothing was profiled (e.g. the `prof` feature is off).
pub fn host_cost_table(rows: &[HostCostRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "host-cost leaderboard (wall time per defense, costliest first)\n\
         defense                 total ms   cov   jobs  hottest spans (self ms)\n",
    );
    for r in rows {
        let hot: Vec<String> = r
            .top_self
            .iter()
            .map(|(name, ns)| format!("{name} {:.1}", *ns as f64 / 1e6))
            .collect();
        out.push_str(&format!(
            "{:<20} {:>11.1} {:>5.2} {:>6}  {}\n",
            r.defense,
            r.total_ns as f64 / 1e6,
            r.coverage,
            r.jobs,
            hot.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_prof::ProfileNode;

    fn leaf(name: &str, calls: u64, ns: u64) -> ProfileNode {
        ProfileNode {
            name: name.to_string(),
            calls,
            total_ns: ns,
            self_ns: ns,
            children: vec![],
        }
    }

    fn report(sim_ns: u64, report_ns: u64) -> ProfileReport {
        let total = sim_ns + report_ns + 10;
        ProfileReport {
            total_ns: total,
            coverage: (sim_ns + report_ns) as f64 / total as f64,
            root: ProfileNode {
                name: "run".to_string(),
                calls: 1,
                total_ns: total,
                self_ns: 10,
                children: vec![leaf("report", 1, report_ns), leaf("sim", 1, sim_ns)],
            },
        }
    }

    #[test]
    fn leaderboard_groups_and_sorts_by_host_cost() {
        let profiles = vec![
            ("s/a+x/insecure".to_string(), report(100, 50)),
            ("s/b+x/insecure".to_string(), report(300, 50)),
            ("s/a+x/dagguise".to_string(), report(9_000, 100)),
        ];
        let rows = host_cost_leaderboard(&profiles);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].defense, "dagguise");
        assert_eq!(rows[0].jobs, 1);
        assert_eq!(rows[1].defense, "insecure");
        assert_eq!(rows[1].jobs, 2);
        assert_eq!(rows[1].total_ns, 520);
        // Hottest span first in the digest.
        assert_eq!(rows[0].top_self[0].0, "sim");

        let table = host_cost_table(&rows);
        assert!(table.find("dagguise").unwrap() < table.find("insecure").unwrap());
    }

    #[test]
    fn merged_profile_spans_the_whole_sweep() {
        let profiles = vec![
            ("s/a/one".to_string(), report(100, 10)),
            ("s/a/two".to_string(), report(200, 20)),
        ];
        let merged = merged_profile(&profiles).unwrap();
        // (100 + 10 + 10) + (200 + 20 + 10) — each report carries 10ns of
        // unattributed root self time.
        assert_eq!(merged.total_ns, 350);
        let collapsed = merged.collapsed();
        assert!(collapsed.contains("run;sim 300"));
        assert!(collapsed.contains("run;report 30"));
        assert!(merged_profile(&[]).is_none());
    }

    #[test]
    fn profile_report_json_carries_trees_and_leaderboard() {
        let profiles = vec![("s/a/one".to_string(), report(100, 10))];
        let json = profile_report_json("s", &profiles);
        assert!(json.contains("\"sweep\": \"s\""));
        assert!(json.contains("\"leaderboard\""));
        assert!(json.contains("\"top_self\""));
        assert!(json.contains("\"id\": \"s/a/one\""));
        assert_eq!(host_cost_table(&[]), "");
    }
}
