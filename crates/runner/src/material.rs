//! Workload construction helpers shared by the harnesses and `dg-run`.
//!
//! Moved here from `dg-bench` (which re-exports them) so spec execution
//! does not depend on the figure-harness crate.

use dg_cpu::MemTrace;
use dg_rdag::template::RdagTemplate;
use dg_workloads::{DnaWorkload, DocDistWorkload, SpecPreset};

use crate::scale::Scale;

/// DocDist victim trace at the given scale.
pub fn docdist_trace(scale: &Scale, secret: u64) -> MemTrace {
    let w = DocDistWorkload {
        vocab: scale.docdist_vocab,
        doc_words: scale.docdist_words,
        secret,
    };
    w.record().0
}

/// DNA victim trace at the given scale.
pub fn dna_trace(scale: &Scale, secret: u64) -> MemTrace {
    let w = DnaWorkload {
        genome_len: scale.dna_genome,
        k: 12,
        buckets: (scale.dna_genome as u64 / 4).next_power_of_two(),
        read_len: scale.dna_read,
        secret,
    };
    w.record().0
}

/// SPEC co-runner trace; `slot` offsets the data region so co-running
/// instances do not share lines.
pub fn spec_trace(scale: &Scale, name: &str, slot: u64) -> MemTrace {
    spec_trace_seeded(scale, name, slot, 0xC0DE + slot)
}

/// [`spec_trace`] with an explicit generator seed. Sweep jobs pass a seed
/// derived from the stable job id ([`crate::job::job_seed`]) so a job's
/// co-runner traffic is a pure function of the job identity, never of
/// worker scheduling.
pub fn spec_trace_seeded(scale: &Scale, name: &str, slot: u64, seed: u64) -> MemTrace {
    SpecPreset::by_name(name)
        .unwrap_or_else(|| panic!("unknown SPEC preset {name}"))
        .generate(scale.spec_instructions, (4 + slot) << 32, seed)
}

/// The defense rDAG selected for DocDist by the §4.3 methodology: the
/// highest-IPC candidate whose allocated bandwidth falls in the 2-4 GB/s
/// cost-effective band of Figure 7(c). On our substrate that is four
/// parallel sequences with weight 25 (the paper's gem5/DRAMSim2 stack
/// lands on 4 x 100 from the same band — see EXPERIMENTS.md for the
/// calibration discussion). The write ratio is profiled at 1/4: unlike
/// the paper's DocDist, our reimplementation's feature-vector build phase
/// produces substantial write-back traffic.
pub fn docdist_defense() -> RdagTemplate {
    RdagTemplate::new(4, 25, 0.25)
}

/// The defense rDAG profiled for the DNA workload: its hash-probe traffic
/// is burstier and nearly read-only, so profiling selects a denser
/// template with a small write share for the bookkeeping write-backs.
pub fn dna_defense() -> RdagTemplate {
    RdagTemplate::new(8, 50, 0.125)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_buildable_at_smoke_scale() {
        let s = Scale::smoke();
        assert!(!docdist_trace(&s, 0).is_empty());
        assert!(!dna_trace(&s, 0).is_empty());
        assert!(!spec_trace(&s, "lbm", 0).is_empty());
    }

    #[test]
    fn seeded_spec_trace_varies_with_seed_only() {
        let s = Scale::smoke();
        let a = spec_trace_seeded(&s, "lbm", 0, 1);
        let b = spec_trace_seeded(&s, "lbm", 0, 1);
        let c = spec_trace_seeded(&s, "lbm", 0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "unknown SPEC preset")]
    fn unknown_preset_panics() {
        spec_trace(&Scale::quick(), "nope", 0);
    }
}
