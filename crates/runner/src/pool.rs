//! The work-stealing worker pool.
//!
//! Jobs are sharded round-robin across per-worker FIFO deques
//! (`crossbeam::deque`); an idle worker first drains its own deque, then
//! steals from its peers. Because each job runs to a *terminal* state
//! inside one worker (retries are re-executed in place, not re-enqueued),
//! no new tasks ever appear after startup, and a worker may exit as soon as
//! one full sweep over every deque comes back empty.
//!
//! Scheduling order is explicitly *not* part of any result: job outputs
//! must be pure functions of the job description (see
//! [`job_seed`](crate::job::job_seed)), so the pool is free to interleave
//! however the host machine likes.

use crossbeam::deque::{Steal, Stealer, Worker};

/// Runs `f(worker_index, item)` over every item using `workers` threads
/// with work stealing. Blocks until all items are processed.
///
/// `f` is responsible for its own panic containment: a panic that escapes
/// `f` aborts the whole pool (the runner layer wraps job execution in
/// `catch_unwind` precisely so one bad config point cannot do that).
pub fn run_work_stealing<T, F>(items: Vec<T>, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let workers = workers.max(1);
    let locals: Vec<Worker<T>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<T>> = locals.iter().map(Worker::stealer).collect();
    for (i, item) in items.into_iter().enumerate() {
        locals[i % workers].push(item);
    }

    std::thread::scope(|scope| {
        for (idx, local) in locals.into_iter().enumerate() {
            let stealers = &stealers;
            let f = &f;
            scope.spawn(move || {
                while let Some(task) = find_task(idx, &local, stealers) {
                    f(idx, task);
                }
            });
        }
    });
}

/// Pops from the local deque, then tries to steal from peers (starting at
/// the right-hand neighbour so workers don't all gang up on worker 0).
/// Returns `None` only after a full pass finds every deque empty.
fn find_task<T>(idx: usize, local: &Worker<T>, stealers: &[Stealer<T>]) -> Option<T> {
    loop {
        if let Some(task) = local.pop() {
            return Some(task);
        }
        let n = stealers.len();
        let mut saw_retry = false;
        for off in 1..n {
            match stealers[(idx + off) % n].steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => saw_retry = true,
                Steal::Empty => {}
            }
        }
        if !saw_retry {
            return None;
        }
        std::thread::yield_now();
    }
}

/// Resolves the worker count: an explicit `--jobs` value wins, then the
/// `DG_JOBS` environment variable, then the host's available parallelism
/// (capped at 16 — sweep jobs are memory-hungry simulations).
pub fn effective_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit.filter(|&n| n > 0) {
        return n;
    }
    if let Some(n) = std::env::var("DG_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn every_item_processed_exactly_once() {
        let seen = Mutex::new(Vec::new());
        run_work_stealing((0..100u32).collect(), 4, |_, item| {
            seen.lock().unwrap().push(item);
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_preserves_submission_order() {
        let seen = Mutex::new(Vec::new());
        run_work_stealing(vec![1, 2, 3, 4], 1, |_, item| {
            seen.lock().unwrap().push(item);
        });
        assert_eq!(seen.into_inner().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn uneven_work_gets_stolen() {
        // One slow item in worker 0's deque; the other workers should
        // drain everything else meanwhile. We only assert completion — the
        // point is that a slow job cannot serialize the sweep.
        let done = AtomicU64::new(0);
        run_work_stealing((0..32u64).collect(), 4, |_, item| {
            if item == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let done = AtomicU64::new(0);
        run_work_stealing(vec![1, 2, 3], 0, |_, _| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn effective_jobs_prefers_explicit() {
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(None) >= 1);
    }
}
