//! `dg-run`: execute an experiment spec through the orchestration runner.
//!
//! ```text
//! dg-run spec.toml [--jobs N] [--journal PATH] [--resume PATH]
//!                  [--retries N] [--backoff-ms N] [--escalation N]
//!                  [--timeout-s N] [--out PATH] [--leak PATH]
//!                  [--profile PATH] [--shards N] [--live] [--events PATH]
//!                  [--stall-s N] [--retry-stalled] [--max-failures N]
//!                  [--only PAT] [--fault-seed N] [--fault-rate F]
//!                  [--fault-io SPEC]... [--quarantine DIR]
//!                  [--print-jobs] [--quiet]
//! ```
//!
//! The merged report (`--out`, default `results/<name>.json`) contains
//! only deterministic fields — including the per-defense HDR latency
//! leaderboard — and is byte-identical for any `--jobs` value and across
//! kill/`--resume` cycles. `--leak PATH` forces the covert-channel
//! leakage probe on for every job, writes the merged leakage artifact to
//! PATH, and prints the defense leaderboard. `--profile PATH` records a
//! host-time span profile of every job, writes the profile artifact to
//! PATH plus a collapsed-stack `.folded` sibling (flamegraph input), and
//! prints the host-cost leaderboard; host time is machine-dependent, so
//! none of it enters the merged report. `--shards N` (or the `DG_SHARDS`
//! env var) runs every job on the conservative-PDES sharded runtime with
//! N shards — results are byte-identical for any N.
//!
//! Live telemetry (`dg-mon`): `--live` renders an in-terminal dashboard,
//! `--events PATH` streams snapshots as append-only JSONL (torn tails are
//! repaired on `--resume`, like the journal), and `--stall-s N` (or
//! `DG_MON_STALL_S`) arms the stall watchdog, which cancels any job whose
//! *simulated* clock stops advancing for N host seconds. None of these
//! change the merged report. Diagnostics go through the leveled `DG_LOG`
//! facade (`error|warn|info|debug`, default `info`).
//!
//! Fault injection (`dg-fault`): `--fault-seed N` arms the deterministic
//! simulation-fault plan (`--fault-rate F` scales what fraction of jobs
//! it afflicts), `--fault-io stream@byte:kind[xN]` plants host-IO faults
//! on the journal/events/report streams, `--retry-stalled` makes
//! watchdog cancellations retryable, `--max-failures N` sets the failure
//! budget, `--quarantine DIR` overrides where terminally failed jobs'
//! diagnostics bundles land (default `<out dir>/quarantine/<name>`), and
//! `--only PAT` restricts the sweep to jobs whose id contains PAT (the
//! repro path quarantine bundles quote).
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success: every job succeeded, or failures ≤ `--max-failures` |
//! | 1    | job failures beyond the budget |
//! | 2    | usage / spec errors (bad flags, unparseable spec, `--only` matching nothing) |
//! | 3    | infrastructure failure: journal degraded, events stream or artifact writes errored |
//! | 4    | over-budget failures dominated by stall-watchdog cancellations |
//!
//! Infrastructure damage outranks job failures; the CI chaos gate
//! asserts this taxonomy. See EXPERIMENTS.md for the spec format.

use dg_fault::{retry_io, FaultSink, IoPlan, IoStream, RetryPolicy};
use dg_mon::{log_error, log_info, log_warn};
use dg_runner::{
    effective_jobs, host_cost_leaderboard, host_cost_table, latency_leaderboard, latency_table,
    leak_leaderboard, leak_report_json, leak_table, merged_profile, merged_report_with_latency,
    profile_report_json, ExitClass, ExperimentSpec, RunnerConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    spec: PathBuf,
    cfg: RunnerConfig,
    out: Option<PathBuf>,
    leak: Option<PathBuf>,
    profile: Option<PathBuf>,
    shards: Option<usize>,
    fault_seed: Option<u64>,
    fault_rate: Option<f64>,
    retry_stalled: bool,
    max_failures: Option<u64>,
    only: Option<String>,
    print_jobs: bool,
}

fn usage() -> ! {
    // Help goes straight to stderr, not the log facade: it is the
    // interactive contract of the binary, not a diagnostic.
    eprintln!(
        "usage: dg-run <spec.toml|spec.json> [--jobs N] [--journal PATH] [--resume PATH]\n\
         \x20              [--retries N] [--backoff-ms N] [--escalation N] [--timeout-s N]\n\
         \x20              [--out PATH] [--leak PATH] [--profile PATH] [--shards N]\n\
         \x20              [--live] [--events PATH] [--stall-s N] [--retry-stalled]\n\
         \x20              [--max-failures N] [--only PAT] [--fault-seed N]\n\
         \x20              [--fault-rate F] [--fault-io SPEC]... [--quarantine DIR]\n\
         \x20              [--print-jobs] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut spec = None;
    // Watchdog/interval knobs seed from the environment (DG_MON_STALL_S,
    // DG_MON_INTERVAL_MS); explicit flags override.
    let mut cfg = RunnerConfig {
        monitor: dg_mon::MonitorConfig::from_env(),
        ..RunnerConfig::default()
    };
    let mut jobs_flag = None;
    let mut out = None;
    let mut leak = None;
    let mut profile = None;
    let mut shards = None;
    let mut fault_seed = None;
    let mut fault_rate = None;
    let mut fault_io: Vec<String> = Vec::new();
    let mut retry_stalled = false;
    let mut max_failures = None;
    let mut only = None;
    let mut print_jobs = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                log_error!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--jobs" => match value("--jobs").parse::<usize>() {
                Ok(n) if n > 0 => jobs_flag = Some(n),
                _ => {
                    log_error!("--jobs must be a positive integer");
                    usage();
                }
            },
            "--journal" => cfg.journal = Some(PathBuf::from(value("--journal"))),
            "--resume" => cfg.resume = Some(PathBuf::from(value("--resume"))),
            "--retries" => match value("--retries").parse() {
                Ok(n) => cfg.retries = n,
                Err(_) => usage(),
            },
            "--backoff-ms" => match value("--backoff-ms").parse() {
                Ok(ms) => cfg.backoff = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--escalation" => match value("--escalation").parse() {
                Ok(n) => cfg.escalation = n,
                Err(_) => usage(),
            },
            "--timeout-s" => match value("--timeout-s").parse() {
                Ok(s) => cfg.timeout = Some(Duration::from_secs(s)),
                Err(_) => usage(),
            },
            "--shards" => match value("--shards").parse::<usize>() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => {
                    log_error!("--shards must be a positive integer");
                    usage();
                }
            },
            "--live" => cfg.monitor.live = true,
            "--events" => cfg.monitor.events = Some(PathBuf::from(value("--events"))),
            "--stall-s" => match value("--stall-s").parse::<f64>() {
                Ok(s) if s > 0.0 => {
                    cfg.monitor.stall_timeout = Some(Duration::from_secs_f64(s));
                }
                _ => {
                    log_error!("--stall-s must be a positive number of seconds");
                    usage();
                }
            },
            "--fault-seed" => match value("--fault-seed").parse::<u64>() {
                Ok(n) => fault_seed = Some(n),
                Err(_) => {
                    log_error!("--fault-seed must be an integer");
                    usage();
                }
            },
            "--fault-rate" => match value("--fault-rate").parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => fault_rate = Some(f),
                _ => {
                    log_error!("--fault-rate must be within [0, 1]");
                    usage();
                }
            },
            "--fault-io" => fault_io.push(value("--fault-io")),
            "--quarantine" => cfg.quarantine = Some(PathBuf::from(value("--quarantine"))),
            "--retry-stalled" => retry_stalled = true,
            "--max-failures" => match value("--max-failures").parse::<u64>() {
                Ok(n) => max_failures = Some(n),
                Err(_) => {
                    log_error!("--max-failures must be an integer");
                    usage();
                }
            },
            "--only" => only = Some(value("--only")),
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--leak" => leak = Some(PathBuf::from(value("--leak"))),
            "--profile" => profile = Some(PathBuf::from(value("--profile"))),
            "--print-jobs" => print_jobs = true,
            "--quiet" => cfg.verbose = false,
            "--help" | "-h" => usage(),
            other if spec.is_none() && !other.starts_with('-') => {
                spec = Some(PathBuf::from(other));
            }
            other => {
                log_error!("unknown argument `{other}`");
                usage();
            }
        }
    }
    cfg.jobs = effective_jobs(jobs_flag);
    cfg.fault_io = match IoPlan::parse(&fault_io) {
        Ok(plan) => plan,
        Err(e) => {
            log_error!("--fault-io: {e}");
            usage();
        }
    };
    Args {
        spec: spec.unwrap_or_else(|| usage()),
        cfg,
        out,
        leak,
        profile,
        shards,
        fault_seed,
        fault_rate,
        retry_stalled,
        max_failures,
        only,
        print_jobs,
    }
}

/// Writes an artifact through the fault plane's report stream, retrying
/// transient interruptions at the exact byte. With an unarmed plan this
/// is an ordinary create-write-fsync.
fn write_report(path: &Path, bytes: &[u8], plan: &IoPlan) -> std::io::Result<()> {
    let mut sink = FaultSink::create(path, IoStream::Report, plan.clone())?;
    let retry = RetryPolicy::default();
    sink.stage(bytes);
    retry_io(&retry, || sink.drain())?;
    retry_io(&retry, || sink.sync_data())
}

fn ensure_parent(path: &std::path::Path) -> bool {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            log_error!("creating {}: {e}", dir.display());
            return false;
        }
    }
    true
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut spec = match ExperimentSpec::load(&args.spec) {
        Ok(s) => s,
        Err(e) => {
            log_error!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.leak.is_some() {
        spec.leak = true;
    }
    if args.profile.is_some() {
        spec.profile = true;
    }
    if args.shards.is_some() {
        spec.shards = args.shards;
    }
    if args.fault_seed.is_some() {
        spec.fault_seed = args.fault_seed;
    }
    if let Some(rate) = args.fault_rate {
        spec.fault_rate = rate;
    }
    if args.retry_stalled {
        spec.retry_stalled = Some(true);
    }
    if args.max_failures.is_some() {
        spec.max_failures = args.max_failures;
    }

    if args.print_jobs {
        // Job ids are the machine-readable output here — stdout, no facade.
        for job in spec.expand() {
            println!("{}", job.id);
        }
        return ExitCode::SUCCESS;
    }

    if args.cfg.verbose {
        log_info!(
            "dg-run: sweep `{}` — {} jobs on {} workers",
            spec.name,
            spec.expand().len(),
            args.cfg.jobs;
            "sweep" => spec.name,
            "jobs" => spec.expand().len(),
            "workers" => args.cfg.jobs
        );
    }

    let out_path = args
        .out
        .unwrap_or_else(|| PathBuf::from(format!("results/{}.json", spec.name)));

    let mut cfg = args.cfg;
    if cfg.quarantine.is_none() {
        let dir = out_path.parent().map(Path::to_path_buf).unwrap_or_default();
        cfg.quarantine = Some(dir.join("quarantine").join(&spec.name));
    }
    cfg.repro_prefix = Some(format!("dg-run {}", args.spec.display()));

    let outcome = match spec.run_filtered(&cfg, args.only.as_deref()) {
        Ok(o) => o,
        Err(e) => {
            log_error!("{e}");
            // Bad inputs (spec contents, --only matching nothing) are
            // usage errors; anything else is broken infrastructure.
            let code = match e.kind() {
                std::io::ErrorKind::InvalidInput | std::io::ErrorKind::InvalidData => 2,
                _ => ExitClass::Infra.code(),
            };
            return ExitCode::from(code);
        }
    };

    // Artifact-write failures downgrade the exit to Infra without
    // discarding the rest of the run's output.
    let mut artifact_failed = false;

    if !ensure_parent(&out_path) {
        artifact_failed = true;
    }
    let report = merged_report_with_latency(&spec.name, &outcome);
    if let Err(e) = write_report(&out_path, report.as_bytes(), &cfg.fault_io) {
        log_error!("writing {}: {e}", out_path.display());
        artifact_failed = true;
    }
    if cfg.verbose {
        log_info!(
            "dg-run: wrote {}",
            out_path.display();
            "jobs" => outcome.progress.total,
            "retries" => outcome.progress.retries,
            "jobs_per_sec" => format!("{:.1}", outcome.progress.jobs_per_sec)
        );
        print!("{}", latency_table(&latency_leaderboard(&outcome)));
    }

    if let Some(profile_path) = &args.profile {
        if !ensure_parent(profile_path) {
            artifact_failed = true;
        }
        let profiles = dg_prof::collector::drain();
        let profile_json = profile_report_json(&spec.name, &profiles);
        if let Err(e) = std::fs::write(profile_path, &profile_json) {
            log_error!("writing {}: {e}", profile_path.display());
            artifact_failed = true;
        }
        let folded_path = profile_path.with_extension("folded");
        let folded = merged_profile(&profiles)
            .map(|p| p.collapsed())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(&folded_path, &folded) {
            log_error!("writing {}: {e}", folded_path.display());
            artifact_failed = true;
        }
        print!("{}", host_cost_table(&host_cost_leaderboard(&profiles)));
        if cfg.verbose {
            log_info!(
                "dg-run: wrote host profile {} (+ {})",
                profile_path.display(),
                folded_path.display()
            );
            if profiles.is_empty() {
                log_info!("dg-run: note: no profiles collected (dg-prof feature disabled?)");
            }
        }
    }

    if let Some(leak_path) = &args.leak {
        if !ensure_parent(leak_path) {
            artifact_failed = true;
        }
        let leak_json = leak_report_json(&spec.name, &outcome);
        if let Err(e) = std::fs::write(leak_path, &leak_json) {
            log_error!("writing {}: {e}", leak_path.display());
            artifact_failed = true;
        }
        print!("{}", leak_table(&leak_leaderboard(&outcome)));
        if cfg.verbose {
            log_info!("dg-run: wrote leakage report {}", leak_path.display());
        }
    }

    outcome.report_failures();
    let health = &outcome.health;
    if health.journal_degraded {
        log_error!(
            "dg-run: journal degraded mid-sweep — the report above is complete, \
             but this run cannot be resumed; rerun on a healthy disk"
        );
    }
    for err in &health.io_errors {
        log_error!("dg-run: infrastructure: {err}");
    }
    for (id, bundle) in &health.quarantined {
        log_warn!(
            "dg-run: quarantined `{id}` — diagnostics at {}",
            bundle.display();
            "job" => id,
            "bundle" => bundle.display()
        );
    }

    // Artifact writes are infrastructure; Infra outranks the job-level
    // classes but never masks them in the logs above.
    let code = if artifact_failed {
        ExitClass::Infra.code()
    } else {
        outcome.exit_class().code()
    };
    ExitCode::from(code)
}
