//! `dg-run`: execute an experiment spec through the orchestration runner.
//!
//! ```text
//! dg-run spec.toml [--jobs N] [--journal PATH] [--resume PATH]
//!                  [--retries N] [--backoff-ms N] [--escalation N]
//!                  [--timeout-s N] [--out PATH] [--leak PATH]
//!                  [--profile PATH] [--shards N] [--live] [--events PATH]
//!                  [--stall-s N] [--print-jobs] [--quiet]
//! ```
//!
//! Exits nonzero if any job fails, printing the failing job ids with
//! their errors. The merged report (`--out`, default
//! `results/<name>.json`) contains only deterministic fields — including
//! the per-defense HDR latency leaderboard — and is byte-identical for
//! any `--jobs` value and across kill/`--resume` cycles. `--leak PATH`
//! forces the covert-channel leakage probe on for every job, writes the
//! merged leakage artifact to PATH, and prints the defense leaderboard.
//! `--profile PATH` records a host-time span profile of every job, writes
//! the profile artifact to PATH plus a collapsed-stack `.folded` sibling
//! (flamegraph input), and prints the host-cost leaderboard; host time is
//! machine-dependent, so none of it enters the merged report. `--shards N`
//! (or the `DG_SHARDS` env var) runs every job on the conservative-PDES
//! sharded runtime with N shards — results are byte-identical for any N.
//!
//! Live telemetry (`dg-mon`): `--live` renders an in-terminal dashboard,
//! `--events PATH` streams snapshots as append-only JSONL (torn tails are
//! repaired on `--resume`, like the journal), and `--stall-s N` (or
//! `DG_MON_STALL_S`) arms the stall watchdog, which cancels any job whose
//! *simulated* clock stops advancing for N host seconds. None of these
//! change the merged report. Diagnostics go through the leveled `DG_LOG`
//! facade (`error|warn|info|debug`, default `info`).
//! See EXPERIMENTS.md for the spec format.

use dg_mon::{log_error, log_info};
use dg_runner::{
    effective_jobs, host_cost_leaderboard, host_cost_table, latency_leaderboard, latency_table,
    leak_leaderboard, leak_report_json, leak_table, merged_profile, merged_report_with_latency,
    profile_report_json, ExperimentSpec, RunnerConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    spec: PathBuf,
    cfg: RunnerConfig,
    out: Option<PathBuf>,
    leak: Option<PathBuf>,
    profile: Option<PathBuf>,
    shards: Option<usize>,
    print_jobs: bool,
}

fn usage() -> ! {
    // Help goes straight to stderr, not the log facade: it is the
    // interactive contract of the binary, not a diagnostic.
    eprintln!(
        "usage: dg-run <spec.toml|spec.json> [--jobs N] [--journal PATH] [--resume PATH]\n\
         \x20              [--retries N] [--backoff-ms N] [--escalation N] [--timeout-s N]\n\
         \x20              [--out PATH] [--leak PATH] [--profile PATH] [--shards N]\n\
         \x20              [--live] [--events PATH] [--stall-s N]\n\
         \x20              [--print-jobs] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut spec = None;
    // Watchdog/interval knobs seed from the environment (DG_MON_STALL_S,
    // DG_MON_INTERVAL_MS); explicit flags override.
    let mut cfg = RunnerConfig {
        monitor: dg_mon::MonitorConfig::from_env(),
        ..RunnerConfig::default()
    };
    let mut jobs_flag = None;
    let mut out = None;
    let mut leak = None;
    let mut profile = None;
    let mut shards = None;
    let mut print_jobs = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                log_error!("{flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--jobs" => match value("--jobs").parse::<usize>() {
                Ok(n) if n > 0 => jobs_flag = Some(n),
                _ => {
                    log_error!("--jobs must be a positive integer");
                    usage();
                }
            },
            "--journal" => cfg.journal = Some(PathBuf::from(value("--journal"))),
            "--resume" => cfg.resume = Some(PathBuf::from(value("--resume"))),
            "--retries" => match value("--retries").parse() {
                Ok(n) => cfg.retries = n,
                Err(_) => usage(),
            },
            "--backoff-ms" => match value("--backoff-ms").parse() {
                Ok(ms) => cfg.backoff = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--escalation" => match value("--escalation").parse() {
                Ok(n) => cfg.escalation = n,
                Err(_) => usage(),
            },
            "--timeout-s" => match value("--timeout-s").parse() {
                Ok(s) => cfg.timeout = Some(Duration::from_secs(s)),
                Err(_) => usage(),
            },
            "--shards" => match value("--shards").parse::<usize>() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => {
                    log_error!("--shards must be a positive integer");
                    usage();
                }
            },
            "--live" => cfg.monitor.live = true,
            "--events" => cfg.monitor.events = Some(PathBuf::from(value("--events"))),
            "--stall-s" => match value("--stall-s").parse::<f64>() {
                Ok(s) if s > 0.0 => {
                    cfg.monitor.stall_timeout = Some(Duration::from_secs_f64(s));
                }
                _ => {
                    log_error!("--stall-s must be a positive number of seconds");
                    usage();
                }
            },
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--leak" => leak = Some(PathBuf::from(value("--leak"))),
            "--profile" => profile = Some(PathBuf::from(value("--profile"))),
            "--print-jobs" => print_jobs = true,
            "--quiet" => cfg.verbose = false,
            "--help" | "-h" => usage(),
            other if spec.is_none() && !other.starts_with('-') => {
                spec = Some(PathBuf::from(other));
            }
            other => {
                log_error!("unknown argument `{other}`");
                usage();
            }
        }
    }
    cfg.jobs = effective_jobs(jobs_flag);
    Args {
        spec: spec.unwrap_or_else(|| usage()),
        cfg,
        out,
        leak,
        profile,
        shards,
        print_jobs,
    }
}

fn ensure_parent(path: &std::path::Path) -> bool {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            log_error!("creating {}: {e}", dir.display());
            return false;
        }
    }
    true
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut spec = match ExperimentSpec::load(&args.spec) {
        Ok(s) => s,
        Err(e) => {
            log_error!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.leak.is_some() {
        spec.leak = true;
    }
    if args.profile.is_some() {
        spec.profile = true;
    }
    if args.shards.is_some() {
        spec.shards = args.shards;
    }

    if args.print_jobs {
        // Job ids are the machine-readable output here — stdout, no facade.
        for job in spec.expand() {
            println!("{}", job.id);
        }
        return ExitCode::SUCCESS;
    }

    if args.cfg.verbose {
        log_info!(
            "dg-run: sweep `{}` — {} jobs on {} workers",
            spec.name,
            spec.expand().len(),
            args.cfg.jobs;
            "sweep" => spec.name,
            "jobs" => spec.expand().len(),
            "workers" => args.cfg.jobs
        );
    }

    let outcome = match spec.run(&args.cfg) {
        Ok(o) => o,
        Err(e) => {
            log_error!("{e}");
            return ExitCode::from(2);
        }
    };

    let out_path = args
        .out
        .unwrap_or_else(|| PathBuf::from(format!("results/{}.json", spec.name)));
    if !ensure_parent(&out_path) {
        return ExitCode::from(2);
    }
    let report = merged_report_with_latency(&spec.name, &outcome);
    if let Err(e) = std::fs::write(&out_path, &report) {
        log_error!("writing {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    if args.cfg.verbose {
        log_info!(
            "dg-run: wrote {}",
            out_path.display();
            "jobs" => outcome.progress.total,
            "retries" => outcome.progress.retries,
            "jobs_per_sec" => format!("{:.1}", outcome.progress.jobs_per_sec)
        );
        print!("{}", latency_table(&latency_leaderboard(&outcome)));
    }

    if let Some(profile_path) = &args.profile {
        if !ensure_parent(profile_path) {
            return ExitCode::from(2);
        }
        let profiles = dg_prof::collector::drain();
        let profile_json = profile_report_json(&spec.name, &profiles);
        if let Err(e) = std::fs::write(profile_path, &profile_json) {
            log_error!("writing {}: {e}", profile_path.display());
            return ExitCode::from(2);
        }
        let folded_path = profile_path.with_extension("folded");
        let folded = merged_profile(&profiles)
            .map(|p| p.collapsed())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(&folded_path, &folded) {
            log_error!("writing {}: {e}", folded_path.display());
            return ExitCode::from(2);
        }
        print!("{}", host_cost_table(&host_cost_leaderboard(&profiles)));
        if args.cfg.verbose {
            log_info!(
                "dg-run: wrote host profile {} (+ {})",
                profile_path.display(),
                folded_path.display()
            );
            if profiles.is_empty() {
                log_info!("dg-run: note: no profiles collected (dg-prof feature disabled?)");
            }
        }
    }

    if let Some(leak_path) = &args.leak {
        if !ensure_parent(leak_path) {
            return ExitCode::from(2);
        }
        let leak_json = leak_report_json(&spec.name, &outcome);
        if let Err(e) = std::fs::write(leak_path, &leak_json) {
            log_error!("writing {}: {e}", leak_path.display());
            return ExitCode::from(2);
        }
        print!("{}", leak_table(&leak_leaderboard(&outcome)));
        if args.cfg.verbose {
            log_info!("dg-run: wrote leakage report {}", leak_path.display());
        }
    }

    if outcome.report_failures() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
