//! `dg-run`: execute an experiment spec through the orchestration runner.
//!
//! ```text
//! dg-run spec.toml [--jobs N] [--journal PATH] [--resume PATH]
//!                  [--retries N] [--backoff-ms N] [--escalation N]
//!                  [--timeout-s N] [--out PATH] [--leak PATH]
//!                  [--print-jobs] [--quiet]
//! ```
//!
//! Exits nonzero if any job fails, printing the failing job ids with
//! their errors. The merged report (`--out`, default
//! `results/<name>.json`) contains only deterministic fields and is
//! byte-identical for any `--jobs` value and across kill/`--resume`
//! cycles. `--leak PATH` forces the covert-channel leakage probe on for
//! every job, writes the merged leakage artifact to PATH, and prints the
//! defense leaderboard. See EXPERIMENTS.md for the spec format.

use dg_runner::{
    effective_jobs, leak_leaderboard, leak_report_json, leak_table, ExperimentSpec, RunnerConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    spec: PathBuf,
    cfg: RunnerConfig,
    out: Option<PathBuf>,
    leak: Option<PathBuf>,
    print_jobs: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dg-run <spec.toml|spec.json> [--jobs N] [--journal PATH] [--resume PATH]\n\
         \x20              [--retries N] [--backoff-ms N] [--escalation N] [--timeout-s N]\n\
         \x20              [--out PATH] [--leak PATH] [--print-jobs] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut spec = None;
    let mut cfg = RunnerConfig::default();
    let mut jobs_flag = None;
    let mut out = None;
    let mut leak = None;
    let mut print_jobs = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                usage();
            })
        };
        match arg.as_str() {
            "--jobs" => match value("--jobs").parse::<usize>() {
                Ok(n) if n > 0 => jobs_flag = Some(n),
                _ => {
                    eprintln!("error: --jobs must be a positive integer");
                    usage();
                }
            },
            "--journal" => cfg.journal = Some(PathBuf::from(value("--journal"))),
            "--resume" => cfg.resume = Some(PathBuf::from(value("--resume"))),
            "--retries" => match value("--retries").parse() {
                Ok(n) => cfg.retries = n,
                Err(_) => usage(),
            },
            "--backoff-ms" => match value("--backoff-ms").parse() {
                Ok(ms) => cfg.backoff = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--escalation" => match value("--escalation").parse() {
                Ok(n) => cfg.escalation = n,
                Err(_) => usage(),
            },
            "--timeout-s" => match value("--timeout-s").parse() {
                Ok(s) => cfg.timeout = Some(Duration::from_secs(s)),
                Err(_) => usage(),
            },
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--leak" => leak = Some(PathBuf::from(value("--leak"))),
            "--print-jobs" => print_jobs = true,
            "--quiet" => cfg.verbose = false,
            "--help" | "-h" => usage(),
            other if spec.is_none() && !other.starts_with('-') => {
                spec = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    cfg.jobs = effective_jobs(jobs_flag);
    Args {
        spec: spec.unwrap_or_else(|| usage()),
        cfg,
        out,
        leak,
        print_jobs,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut spec = match ExperimentSpec::load(&args.spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.leak.is_some() {
        spec.leak = true;
    }

    if args.print_jobs {
        for job in spec.expand() {
            println!("{}", job.id);
        }
        return ExitCode::SUCCESS;
    }

    if args.cfg.verbose {
        eprintln!(
            "dg-run: sweep `{}` — {} jobs on {} workers",
            spec.name,
            spec.expand().len(),
            args.cfg.jobs
        );
    }

    let outcome = match spec.run(&args.cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let out_path = args
        .out
        .unwrap_or_else(|| PathBuf::from(format!("results/{}.json", spec.name)));
    if let Some(dir) = out_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    let report = outcome.merged_report_json(&spec.name);
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("error: writing {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    if args.cfg.verbose {
        eprintln!(
            "dg-run: wrote {} ({} jobs, {} retries, {:.1} jobs/s)",
            out_path.display(),
            outcome.progress.total,
            outcome.progress.retries,
            outcome.progress.jobs_per_sec
        );
    }

    if let Some(leak_path) = &args.leak {
        if let Some(dir) = leak_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let leak_json = leak_report_json(&spec.name, &outcome);
        if let Err(e) = std::fs::write(leak_path, &leak_json) {
            eprintln!("error: writing {}: {e}", leak_path.display());
            return ExitCode::from(2);
        }
        print!("{}", leak_table(&leak_leaderboard(&outcome)));
        if args.cfg.verbose {
            eprintln!("dg-run: wrote leakage report {}", leak_path.display());
        }
    }

    if outcome.report_failures() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
