//! Sweep-level leakage aggregation: merges per-job [`LeakSummary`]s into a
//! defense leaderboard and a standalone leakage artifact.
//!
//! The leaderboard answers the question the per-job JSON cannot: *ranked
//! across the whole grid, how much does each defense actually leak?* Jobs
//! are grouped by the defense segment of their id (the suffix after the
//! last `/` — see [`ExperimentSpec::expand`](crate::ExperimentSpec::expand)
//! for the id shape), so one row aggregates every victim × co-runner ×
//! seed point that ran under that defense.

use crate::job::JobRecord;
use crate::runner::SweepOutcome;
use dg_obs::LeakSummary;
use dg_system::ColocationResult;
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// One defense's aggregated leakage across all its grid points.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LeakRow {
    /// Defense name (job-id suffix).
    pub defense: String,
    /// Mean of the per-job mean capacities, in bits/s.
    pub mean_capacity_bps: f64,
    /// Highest single-window capacity any job observed, in bits/s.
    pub peak_capacity_bps: f64,
    /// Mean covert decode error rate across jobs.
    pub error_rate: f64,
    /// Number of jobs that carried a leakage summary.
    pub jobs: u64,
}

/// The defense segment of a job id (`{sweep}/{point}/{defense}`).
fn defense_of(id: &str) -> &str {
    id.rsplit('/').next().unwrap_or(id)
}

fn leaky_records(
    records: &[JobRecord<ColocationResult>],
) -> impl Iterator<Item = (&str, &LeakSummary)> {
    records.iter().filter_map(|r| {
        let leak = r.output.as_ref()?.leakage.as_ref()?;
        Some((r.id.as_str(), leak))
    })
}

/// Aggregates per-job leakage summaries into one row per defense, sorted
/// leakiest-first (ties broken by name for determinism). Jobs without a
/// leakage summary — failed, or run without the probe — are skipped.
pub fn leak_leaderboard(outcome: &SweepOutcome<ColocationResult>) -> Vec<LeakRow> {
    let mut by_defense: BTreeMap<&str, Vec<&LeakSummary>> = BTreeMap::new();
    for (id, leak) in leaky_records(&outcome.records) {
        by_defense.entry(defense_of(id)).or_default().push(leak);
    }
    let mut rows: Vec<LeakRow> = by_defense
        .into_iter()
        .map(|(defense, leaks)| {
            let n = leaks.len() as f64;
            LeakRow {
                defense: defense.to_string(),
                mean_capacity_bps: leaks.iter().map(|l| l.mean_capacity_bps).sum::<f64>() / n,
                peak_capacity_bps: leaks
                    .iter()
                    .map(|l| l.peak_capacity_bps)
                    .fold(0.0, f64::max),
                error_rate: leaks.iter().map(|l| l.error_rate).sum::<f64>() / n,
                jobs: leaks.len() as u64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.mean_capacity_bps
            .total_cmp(&a.mean_capacity_bps)
            .then_with(|| a.defense.cmp(&b.defense))
    });
    rows
}

/// The standalone leakage artifact: the leaderboard plus every job's raw
/// summary, in job-id order. Deterministic for a deterministic sweep.
pub fn leak_report_json(sweep_name: &str, outcome: &SweepOutcome<ColocationResult>) -> String {
    let leaderboard = Value::Seq(
        leak_leaderboard(outcome)
            .iter()
            .map(Serialize::to_value)
            .collect(),
    );
    let jobs = Value::Seq(
        leaky_records(&outcome.records)
            .map(|(id, leak)| {
                Value::Map(vec![
                    ("id".to_string(), id.to_value()),
                    ("defense".to_string(), defense_of(id).to_value()),
                    ("leakage".to_string(), leak.to_value()),
                ])
            })
            .collect(),
    );
    let doc = Value::Map(vec![
        ("sweep".to_string(), sweep_name.to_value()),
        ("leaderboard".to_string(), leaderboard),
        ("jobs".to_string(), jobs),
    ]);
    serde_json::to_string_pretty(&doc).expect("leak report serialization is infallible")
}

/// Renders the leaderboard as the text table `dg-run` prints next to its
/// performance summary. Empty string when no job carried leakage data.
pub fn leak_table(rows: &[LeakRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "leakage leaderboard (covert-channel capacity, leakiest first)\n\
         defense              mean bits/s      peak bits/s   err    jobs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>11.1} {:>16.1} {:>5.2} {:>7}\n",
            r.defense, r.mean_capacity_bps, r.peak_capacity_bps, r.error_rate, r.jobs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_obs::SweepProgress;

    fn record(id: &str, mean: f64, peak: f64, err: f64) -> JobRecord<ColocationResult> {
        JobRecord {
            id: id.to_string(),
            attempts: 1,
            output: Some(ColocationResult {
                cores: vec![],
                bandwidth_gbps: vec![],
                total_cycles: 1,
                latency: vec![],
                leakage: Some(LeakSummary {
                    mean_capacity_bps: mean,
                    peak_capacity_bps: peak,
                    windows: 4,
                    error_rate: err,
                    raw_bits_per_sec: 1.2e6,
                }),
            }),
            error: None,
        }
    }

    fn outcome(records: Vec<JobRecord<ColocationResult>>) -> SweepOutcome<ColocationResult> {
        SweepOutcome {
            records,
            progress: SweepProgress::default(),
            health: Default::default(),
        }
    }

    #[test]
    fn leaderboard_groups_by_defense_and_sorts_leakiest_first() {
        let out = outcome(vec![
            record("s/a+x/insecure", 1000.0, 2000.0, 0.0),
            record("s/b+x/insecure", 3000.0, 5000.0, 0.1),
            record("s/a+x/dagguise", 1.0, 2.0, 0.5),
        ]);
        let rows = leak_leaderboard(&out);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].defense, "insecure");
        assert_eq!(rows[0].jobs, 2);
        assert!((rows[0].mean_capacity_bps - 2000.0).abs() < 1e-9);
        assert!((rows[0].peak_capacity_bps - 5000.0).abs() < 1e-9);
        assert_eq!(rows[1].defense, "dagguise");

        let table = leak_table(&rows);
        assert!(table.contains("insecure"));
        assert!(table.contains("dagguise"));
        // Leakiest row prints first.
        assert!(table.find("insecure").unwrap() < table.find("dagguise").unwrap());
    }

    #[test]
    fn jobs_without_leakage_are_skipped() {
        let mut bare = record("s/a+x/insecure", 1.0, 1.0, 0.0);
        bare.output.as_mut().unwrap().leakage = None;
        let out = outcome(vec![bare]);
        assert!(leak_leaderboard(&out).is_empty());
        assert_eq!(leak_table(&[]), "");
        let json = leak_report_json("s", &out);
        assert!(json.contains("\"leaderboard\": []"));
    }

    #[test]
    fn leak_report_json_carries_per_job_summaries() {
        let out = outcome(vec![record("s/a+x/insecure", 10.0, 20.0, 0.0)]);
        let json = leak_report_json("s", &out);
        assert!(json.contains("\"sweep\": \"s\""));
        assert!(json.contains("\"id\": \"s/a+x/insecure\""));
        assert!(json.contains("\"mean_capacity_bps\""));
    }
}
