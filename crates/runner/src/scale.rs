//! Workload scale presets.
//!
//! Lives in `dg-runner` (rather than `dg-bench`) because experiment specs
//! name scales; `dg-bench` re-exports it so harness code is unchanged.

use serde::{Deserialize, Serialize};

/// Sizes for the experiment workloads. `quick` keeps the whole harness
/// suite in the minutes range; `paper` approaches the paper's 50M
/// instruction SimPoint intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// DocDist vocabulary (feature-vector entries).
    pub docdist_vocab: u64,
    /// DocDist input-document words.
    pub docdist_words: u64,
    /// DNA genome length in bases.
    pub dna_genome: usize,
    /// DNA read length in bases.
    pub dna_read: usize,
    /// Instructions per SPEC co-runner trace.
    pub spec_instructions: u64,
    /// Cycle budget per run.
    pub budget: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}

impl Scale {
    /// Fast preset (default): full curve shapes in minutes.
    pub fn quick() -> Self {
        Self {
            docdist_vocab: 128 * 1024,
            docdist_words: 6_000,
            dna_genome: 32 * 1024,
            dna_read: 800,
            spec_instructions: 1_000_000,
            budget: 400_000_000,
        }
    }

    /// Paper-scale preset (`--full`).
    pub fn paper() -> Self {
        Self {
            docdist_vocab: 512 * 1024,
            docdist_words: 60_000,
            dna_genome: 256 * 1024,
            dna_read: 3_000,
            spec_instructions: 20_000_000,
            budget: 4_000_000_000,
        }
    }

    /// Tiny preset for smoke sweeps and tests: seconds, not minutes.
    pub fn smoke() -> Self {
        Self {
            docdist_vocab: 8 * 1024,
            docdist_words: 500,
            dna_genome: 4 * 1024,
            dna_read: 200,
            spec_instructions: 50_000,
            budget: 40_000_000,
        }
    }

    /// Looks up a preset by spec-file name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "paper" => Some(Self::paper()),
            "smoke" => Some(Self::smoke()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_larger() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(p.docdist_vocab >= q.docdist_vocab);
        assert!(p.spec_instructions > q.spec_instructions);
        assert!(p.budget > q.budget);
    }

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Scale::by_name("quick"), Some(Scale::quick()));
        assert_eq!(Scale::by_name("paper"), Some(Scale::paper()));
        assert_eq!(Scale::by_name("smoke"), Some(Scale::smoke()));
        assert_eq!(Scale::by_name("warp"), None);
    }
}
