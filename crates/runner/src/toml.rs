//! A minimal TOML reader producing the vendored [`serde::Value`] tree.
//!
//! The real `toml` crate is unavailable offline, and experiment specs only
//! need a well-behaved subset: comments, `[tables]` (dotted headers
//! included), `[[arrays of tables]]`, bare dotted keys, basic and literal
//! strings, integers (with `_` separators), floats, booleans, and arrays
//! that may span multiple lines. Anything outside that subset is a parse
//! error, never a silent misread.

use serde::Value;

/// Parses TOML text into a [`Value::Map`] document.
///
/// # Errors
///
/// Returns a human-readable message naming the offending line for any
/// construct outside the supported subset.
pub fn parse_toml(text: &str) -> Result<Value, String> {
    let mut root = Value::Map(Vec::new());
    let mut current: Vec<Seg> = Vec::new();

    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let line = line.trim();
        i += 1;
        if line.is_empty() {
            continue;
        }

        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let keys = parse_dotted_key(header).map_err(|e| at(lineno, &e))?;
            current = enter_array_of_tables(&mut root, &keys).map_err(|e| at(lineno, &e))?;
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let keys = parse_dotted_key(header).map_err(|e| at(lineno, &e))?;
            current = keys.into_iter().map(Seg::Key).collect();
            // Materialise the table so empty sections still exist.
            get_mut(&mut root, &current).map_err(|e| at(lineno, &e))?;
        } else if let Some(eq) = find_unquoted(line, '=') {
            let keys = parse_dotted_key(&line[..eq]).map_err(|e| at(lineno, &e))?;
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // balance outside of strings.
            while bracket_depth(&value_text)? > 0 {
                let Some(next) = lines.get(i) else {
                    return Err(at(lineno, "unterminated array"));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
                i += 1;
            }
            let value = parse_value(&value_text).map_err(|e| at(lineno, &e))?;
            let (last, parents) = keys.split_last().expect("dotted key is non-empty");
            let mut path = current.clone();
            path.extend(parents.iter().cloned().map(Seg::Key));
            let table = get_mut(&mut root, &path).map_err(|e| at(lineno, &e))?;
            let Value::Map(m) = table else {
                return Err(at(lineno, "key path does not name a table"));
            };
            if m.iter().any(|(k, _)| k == last) {
                return Err(at(lineno, &format!("duplicate key `{last}`")));
            }
            m.push((last.clone(), value));
        } else {
            return Err(at(lineno, "expected `key = value` or a [section] header"));
        }
    }
    Ok(root)
}

fn at(lineno: usize, msg: &str) -> String {
    format!("TOML line {lineno}: {msg}")
}

/// A path segment into the document tree.
#[derive(Debug, Clone, PartialEq)]
enum Seg {
    Key(String),
    Idx(usize),
}

/// Walks (and creates) the tree down `path`, returning the node there.
fn get_mut<'a>(root: &'a mut Value, path: &[Seg]) -> Result<&'a mut Value, String> {
    let mut cur = root;
    for seg in path {
        cur = match seg {
            Seg::Key(k) => {
                let Value::Map(m) = cur else {
                    return Err(format!("`{k}` is not a table"));
                };
                if !m.iter().any(|(key, _)| key == k) {
                    m.push((k.clone(), Value::Map(Vec::new())));
                }
                let idx = m
                    .iter()
                    .position(|(key, _)| key == k)
                    .expect("just ensured");
                &mut m[idx].1
            }
            Seg::Idx(i) => {
                let Value::Seq(s) = cur else {
                    return Err("expected an array of tables".to_string());
                };
                &mut s[*i]
            }
        };
    }
    Ok(cur)
}

/// Handles a `[[path]]` header: appends a fresh table to the array at
/// `path` (creating it if needed) and returns the path to that table.
fn enter_array_of_tables(root: &mut Value, keys: &[String]) -> Result<Vec<Seg>, String> {
    let (last, parents) = keys.split_last().ok_or("empty [[header]]")?;
    let parent_path: Vec<Seg> = parents.iter().cloned().map(Seg::Key).collect();
    let parent = get_mut(root, &parent_path)?;
    let Value::Map(m) = parent else {
        return Err("[[header]] parent is not a table".to_string());
    };
    if !m.iter().any(|(k, _)| k == last) {
        m.push((last.clone(), Value::Seq(Vec::new())));
    }
    let idx = m.iter().position(|(k, _)| k == last).expect("just ensured");
    let Value::Seq(s) = &mut m[idx].1 else {
        return Err(format!("`{last}` is already a non-array value"));
    };
    s.push(Value::Map(Vec::new()));
    let mut path = parent_path;
    path.push(Seg::Key(last.clone()));
    path.push(Seg::Idx(s.len() - 1));
    Ok(path)
}

/// Splits `a.b.c` into bare key components.
fn parse_dotted_key(s: &str) -> Result<Vec<String>, String> {
    let mut keys = Vec::new();
    for part in s.split('.') {
        let part = part.trim();
        if part.is_empty()
            || !part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("invalid key `{s}` (bare keys only)"));
        }
        keys.push(part.to_string());
    }
    Ok(keys)
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Byte index of the first `target` outside any quoted string.
fn find_unquoted(line: &str, target: char) -> Option<usize> {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_basic {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_basic = false;
            }
        } else if in_literal {
            if c == '\'' {
                in_literal = false;
            }
        } else if c == '"' {
            in_basic = true;
        } else if c == '\'' {
            in_literal = true;
        } else if c == target {
            return Some(i);
        }
    }
    None
}

/// Net `[`/`]` nesting outside strings; an unterminated string is an error
/// (our basic/literal strings never span lines).
fn bracket_depth(text: &str) -> Result<i32, String> {
    let mut depth = 0i32;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_basic {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_basic = false;
            }
        } else if in_literal {
            if c == '\'' {
                in_literal = false;
            }
        } else {
            match c {
                '"' => in_basic = true,
                '\'' => in_literal = true,
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
        }
    }
    if in_basic || in_literal {
        return Err("unterminated string".to_string());
    }
    Ok(depth)
}

/// Parses a single TOML value (string, number, bool, or array).
fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_top_level(body)? {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(Value::Seq(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return Ok(Value::Str(unescape(body)?));
    }
    if let Some(body) = text.strip_prefix('\'') {
        let body = body
            .strip_suffix('\'')
            .ok_or_else(|| "unterminated literal string".to_string())?;
        return Ok(Value::Str(body.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits: String = text.chars().filter(|&c| c != '_').collect();
    if digits.contains(['.', 'e', 'E']) {
        if let Ok(f) = digits.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    } else if let Some(neg) = digits.strip_prefix('-') {
        if let Ok(n) = neg.parse::<u64>() {
            return Ok(Value::Int(-(n as i64)));
        }
    } else if let Ok(n) = digits.parse::<u64>() {
        return Ok(Value::UInt(n));
    }
    Err(format!("unsupported value `{text}`"))
}

/// Splits array contents on top-level commas (not inside strings or nested
/// arrays).
fn split_top_level(body: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_basic {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_basic = false;
            }
            continue;
        }
        if in_literal {
            if c == '\'' {
                in_literal = false;
            }
            continue;
        }
        match c {
            '"' => in_basic = true,
            '\'' => in_literal = true,
            '[' => depth += 1,
            ']' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    if in_basic || in_literal {
        return Err("unterminated string in array".to_string());
    }
    parts.push(&body[start..]);
    Ok(parts)
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            other => return Err(format!("unsupported escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_scalars() {
        let doc = parse_toml(
            r#"
            name = "smoke"  # a comment
            jobs = 4
            ratio = 0.25
            offset = -3
            big = 400_000_000
            quick = true

            [grid]
            defenses = ["insecure", "dagguise"]
            seeds = [0, 1, 2]
            "#,
        )
        .unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(0.25));
        assert_eq!(doc.get("offset"), Some(&Value::Int(-3)));
        assert_eq!(doc.get("big").unwrap().as_u64(), Some(400_000_000));
        assert_eq!(doc.get("quick"), Some(&Value::Bool(true)));
        let grid = doc.get("grid").unwrap();
        assert_eq!(grid.get("defenses").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(grid.get("seeds").unwrap().as_seq().unwrap().len(), 3);
    }

    #[test]
    fn parses_array_of_tables_and_dotted_headers() {
        let doc = parse_toml(
            r#"
            [scale.custom]
            budget = 1000

            [[override]]
            match = "lbm"
            budget = 50

            [[override]]
            match = "mcf"
            budget = 60
            "#,
        )
        .unwrap();
        assert_eq!(
            doc.get("scale")
                .unwrap()
                .get("custom")
                .unwrap()
                .get("budget")
                .unwrap()
                .as_u64(),
            Some(1000)
        );
        let overrides = doc.get("override").unwrap().as_seq().unwrap();
        assert_eq!(overrides.len(), 2);
        assert_eq!(overrides[1].get("match").unwrap().as_str(), Some("mcf"));
    }

    #[test]
    fn multi_line_arrays_and_hash_in_strings() {
        let doc = parse_toml("apps = [\n  \"lbm\", # trailing\n  \"a#b\",\n]\n").unwrap();
        let apps = doc.get("apps").unwrap().as_seq().unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[1].as_str(), Some("a#b"));
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_toml("good = 1\nbad =").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_toml("x = 1\nx = 2")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_toml("= 3").is_err());
        assert!(parse_toml("v = {inline = 1}").is_err());
    }

    #[test]
    fn nested_arrays_split_correctly() {
        let doc = parse_toml("m = [[1, 2], [3, 4]]").unwrap();
        let m = doc.get("m").unwrap().as_seq().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].as_seq().unwrap().len(), 2);
    }
}
