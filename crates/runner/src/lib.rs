//! `dg-runner`: checkpointed, work-stealing experiment orchestration.
//!
//! The figure harnesses and the `dg-run` CLI all drive their sweeps
//! through this crate:
//!
//! * **Jobs** ([`job`]) — stable string ids, per-attempt context, and the
//!   seed derivation that makes results independent of worker count.
//! * **Pool** ([`pool`]) — a work-stealing thread pool over
//!   `crossbeam::deque`, with `--jobs`/`DG_JOBS` resolution.
//! * **Journal** ([`journal`]) — an append-only fsynced JSONL checkpoint
//!   enabling `--resume` after a crash or kill.
//! * **Runner** ([`runner`]) — supervision: retries with budget
//!   escalation on [`SimError::Deadline`](dg_sim::error::SimError)
//!   (and, opt-in, on stall-watchdog cancellations), panic isolation,
//!   optional cooperative wall-clock timeouts, graceful journal
//!   degradation with a [`SweepHealth`] record and [`ExitClass`]
//!   taxonomy, quarantine bundles for terminally failed jobs, and
//!   deterministic merging into a canonical report.
//! * **Specs** ([`spec`], [`toml`]) — declarative TOML/JSON sweep grids
//!   for `dg-run`.
//! * **Material** ([`scale`], [`material`]) — workload scales and trace
//!   builders shared with `dg-bench`.
//! * **Leaderboards** ([`leak`], [`latency`], [`profile`]) — sweep-level
//!   aggregation: covert-channel capacity, merged HDR latency percentiles
//!   (deterministic, embedded in the report), and host-time cost per
//!   defense (nondeterministic, standalone artifact).
//! * **Live telemetry** (`dg-mon`, wired through [`runner`]) — worker
//!   heartbeats, the `--live` dashboard, the `--events` JSONL stream, and
//!   the stall watchdog. Strictly observational: enabling any of it never
//!   changes the merged report.
//!
//! The invariant the whole crate is built around: a job's result is a
//! pure function of its stable id and parameters. Scheduling order,
//! worker count, resume history, and wall-clock time never leak into the
//! merged report, so `dg-run --jobs 1` and `--jobs 16`, interrupted or
//! not, produce byte-identical output.

pub mod job;
pub mod journal;
pub mod latency;
pub mod leak;
pub mod material;
pub mod pool;
pub mod profile;
pub mod runner;
pub mod scale;
pub mod spec;
pub mod toml;

pub use job::{attempt_budget, job_seed, JobCtx, JobDesc, JobRecord};
pub use journal::{replay_journal, JournalEntry, JournalReplay, JournalWriter};
pub use latency::{latency_leaderboard, latency_table, merged_report_with_latency, LatencyRow};
pub use leak::{leak_leaderboard, leak_report_json, leak_table, LeakRow};
pub use pool::{effective_jobs, run_work_stealing};
pub use profile::{
    host_cost_leaderboard, host_cost_table, merged_profile, profile_report_json, HostCostRow,
};
pub use runner::{run_sweep, ExitClass, RunnerConfig, SweepHealth, SweepOutcome};
pub use scale::Scale;
pub use spec::{execute_job, ColocationJob, ExperimentSpec, GridSpec, OverrideSpec, VictimKind};
pub use toml::parse_toml;
