//! Experiment specifications: declarative sweep grids for `dg-run`.
//!
//! A spec (TOML or JSON) names a workload scale and a parameter grid —
//! defenses × victims × co-runners × seeds — which expands into a
//! deterministic, stably-identified job list. Expansion is a pure function
//! of the spec: the same file always yields the same jobs with the same
//! ids, which is what makes journals resumable and reports reproducible.

use crate::job::{JobCtx, JobDesc};
use crate::material::{dna_defense, dna_trace, docdist_defense, docdist_trace, spec_trace_seeded};
use crate::runner::{run_sweep, RunnerConfig, SweepOutcome};
use crate::scale::Scale;
use crate::toml::parse_toml;
use dg_attacks::{run_covert_channel_estimated, CovertConfig};
use dg_defenses::IntervalDistribution;
use dg_fault::{draw_sim_fault, SimFault};
use dg_obs::LeakSummary;
use dg_rdag::template::RdagTemplate;
use dg_sim::config::SystemConfig;
use dg_sim::error::SimError;
use dg_sim::types::DomainId;
use dg_system::{build_memory, run_colocation, ColocationResult, MemoryKind};
use dg_workloads::SpecPreset;
use serde::{DeError, Deserialize, Serialize, Value};
use std::io;
use std::path::Path;

/// The victim application of a co-location job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimKind {
    /// Document-distance (feature-vector) victim.
    DocDist,
    /// DNA k-mer matching victim.
    Dna,
}

impl VictimKind {
    /// Resolves a spec-file victim name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "docdist" => Some(VictimKind::DocDist),
            "dna" => Some(VictimKind::Dna),
            _ => None,
        }
    }

    /// The stable spec-file name.
    pub fn label(self) -> &'static str {
        match self {
            VictimKind::DocDist => "docdist",
            VictimKind::Dna => "dna",
        }
    }

    /// Records the victim's memory trace.
    pub fn trace(self, scale: &Scale, secret: u64) -> dg_cpu::MemTrace {
        match self {
            VictimKind::DocDist => docdist_trace(scale, secret),
            VictimKind::Dna => dna_trace(scale, secret),
        }
    }

    /// The profiled defense rDAG for this victim (§4.3 methodology).
    pub fn defense_template(self) -> RdagTemplate {
        match self {
            VictimKind::DocDist => docdist_defense(),
            VictimKind::Dna => dna_defense(),
        }
    }
}

/// Defense names a spec grid may request.
pub const DEFENSE_NAMES: &[&str] = &[
    "insecure",
    "dagguise",
    "fixed_service",
    "fs_bta",
    "fs_spatial",
    "temporal_partition",
    "camouflage",
];

/// Builds the [`MemoryKind`] for a named defense with the victim on
/// domain 0.
fn memory_kind(defense: &str, victim: VictimKind) -> Option<MemoryKind> {
    Some(match defense {
        "insecure" => MemoryKind::Insecure,
        "dagguise" => MemoryKind::Dagguise {
            protected: vec![Some(victim.defense_template()), None],
        },
        "fixed_service" => MemoryKind::FixedService,
        "fs_bta" => MemoryKind::FsBta,
        "fs_spatial" => MemoryKind::FsSpatial,
        "temporal_partition" => MemoryKind::TemporalPartition {
            slots_per_period: 4,
        },
        "camouflage" => MemoryKind::Camouflage {
            protected: vec![Some(IntervalDistribution::figure2()), None],
        },
        _ => return None,
    })
}

/// A per-job override matched by id substring. The CI smoke spec uses one
/// to force a `Deadline` on the first attempt of a chosen job, exercising
/// the retry/escalation path deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct OverrideSpec {
    /// Substring of the job id this override applies to.
    pub pattern: String,
    /// Replacement base cycle budget for matching jobs.
    pub budget: u64,
}

/// The parameter grid: every combination becomes one job.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Defense names (see [`DEFENSE_NAMES`]).
    pub defenses: Vec<String>,
    /// Victim names (`docdist`, `dna`).
    pub victims: Vec<String>,
    /// SPEC co-runner preset names.
    pub corunners: Vec<String>,
    /// Victim secrets to sweep.
    pub seeds: Vec<u64>,
}

/// A declarative sweep: scale + grid + overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Sweep name; prefixes every job id.
    pub name: String,
    /// Workload scale (preset plus optional field overrides).
    pub scale: Scale,
    /// The parameter grid.
    pub grid: GridSpec,
    /// Per-job budget overrides.
    pub overrides: Vec<OverrideSpec>,
    /// Whether each job also runs the covert-channel leakage probe
    /// (spec key `leak = true`, or forced by `dg-run --leak`).
    pub leak: bool,
    /// Whether each job records a host-time span profile (spec key
    /// `profile = true`, or forced by `dg-run --profile`). Profiles are
    /// host-dependent, so they ship in a standalone artifact, never in the
    /// deterministic merged report.
    pub profile: bool,
    /// Shard count for the conservative-PDES sharded runtime (spec key
    /// `shards = N`, or forced by `dg-run --shards N`). `None` runs the
    /// classic single-threaded [`dg_system::System`]; jobs may still be
    /// switched onto the sharded path per-process via `DG_SHARDS`.
    pub shards: Option<usize>,
    /// Seed for the deterministic simulation-fault plan (spec table
    /// `[fault] seed = N`, or `dg-run --fault-seed N`). `None` disables
    /// fault injection entirely; the fault plane is a strict no-op.
    pub fault_seed: Option<u64>,
    /// Fraction of jobs the fault plan afflicts (spec key `[fault]
    /// rate = F` in `[0, 1]`, default 1.0). Which jobs draw a fault — and
    /// which kind — is a pure function of `(fault_seed, job id)`, so the
    /// same plan always breaks the same jobs the same way.
    pub fault_rate: f64,
    /// Whether stall-watchdog cancellations count as retryable (spec key
    /// `retry_stalled = true`, or `dg-run --retry-stalled`). `None`
    /// defers to the [`RunnerConfig`] default (off).
    pub retry_stalled: Option<bool>,
    /// Failure budget: the sweep exits successfully as long as at most
    /// this many jobs fail terminally (spec key `max_failures = N`, or
    /// `dg-run --max-failures N`). `None` defers to the
    /// [`RunnerConfig`] default (0).
    pub max_failures: Option<u64>,
}

fn opt<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// Hand-written: the vendored derive has no `#[serde(default)]`, and most
// spec sections are optional.
impl Deserialize for ExperimentSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom("spec must be a table"))?;

        let name = match opt(m, "name") {
            Some(v) => String::from_value(v)?,
            None => return Err(DeError::custom("spec is missing `name`")),
        };

        let mut scale = Scale::quick();
        if let Some(sv) = opt(m, "scale") {
            let sm = sv
                .as_map()
                .ok_or_else(|| DeError::custom("[scale] must be a table"))?;
            if let Some(p) = opt(sm, "preset") {
                let p = String::from_value(p)?;
                scale = Scale::by_name(&p)
                    .ok_or_else(|| DeError::custom(format!("unknown scale preset `{p}`")))?;
            }
            for (key, val) in sm {
                match key.as_str() {
                    "preset" => {}
                    "docdist_vocab" => scale.docdist_vocab = u64::from_value(val)?,
                    "docdist_words" => scale.docdist_words = u64::from_value(val)?,
                    "dna_genome" => scale.dna_genome = usize::from_value(val)?,
                    "dna_read" => scale.dna_read = usize::from_value(val)?,
                    "spec_instructions" => scale.spec_instructions = u64::from_value(val)?,
                    "budget" => scale.budget = u64::from_value(val)?,
                    other => return Err(DeError::custom(format!("unknown [scale] key `{other}`"))),
                }
            }
        }

        let gv = opt(m, "grid").ok_or_else(|| DeError::custom("spec is missing [grid]"))?;
        let gm = gv
            .as_map()
            .ok_or_else(|| DeError::custom("[grid] must be a table"))?;
        let defenses = match opt(gm, "defenses") {
            Some(v) => Vec::<String>::from_value(v)?,
            None => return Err(DeError::custom("[grid] is missing `defenses`")),
        };
        let victims = match opt(gm, "victims") {
            Some(v) => Vec::<String>::from_value(v)?,
            None => vec!["docdist".to_string()],
        };
        let corunners = match opt(gm, "corunners") {
            Some(v) => Vec::<String>::from_value(v)?,
            None => return Err(DeError::custom("[grid] is missing `corunners`")),
        };
        let seeds = match opt(gm, "seeds") {
            Some(v) => Vec::<u64>::from_value(v)?,
            None => vec![0],
        };

        let mut overrides = Vec::new();
        if let Some(ov) = opt(m, "override") {
            for entry in ov
                .as_seq()
                .ok_or_else(|| DeError::custom("[[override]] must be an array of tables"))?
            {
                let om = entry
                    .as_map()
                    .ok_or_else(|| DeError::custom("[[override]] entries must be tables"))?;
                let pattern = match opt(om, "match") {
                    Some(v) => String::from_value(v)?,
                    None => return Err(DeError::custom("[[override]] is missing `match`")),
                };
                let budget = match opt(om, "budget") {
                    Some(v) => u64::from_value(v)?,
                    None => return Err(DeError::custom("[[override]] is missing `budget`")),
                };
                overrides.push(OverrideSpec { pattern, budget });
            }
        }

        let leak = match opt(m, "leak") {
            Some(v) => bool::from_value(v)?,
            None => false,
        };

        let profile = match opt(m, "profile") {
            Some(v) => bool::from_value(v)?,
            None => false,
        };

        let shards = match opt(m, "shards") {
            Some(v) => Some(usize::from_value(v)?),
            None => None,
        };

        let mut fault_seed = None;
        let mut fault_rate = 1.0;
        if let Some(fv) = opt(m, "fault") {
            let fm = fv
                .as_map()
                .ok_or_else(|| DeError::custom("[fault] must be a table"))?;
            for (key, val) in fm {
                match key.as_str() {
                    "seed" => fault_seed = Some(u64::from_value(val)?),
                    "rate" => fault_rate = f64::from_value(val)?,
                    other => return Err(DeError::custom(format!("unknown [fault] key `{other}`"))),
                }
            }
        }

        let retry_stalled = match opt(m, "retry_stalled") {
            Some(v) => Some(bool::from_value(v)?),
            None => None,
        };

        let max_failures = match opt(m, "max_failures") {
            Some(v) => Some(u64::from_value(v)?),
            None => None,
        };

        let spec = ExperimentSpec {
            name,
            scale,
            grid: GridSpec {
                defenses,
                victims,
                corunners,
                seeds,
            },
            overrides,
            leak,
            profile,
            shards,
            fault_seed,
            fault_rate,
            retry_stalled,
            max_failures,
        };
        spec.validate().map_err(DeError::custom)?;
        Ok(spec)
    }
}

impl ExperimentSpec {
    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Syntax errors or a grid naming unknown defenses/victims/presets.
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let doc = parse_toml(text)?;
        Self::from_value(&doc).map_err(|e| e.to_string())
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Syntax errors or a grid naming unknown defenses/victims/presets.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Loads a spec file, dispatching on extension (`.toml` vs `.json`).
    ///
    /// # Errors
    ///
    /// I/O errors, syntax errors, or validation failures.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let parsed = match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json_str(&text),
            _ => Self::from_toml_str(&text),
        };
        parsed.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Checks that every grid entry names a known defense, victim, and
    /// SPEC preset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown entry.
    pub fn validate(&self) -> Result<(), String> {
        for d in &self.grid.defenses {
            if !DEFENSE_NAMES.contains(&d.as_str()) {
                return Err(format!(
                    "unknown defense `{d}` (expected one of {})",
                    DEFENSE_NAMES.join(", ")
                ));
            }
        }
        for v in &self.grid.victims {
            if VictimKind::by_name(v).is_none() {
                return Err(format!("unknown victim `{v}` (expected docdist or dna)"));
            }
        }
        for c in &self.grid.corunners {
            if SpecPreset::by_name(c).is_none() {
                return Err(format!("unknown SPEC co-runner preset `{c}`"));
            }
        }
        if self.grid.defenses.is_empty() || self.grid.corunners.is_empty() {
            return Err("grid expands to zero jobs".to_string());
        }
        if self.shards == Some(0) {
            return Err("`shards` must be a positive integer".to_string());
        }
        if !(0.0..=1.0).contains(&self.fault_rate) {
            return Err(format!(
                "[fault] rate must be within [0, 1], got {}",
                self.fault_rate
            ));
        }
        Ok(())
    }

    /// Expands the grid into its deterministic job list. Ids have the
    /// shape `{name}/{victim}-s{seed}+{corunner}/{defense}`; ordering is
    /// victims × seeds × corunners × defenses, but nothing downstream
    /// depends on it (the merged report sorts by id).
    pub fn expand(&self) -> Vec<ColocationJob> {
        let mut jobs = Vec::new();
        for victim_name in &self.grid.victims {
            let victim = VictimKind::by_name(victim_name).expect("validated");
            for &secret in &self.grid.seeds {
                for corunner in &self.grid.corunners {
                    for defense in &self.grid.defenses {
                        let id = format!(
                            "{}/{}-s{secret}+{corunner}/{defense}",
                            self.name,
                            victim.label()
                        );
                        let mut scale = self.scale;
                        if let Some(o) = self.overrides.iter().find(|o| id.contains(&o.pattern)) {
                            scale.budget = o.budget;
                        }
                        let fault = self
                            .fault_seed
                            .and_then(|seed| draw_sim_fault(seed, &id, self.fault_rate));
                        jobs.push(ColocationJob {
                            id,
                            victim,
                            secret,
                            corunner: corunner.clone(),
                            defense: defense.clone(),
                            scale,
                            leak: self.leak,
                            profile: self.profile,
                            shards: self.shards,
                            fault,
                        });
                    }
                }
            }
        }
        jobs
    }

    /// Expands and runs the sweep under `cfg`.
    ///
    /// # Errors
    ///
    /// Journal/orchestration I/O errors ([`run_sweep`]).
    pub fn run(&self, cfg: &RunnerConfig) -> io::Result<SweepOutcome<ColocationResult>> {
        self.run_filtered(cfg, None)
    }

    /// [`ExperimentSpec::run`] restricted to jobs whose id contains
    /// `only` (all jobs when `None`) — the `dg-run --only` path, and the
    /// repro command quarantine bundles quote. Spec-level supervision
    /// knobs (`retry_stalled`, `max_failures`) are folded into a copy of
    /// `cfg` here so CLI overrides (already applied to the spec) win.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the filter matches no job, else [`run_sweep`]
    /// I/O errors.
    pub fn run_filtered(
        &self,
        cfg: &RunnerConfig,
        only: Option<&str>,
    ) -> io::Result<SweepOutcome<ColocationResult>> {
        let mut cfg = cfg.clone();
        if let Some(retry_stalled) = self.retry_stalled {
            cfg.retry_stalled = retry_stalled;
        }
        if let Some(max_failures) = self.max_failures {
            cfg.max_failures = max_failures;
        }
        let mut jobs = self.expand();
        if let Some(pat) = only {
            jobs.retain(|j| j.id.contains(pat));
            if jobs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("--only `{pat}` matches no job in spec `{}`", self.name),
                ));
            }
        }
        run_sweep(&cfg, &jobs, execute_job)
    }
}

/// One expanded grid point: a two-core co-location run.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocationJob {
    /// Stable job id (see [`ExperimentSpec::expand`]).
    pub id: String,
    /// Victim application on domain 0.
    pub victim: VictimKind,
    /// Victim secret input.
    pub secret: u64,
    /// SPEC co-runner preset on domain 1.
    pub corunner: String,
    /// Defense name (see [`DEFENSE_NAMES`]).
    pub defense: String,
    /// Scale (with any per-job budget override already applied).
    pub scale: Scale,
    /// Whether to run the covert-channel leakage probe after the
    /// performance run.
    pub leak: bool,
    /// Whether to record a host-time span profile of the run and submit it
    /// to the process-global [`dg_prof::collector`].
    pub profile: bool,
    /// Shard count for the sharded runtime (`None` = classic system, with
    /// `DG_SHARDS` as a per-process fallback at execution time).
    pub shards: Option<usize>,
    /// Deterministic simulation fault drawn from the spec's fault plan
    /// (`None` when the plan is disarmed or skipped this job). Faults
    /// whose kind [`needs_reference_runtime`](dg_fault::SimFaultKind::needs_reference_runtime)
    /// pin the job onto the unsharded [`dg_system::System`] regardless of
    /// `shards`/`DG_SHARDS`.
    pub fault: Option<SimFault>,
}

impl JobDesc for ColocationJob {
    fn id(&self) -> &str {
        &self.id
    }

    fn manifest(&self) -> Value {
        Value::Map(vec![
            ("id".to_string(), self.id.to_value()),
            ("victim".to_string(), self.victim.label().to_value()),
            ("secret".to_string(), self.secret.to_value()),
            ("corunner".to_string(), self.corunner.to_value()),
            ("defense".to_string(), self.defense.to_value()),
            ("budget".to_string(), self.scale.budget.to_value()),
            ("leak".to_string(), self.leak.to_value()),
            ("profile".to_string(), self.profile.to_value()),
            ("shards".to_string(), self.shards.to_value()),
            (
                "fault".to_string(),
                self.fault.map(|f| f.to_string()).to_value(),
            ),
        ])
    }
}

/// Cycles per supervision slice when a wall-clock timeout is active.
const SUPERVISION_CHUNK: u64 = 2_000_000;

/// Salt separating the leakage probe's RNG stream from the job's.
const LEAK_PROBE_SALT: u64 = 0x6c65_616b_2d70_7262; // "leak-prb"

/// Leakage-estimator window in CPU cycles (4 covert epochs).
const LEAK_WINDOW: u64 = 8_000;

/// Independent probe repetitions per job. Each repetition transmits a
/// different pseudo-random message through a fresh memory instance; the
/// signed per-window estimates are merged across repetitions so the
/// finite-sample noise floor shrinks ∝ 1/√reps while a real channel's
/// capacity is unaffected.
const LEAK_PROBE_REPS: u64 = 8;

/// Covert probe configuration for sweep-level leakage measurement: small
/// enough to add negligible time per job, long enough for the estimator
/// to see several windows.
fn leak_probe_config() -> CovertConfig {
    CovertConfig {
        epoch: 2_000,
        bits: 64,
        sender_gap: 6,
        probe_gap: 50,
    }
}

/// Runs the covert-channel leakage probe for a job's defense: a sender on
/// domain 0 and a receiver on domain 1 drive the *same memory path* the
/// job's colocation run used (fresh instance, no cores), and the online
/// [`LeakEstimator`](dg_obs::LeakEstimator) reduces the receiver's latency
/// histograms to a channel-capacity summary. [`LEAK_PROBE_REPS`]
/// repetitions with distinct messages are merged (signed windows, see
/// [`LeakReport::merged`](dg_obs::LeakReport::merged)); the quoted decode
/// error rate is the mean across repetitions.
fn run_leak_probe(cfg: &SystemConfig, kind: &MemoryKind, seed: u64) -> LeakSummary {
    let _prof = dg_prof::span("leak_probe");
    let probe = leak_probe_config();
    let mut reports = Vec::new();
    let mut error_sum = 0.0;
    let mut raw = 0.0;
    for rep in 0..LEAK_PROBE_REPS {
        let mut mem = build_memory(cfg, kind.clone(), 2);
        let (covert, report) = run_covert_channel_estimated(
            mem.as_mut(),
            DomainId(0),
            DomainId(1),
            &probe,
            cfg.core.clock_hz,
            (seed ^ LEAK_PROBE_SALT).wrapping_add(rep.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            LEAK_WINDOW,
        );
        error_sum += covert.error_rate;
        raw = covert.raw_bits_per_sec;
        reports.push(report);
    }
    let merged = dg_obs::LeakReport::merged(&reports);
    LeakSummary::from_report(&merged, error_sum / LEAK_PROBE_REPS as f64, raw)
}

/// Executes one grid point. All randomness comes from `ctx.seed` (a pure
/// function of the job id) and all work is bounded by the escalated cycle
/// budget, so the result is identical wherever and whenever the job runs.
///
/// # Errors
///
/// [`SimError::Deadline`] when the (escalated) budget is too small —
/// retried by the runner — or any other simulation error.
pub fn execute_job(job: &ColocationJob, ctx: &JobCtx) -> Result<ColocationResult, SimError> {
    if !job.profile {
        return execute_job_inner(job, ctx);
    }
    // The span profiler is thread-local, so concurrent worker threads each
    // record their own tree. Stop unconditionally — a dangling frame stack
    // would bleed into the next job scheduled on this worker — but only
    // submit profiles of successful attempts (a Deadline retry would
    // otherwise double-count the job).
    dg_prof::start();
    let result = execute_job_inner(job, ctx);
    let report = dg_prof::stop();
    if result.is_ok() {
        if let Some(report) = report {
            dg_prof::collector::submit(&job.id, report);
        }
    }
    result
}

/// Test hook for the stall watchdog: when `DG_MON_TEST_STALL` is set to a
/// substring of this job's id, the attempt busy-waits *without advancing
/// its simulated clock* until supervision cancels it (or a generous cap
/// trips). This manufactures the livelock signature — host time passing,
/// simulated time frozen — that the watchdog exists to catch, so the CI
/// smoke can prove a stalled job is flagged and aborted within budget.
fn test_stall_hook(job: &ColocationJob, ctx: &JobCtx) -> Result<(), SimError> {
    let Ok(pattern) = std::env::var("DG_MON_TEST_STALL") else {
        return Ok(());
    };
    if pattern.is_empty() || !job.id.contains(&pattern) {
        return Ok(());
    }
    let started = std::time::Instant::now();
    while !ctx.expired() {
        if started.elapsed() > std::time::Duration::from_secs(120) {
            return Err(SimError::Aborted(
                "test stall hook: no supervisor cancelled within 120s".to_string(),
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    Err(SimError::Aborted(
        "test stall hook: simulated clock held".to_string(),
    ))
}

fn execute_job_inner(job: &ColocationJob, ctx: &JobCtx) -> Result<ColocationResult, SimError> {
    test_stall_hook(job, ctx)?;
    let cfg = SystemConfig::two_core();
    let (victim, corunner) = {
        let _prof = dg_prof::span("workload");
        (
            job.victim.trace(&job.scale, job.secret),
            spec_trace_seeded(&job.scale, &job.corunner, 1, ctx.seed),
        )
    };
    let kind = memory_kind(&job.defense, job.victim)
        .ok_or_else(|| SimError::InvalidConfig(format!("unknown defense `{}`", job.defense)))?;
    let budget = ctx.budget(job.scale.budget);
    // The planned fault fires on the attempts its retry scope names —
    // first-attempt-only faults vanish on retry (the supervision story:
    // detect, retry, recover), forced (`!`) faults chase every attempt
    // into quarantine.
    let fault = job
        .fault
        .filter(|f| f.fires_on(ctx.attempt))
        .map(|f| f.kind);
    // Spec/CLI shard counts win; `DG_SHARDS` switches a whole process onto
    // the sharded runtime (the differential-oracle CI gate relies on this).
    // Data-plane faults (stuck bank, dropped response) exist only in the
    // unsharded reference system, so they pin the job there.
    let shards = job
        .shards
        .or_else(dg_shard::shards_from_env)
        .filter(|_| !fault.is_some_and(|k| k.needs_reference_runtime()));
    // Supervision engages for a wall-clock timeout OR a live monitor: the
    // monitored paths publish heartbeats between supervision slices and
    // poll `ctx.expired()` so the stall watchdog can cancel the attempt.
    // An armed fault also routes through the supervised paths — those are
    // the only ones with injection hooks.
    let supervised = ctx.deadline.is_some() || ctx.monitor.is_some();
    let mut result = if let Some(shards) = shards {
        if supervised || fault.is_some() {
            dg_shard::run_colocation_sharded_faulted(
                &cfg,
                vec![victim, corunner],
                kind.clone(),
                shards,
                budget,
                &mut || ctx.expired(),
                ctx.monitor.as_ref(),
                fault,
            )
        } else {
            dg_shard::run_colocation_sharded(
                &cfg,
                vec![victim, corunner],
                kind.clone(),
                shards,
                budget,
            )
        }
    } else if supervised || fault.is_some() {
        dg_system::run_colocation_faulted(
            &cfg,
            vec![victim, corunner],
            kind.clone(),
            budget,
            SUPERVISION_CHUNK,
            &mut || ctx.expired(),
            ctx.monitor.as_ref(),
            fault,
        )
    } else {
        run_colocation(&cfg, vec![victim, corunner], kind.clone(), budget)
    }?;
    if job.leak {
        result.leakage = Some(run_leak_probe(&cfg, &kind, ctx.seed));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "unit"

[scale]
preset = "smoke"

[grid]
defenses = ["insecure", "dagguise"]
victims = ["docdist", "dna"]
corunners = ["lbm"]
seeds = [0, 1]

[[override]]
match = "+lbm/dagguise"
budget = 1234
"#;

    #[test]
    fn toml_spec_expands_deterministically() {
        let spec = ExperimentSpec::from_toml_str(SPEC).unwrap();
        assert_eq!(spec.scale.dna_genome, Scale::smoke().dna_genome);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 8); // 2 defenses x 2 victims x 1 corunner x 2 seeds
        assert_eq!(jobs[0].id, "unit/docdist-s0+lbm/insecure");
        // Stable across re-expansion.
        let again: Vec<String> = spec.expand().into_iter().map(|j| j.id).collect();
        let first: Vec<String> = jobs.iter().map(|j| j.id.clone()).collect();
        assert_eq!(first, again);
        // Ids are unique.
        let mut sorted = first.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn overrides_rebudget_matching_jobs_only() {
        let spec = ExperimentSpec::from_toml_str(SPEC).unwrap();
        for job in spec.expand() {
            if job.id.contains("+lbm/dagguise") {
                assert_eq!(job.scale.budget, 1234, "{}", job.id);
            } else {
                assert_eq!(job.scale.budget, Scale::smoke().budget, "{}", job.id);
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        let bad = SPEC.replace("\"dagguise\"", "\"warp_field\"");
        let err = ExperimentSpec::from_toml_str(&bad).unwrap_err();
        assert!(err.contains("unknown defense"), "{err}");
        let bad = SPEC.replace("\"lbm\"", "\"notaspec\"");
        assert!(ExperimentSpec::from_toml_str(&bad).is_err());
        let bad = SPEC.replace("\"dna\"", "\"rsa\"");
        assert!(ExperimentSpec::from_toml_str(&bad).is_err());
    }

    #[test]
    fn json_spec_parses_too() {
        let json = r#"{
            "name": "j",
            "scale": {"preset": "smoke"},
            "grid": {"defenses": ["insecure"], "corunners": ["xz"]}
        }"#;
        let spec = ExperimentSpec::from_json_str(json).unwrap();
        assert_eq!(spec.grid.victims, vec!["docdist"]);
        assert_eq!(spec.grid.seeds, vec![0]);
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn leak_key_propagates_to_jobs() {
        let spec = ExperimentSpec::from_toml_str(SPEC).unwrap();
        assert!(!spec.leak);
        assert!(spec.expand().iter().all(|j| !j.leak));

        let with_leak = format!("leak = true\n{SPEC}");
        let spec = ExperimentSpec::from_toml_str(&with_leak).unwrap();
        assert!(spec.leak);
        assert!(spec.expand().iter().all(|j| j.leak));
    }

    #[test]
    fn shards_key_propagates_and_rejects_zero() {
        let spec = ExperimentSpec::from_toml_str(SPEC).unwrap();
        assert_eq!(spec.shards, None);
        assert!(spec.expand().iter().all(|j| j.shards.is_none()));

        let with_shards = format!("shards = 4\n{SPEC}");
        let spec = ExperimentSpec::from_toml_str(&with_shards).unwrap();
        assert_eq!(spec.shards, Some(4));
        assert!(spec.expand().iter().all(|j| j.shards == Some(4)));

        let zero = format!("shards = 0\n{SPEC}");
        let err = ExperimentSpec::from_toml_str(&zero).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn fault_table_arms_a_deterministic_plan() {
        let spec = ExperimentSpec::from_toml_str(SPEC).unwrap();
        assert_eq!(spec.fault_seed, None);
        assert!(
            spec.expand().iter().all(|j| j.fault.is_none()),
            "no [fault] table, no faults"
        );

        let armed = format!("{SPEC}\n[fault]\nseed = 7\n");
        let spec = ExperimentSpec::from_toml_str(&armed).unwrap();
        assert_eq!(spec.fault_seed, Some(7));
        assert_eq!(spec.fault_rate, 1.0);
        let faults: Vec<Option<SimFault>> = spec.expand().iter().map(|j| j.fault).collect();
        assert!(
            faults.iter().all(Option::is_some),
            "rate 1.0 afflicts every job"
        );
        // Pure function of (seed, id): re-expansion draws identically.
        let again: Vec<Option<SimFault>> = spec.expand().iter().map(|j| j.fault).collect();
        assert_eq!(faults, again);

        let zero = format!("{SPEC}\n[fault]\nseed = 7\nrate = 0.0\n");
        let spec = ExperimentSpec::from_toml_str(&zero).unwrap();
        assert!(spec.expand().iter().all(|j| j.fault.is_none()));

        let bad_rate = format!("{SPEC}\n[fault]\nseed = 7\nrate = 1.5\n");
        let err = ExperimentSpec::from_toml_str(&bad_rate).unwrap_err();
        assert!(err.contains("rate"), "{err}");
        let bad_key = format!("{SPEC}\n[fault]\nseed = 7\nblast_radius = 3\n");
        assert!(ExperimentSpec::from_toml_str(&bad_key).is_err());
    }

    #[test]
    fn supervision_keys_parse_and_default_off() {
        let spec = ExperimentSpec::from_toml_str(SPEC).unwrap();
        assert_eq!(spec.retry_stalled, None);
        assert_eq!(spec.max_failures, None);

        let tuned = format!("retry_stalled = true\nmax_failures = 3\n{SPEC}");
        let spec = ExperimentSpec::from_toml_str(&tuned).unwrap();
        assert_eq!(spec.retry_stalled, Some(true));
        assert_eq!(spec.max_failures, Some(3));
    }

    #[test]
    fn colocation_manifest_describes_the_grid_point() {
        let armed = format!("{SPEC}\n[fault]\nseed = 7\n");
        let spec = ExperimentSpec::from_toml_str(&armed).unwrap();
        let job = &spec.expand()[0];
        let doc = serde_json::to_string(&job.manifest()).unwrap();
        for needle in ["\"victim\"", "\"corunner\"", "\"defense\"", "\"budget\""] {
            assert!(doc.contains(needle), "manifest missing {needle}: {doc}");
        }
        let fault = job.fault.expect("armed plan");
        assert!(
            doc.contains(&fault.to_string()),
            "manifest should quote the drawn fault: {doc}"
        );
    }

    #[test]
    fn every_defense_name_builds_a_memory_kind() {
        for d in DEFENSE_NAMES {
            assert!(memory_kind(d, VictimKind::DocDist).is_some(), "{d}");
        }
        assert!(memory_kind("nope", VictimKind::Dna).is_none());
    }
}
