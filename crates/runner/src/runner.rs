//! The sweep orchestrator: scheduling, supervision, journaling, merging.
//!
//! [`run_sweep`] takes a deterministic job list and an executor and drives
//! it through the work-stealing pool with:
//!
//! * **panic isolation** — each attempt runs under `catch_unwind`, so one
//!   bad config point records a failure instead of killing the sweep;
//! * **bounded retry with backoff** — attempts that return
//!   [`SimError::Deadline`] are re-executed in place with an escalated
//!   cycle budget (see [`JobCtx::budget`]) after a short exponential
//!   backoff sleep, up to `retries` extra attempts;
//! * **crash-safe journaling** — every terminal record is appended (and
//!   fsynced) to the journal before the sweep moves on, enabling
//!   `--resume`;
//! * **deterministic merging** — the [`SweepOutcome`] sorts records by job
//!   id, so the canonical merged report is byte-identical across worker
//!   counts and across interrupted-then-resumed runs.

use crate::job::{job_seed, JobCtx, JobDesc, JobRecord};
use crate::journal::{replay_journal, JournalEntry, JournalWriter};
use crate::pool::{effective_jobs, run_work_stealing};
use dg_fault::IoPlan;
use dg_mon::{log_error, log_warn, Dashboard, EventsWriter, MonitorConfig, MonitorHub};
use dg_obs::{ProgressMeter, SweepProgress};
use dg_sim::error::SimError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Supervision policy for a sweep.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (see [`effective_jobs`] for the default resolution).
    pub jobs: usize,
    /// Extra attempts granted to jobs that hit [`SimError::Deadline`].
    pub retries: u32,
    /// Base sleep before a retry; doubles per attempt.
    pub backoff: Duration,
    /// Cycle-budget multiplier applied per retry attempt.
    pub escalation: u64,
    /// Optional per-attempt wall-clock timeout. Cooperative: executors
    /// check [`JobCtx::expired`] between simulation chunks. Note that
    /// wall-clock kills are inherently host-dependent; canonical sweeps
    /// should bound work with cycle budgets instead.
    pub timeout: Option<Duration>,
    /// Journal path to append terminal records to.
    pub journal: Option<PathBuf>,
    /// Journal path to replay before running: jobs with a successful entry
    /// are skipped. Usually the same path as `journal`.
    pub resume: Option<PathBuf>,
    /// Whether to print per-job progress lines to stderr.
    pub verbose: bool,
    /// Live-telemetry options: dashboard, events stream, stall watchdog.
    pub monitor: MonitorConfig,
    /// Whether watchdog-cancelled (stalled) jobs are eligible for the
    /// same `retries` budget as deadline failures. Off by default: a
    /// stall is host-dependent, so canonical sweeps should not retry it
    /// silently — chaos sweeps opt in to prove the recovery path.
    pub retry_stalled: bool,
    /// Failure budget: the sweep exits successfully as long as at most
    /// this many jobs fail terminally (they are still reported and, when
    /// configured, quarantined).
    pub max_failures: u64,
    /// Directory for quarantine diagnostics bundles — one JSON file per
    /// terminally failed job (spec slice, seed, attempts, last heartbeat,
    /// repro command). `None` disables bundling.
    pub quarantine: Option<PathBuf>,
    /// Planned IO faults for the journal/events/report streams. The
    /// default unarmed plan is exact passthrough.
    pub fault_io: IoPlan,
    /// Command prefix (e.g. `dg-run spec.toml`) used to render the repro
    /// command inside quarantine bundles.
    pub repro_prefix: Option<String>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            jobs: effective_jobs(None),
            retries: 2,
            backoff: Duration::from_millis(50),
            escalation: 2,
            timeout: None,
            journal: None,
            resume: None,
            verbose: true,
            monitor: MonitorConfig::default(),
            retry_stalled: false,
            max_failures: 0,
            quarantine: None,
            fault_io: IoPlan::none(),
            repro_prefix: None,
        }
    }
}

/// Infrastructure health of a finished sweep, tracked *alongside* the
/// records rather than replacing them: IO failures degrade the run (and
/// its exit code) but never discard results that were computed in memory.
/// Everything here is host-dependent, so none of it appears in the
/// canonical merged report — it surfaces via logs and exit codes only.
#[derive(Debug, Clone, Default)]
pub struct SweepHealth {
    /// The journal hit a persistent write error mid-sweep and was flipped
    /// to in-memory degraded mode: completed results are preserved and
    /// merged, but crash-resume safety is lost from that point on.
    pub journal_degraded: bool,
    /// Human-readable descriptions of infrastructure IO failures
    /// (journal degradation, events-stream write errors, artifact write
    /// failures appended by the CLI).
    pub io_errors: Vec<String>,
    /// `(job id, bundle path)` for every quarantine bundle written.
    pub quarantined: Vec<(String, PathBuf)>,
    /// Terminally failed jobs whose diagnosis names the stall watchdog.
    pub stalled: u64,
    /// The failure budget the sweep ran under (`RunnerConfig::max_failures`).
    pub failure_budget: u64,
}

impl SweepHealth {
    /// Whether sweep infrastructure (journal, events, artifacts) failed,
    /// independent of job outcomes.
    pub fn infra_failed(&self) -> bool {
        self.journal_degraded || !self.io_errors.is_empty()
    }
}

/// The documented exit-code taxonomy for sweep binaries. Ordered by
/// precedence: infrastructure damage outranks job failures (the report
/// exists but its durability story is broken), and a within-budget sweep
/// is a success even with failed jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitClass {
    /// Every job succeeded, or failures stayed within `max_failures`.
    Success,
    /// Jobs failed beyond the failure budget (bad config points, panics).
    JobFailures,
    /// Sweep infrastructure failed: journal degraded, events stream or
    /// artifact writes errored. Results may be complete but durability /
    /// observability is compromised — rerun on a healthy disk.
    Infra,
    /// Over-budget failures dominated by stall-watchdog cancellations:
    /// the models livelocked rather than returning wrong answers.
    Stall,
}

impl ExitClass {
    /// The process exit code (2 is reserved for usage/spec errors,
    /// assigned by the CLI before a sweep ever runs).
    pub fn code(self) -> u8 {
        match self {
            ExitClass::Success => 0,
            ExitClass::JobFailures => 1,
            ExitClass::Infra => 3,
            ExitClass::Stall => 4,
        }
    }
}

/// The merged outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome<R> {
    /// One terminal record per job, sorted by job id.
    pub records: Vec<JobRecord<R>>,
    /// Scheduling statistics (wall-clock fields are display-only).
    pub progress: SweepProgress,
    /// Infrastructure health (degraded journal, IO errors, quarantine).
    pub health: SweepHealth,
}

impl<R> SweepOutcome<R> {
    /// The records of jobs that failed.
    pub fn failures(&self) -> Vec<&JobRecord<R>> {
        self.records.iter().filter(|r| !r.is_ok()).collect()
    }

    /// Looks up a record by job id.
    pub fn get(&self, id: &str) -> Option<&JobRecord<R>> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Iterates `(id, output)` over successful jobs.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, &R)> {
        self.records
            .iter()
            .filter_map(|r| r.output.as_ref().map(|o| (r.id.as_str(), o)))
    }

    /// Classifies the finished sweep for the exit-code taxonomy (see
    /// [`ExitClass`]). Precedence: infrastructure damage first, then the
    /// failure budget, then stall-vs-plain-failure.
    pub fn exit_class(&self) -> ExitClass {
        if self.health.infra_failed() {
            return ExitClass::Infra;
        }
        let failures = self.records.iter().filter(|r| !r.is_ok()).count() as u64;
        if failures <= self.health.failure_budget {
            ExitClass::Success
        } else if self.health.stalled > 0 {
            ExitClass::Stall
        } else {
            ExitClass::JobFailures
        }
    }

    /// Prints failing job ids with their errors to stderr and reports
    /// whether the sweep fully succeeded. Harness binaries exit nonzero on
    /// `false` — results must never be dropped silently.
    pub fn report_failures(&self) -> bool {
        let failures = self.failures();
        if failures.is_empty() {
            return true;
        }
        log_error!(
            "{} of {} jobs failed",
            failures.len(),
            self.records.len();
            "failed" => failures.len(),
            "total" => self.records.len()
        );
        for f in &failures {
            log_error!(
                "  {} — {}",
                f.id,
                f.error.as_deref().unwrap_or("unknown error");
                "job" => f.id,
                "attempts" => f.attempts
            );
        }
        false
    }
}

impl<R: Serialize> SweepOutcome<R> {
    /// The canonical merged report: pretty JSON with records in job-id
    /// order and only deterministic fields. Byte-identical across worker
    /// counts and across kill/`--resume` cycles of the same spec.
    pub fn merged_report_json(&self, sweep_name: &str) -> String {
        let jobs = Value::Seq(self.records.iter().map(Serialize::to_value).collect());
        let doc = Value::Map(vec![
            ("sweep".to_string(), sweep_name.to_value()),
            ("jobs".to_string(), jobs),
        ]);
        serde_json::to_string_pretty(&doc).expect("merged report serialization is infallible")
    }
}

/// Runs `jobs` through the work-stealing pool under `cfg`, journaling
/// terminal records and merging resumed results.
///
/// The executor must be a pure function of `(job, ctx)` — all randomness
/// from `ctx.seed`, all work bounded by `ctx.budget(base)` — which is what
/// makes the merged outcome independent of `cfg.jobs`.
///
/// # Errors
///
/// Duplicate job ids, an unreadable resume journal, or failure to *open*
/// the journal/events files (a bad path should fail before hours of
/// simulation). A journal write failure mid-sweep is NOT an error: the
/// journal degrades to in-memory mode, completed results are kept and
/// merged, and the damage is surfaced through [`SweepOutcome::health`]
/// (and the [`ExitClass::Infra`] exit code) instead.
pub fn run_sweep<J, R, F>(cfg: &RunnerConfig, jobs: &[J], exec: F) -> io::Result<SweepOutcome<R>>
where
    J: JobDesc,
    R: Serialize + Deserialize + Send,
    F: Fn(&J, &JobCtx) -> Result<R, SimError> + Sync,
{
    let mut ids = BTreeSet::new();
    for job in jobs {
        if !ids.insert(job.id().to_string()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate job id `{}` in sweep", job.id()),
            ));
        }
    }

    // Replay the resume journal: last entry per id wins, successful
    // entries short-circuit their job.
    let mut resumed: BTreeMap<String, JournalEntry<R>> = BTreeMap::new();
    if let Some(path) = &cfg.resume {
        let replay = replay_journal::<R>(path)?;
        if replay.dropped_partial_tail {
            // Cut the half-written line off before we append to this file
            // again; left in place it would sit mid-file and poison the
            // next resume.
            crate::journal::truncate_journal(path, replay.valid_len)?;
        }
        for entry in replay.entries {
            resumed.insert(entry.id.clone(), entry);
        }
        // Entries for jobs not in this spec (stale journal reuse) are
        // ignored rather than merged into the report.
        resumed.retain(|id, e| ids.contains(id) && e.error.is_none());
    }

    // With the dashboard active, per-job progress lines would shear the
    // live region; the final summary still prints.
    let meter = ProgressMeter::new(jobs.len() as u64, cfg.verbose && !cfg.monitor.live);
    meter.skipped(resumed.len() as u64);

    let journal_path = cfg.journal.as_ref().or(cfg.resume.as_ref());
    let journal: Option<Mutex<JournalState>> = match journal_path {
        Some(path) => Some(Mutex::new(JournalState {
            writer: Some(JournalWriter::open_append_faulted(path, &cfg.fault_io)?),
            error: None,
        })),
        None => None,
    };

    let pending: Vec<usize> = (0..jobs.len())
        .filter(|&i| !resumed.contains_key(jobs[i].id()))
        .collect();

    // The monitoring plane: a hub the workers heartbeat into, sampled by
    // a monitor thread that renders the dashboard, appends the events
    // stream, and runs the stall watchdog. All of it is outside the
    // executor's result path, so enabling it cannot change the report.
    let monitoring = Monitoring::start(cfg, jobs, &pending, resumed.len() as u64)?;

    let results: Mutex<Vec<JobRecord<R>>> = Mutex::new(Vec::with_capacity(pending.len()));
    let quarantined: Mutex<Vec<(String, PathBuf)>> = Mutex::new(Vec::new());
    let quarantine_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    run_work_stealing(pending, cfg.jobs, |worker, job_idx| {
        let job = &jobs[job_idx];
        let id = job.id();
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let mut last_probe = None;
        let (output, error) = loop {
            let probe = monitoring
                .as_ref()
                .map(|m| m.hub.begin_job(worker, id, attempt));
            last_probe.clone_from(&probe);
            let ctx = JobCtx {
                seed: job_seed(id),
                attempt,
                escalation: cfg.escalation,
                deadline: cfg.timeout.map(|t| Instant::now() + t),
                monitor: probe.clone(),
            };
            match catch_unwind(AssertUnwindSafe(|| exec(job, &ctx))) {
                Ok(Ok(r)) => break (Some(r), None),
                Ok(Err(e))
                    if attempt < cfg.retries
                        && retry_eligible(&e, cfg.retry_stalled, probe.as_ref()) =>
                {
                    if cfg.verbose {
                        log_warn!(
                            "retrying {id} after {e}";
                            "job" => id,
                            "attempt" => attempt + 2
                        );
                    }
                    meter.retried();
                    if let Some(m) = &monitoring {
                        m.hub.job_retrying(worker);
                    }
                    std::thread::sleep(cfg.backoff * 2u32.saturating_pow(attempt).min(1 << 10));
                    attempt += 1;
                }
                Ok(Err(e)) => {
                    // A watchdog cancellation surfaces as a generic abort;
                    // put the stall diagnosis back into the record.
                    let msg = match probe.as_ref().and_then(|p| p.cancel_reason()) {
                        Some(reason) => format!("{reason}: {e}"),
                        None => e.to_string(),
                    };
                    break (None, Some(msg));
                }
                Err(payload) => {
                    // `payload.as_ref()`, not `&payload`: the latter would
                    // unsize the Box itself into `dyn Any` and every
                    // downcast would miss.
                    break (
                        None,
                        Some(format!("panic: {}", panic_message(payload.as_ref()))),
                    );
                }
            }
        };

        let record = JobRecord {
            id: id.to_string(),
            attempts: attempt + 1,
            output,
            error,
        };
        if let Some(m) = &monitoring {
            m.hub
                .end_job(worker, record.is_ok(), started.elapsed().as_millis() as u64);
        }
        if let (Some(err), Some(dir)) = (&record.error, &cfg.quarantine) {
            // Quarantine the job's diagnostics so the sweep can keep going
            // while a human (or a repro run) picks the failure apart later.
            match write_quarantine_bundle(
                dir,
                job,
                err,
                record.attempts,
                last_probe.as_ref(),
                cfg,
                started.elapsed().as_millis() as u64,
            ) {
                Ok(bundle) => {
                    log_warn!(
                        "quarantined {id}";
                        "job" => id,
                        "bundle" => bundle.display()
                    );
                    quarantined.lock().push((id.to_string(), bundle));
                }
                Err(e) => quarantine_errors
                    .lock()
                    .push(format!("quarantine bundle for {id}: {e}")),
            }
        }
        if let Some(journal) = &journal {
            let entry = JournalEntry {
                id: record.id.clone(),
                attempts: record.attempts,
                output: record.output.as_ref(),
                error: record.error.clone(),
                wall_ms: started.elapsed().as_millis() as u64,
            };
            let mut state = journal.lock();
            if let Some(w) = &mut state.writer {
                if let Err(e) = w.append(&entry) {
                    // Graceful degradation, not fail-fast: drop the writer
                    // (later completions stay in memory), record the damage,
                    // and let the sweep finish — losing resume safety must
                    // not also lose the results already computed.
                    log_error!(
                        "journal write failed — degrading to in-memory results \
                         (crash-resume safety lost from here on): {e}";
                        "job" => id
                    );
                    state.writer = None;
                    state.error = Some(e.to_string());
                }
            }
        }
        meter.job_done(id, record.is_ok(), record.attempts);
        results.lock().push(record);
    });

    let mut health = SweepHealth {
        failure_budget: cfg.max_failures,
        quarantined: quarantined.into_inner(),
        io_errors: quarantine_errors.into_inner(),
        ..SweepHealth::default()
    };

    if let Some(m) = monitoring {
        if let Err(e) = m.finish() {
            // Telemetry-plane IO failures degrade the run's health; they
            // never invalidate the computed records.
            health.io_errors.push(format!("events stream: {e}"));
        }
    }

    if let Some(state) = journal {
        let state = state.into_inner();
        if let Some(e) = state.error {
            health.journal_degraded = true;
            health.io_errors.push(format!("journal: {e}"));
        }
    }

    let mut records = results.into_inner();
    records.extend(resumed.into_values().map(JournalEntry::into_record));
    records.sort_by(|a, b| a.id.cmp(&b.id));
    health.stalled = records
        .iter()
        .filter(|r| {
            r.error
                .as_deref()
                .is_some_and(|e| e.contains("stall watchdog"))
        })
        .count() as u64;

    Ok(SweepOutcome {
        records,
        progress: meter.summary(),
        health,
    })
}

/// The journal write path of one sweep: present and healthy, or degraded
/// (writer dropped, first error kept) after a persistent IO failure.
struct JournalState {
    writer: Option<JournalWriter>,
    error: Option<String>,
}

/// Whether a failed attempt is eligible for the retry budget. Deadline
/// exhaustion always is (escalation gives the retry more headroom); a
/// supervisor abort is only when it was the *stall watchdog* and the
/// sweep opted in via `retry_stalled` — a fresh attempt genuinely clears
/// transient livelocks, but canonical sweeps want the diagnosis instead.
fn retry_eligible(
    e: &SimError,
    retry_stalled: bool,
    probe: Option<&dg_mon::ProgressProbe>,
) -> bool {
    match e {
        SimError::Deadline { .. } => true,
        SimError::Aborted(_) => {
            retry_stalled
                && probe
                    .and_then(|p| p.cancel_reason())
                    .is_some_and(|r| r.starts_with("stall watchdog"))
        }
        _ => false,
    }
}

/// Replaces every byte that is not `[A-Za-z0-9._-]` so a job id (which
/// uses `/` freely) becomes one flat file name.
fn quarantine_slug(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one quarantine diagnostics bundle: everything needed to triage
/// and reproduce a terminally failed job without the original sweep —
/// the job manifest, its deterministic seed, the failure diagnosis, the
/// last heartbeat the monitoring plane saw, and a ready-to-paste repro
/// command.
fn write_quarantine_bundle<J: JobDesc>(
    dir: &Path,
    job: &J,
    error: &str,
    attempts: u32,
    probe: Option<&dg_mon::ProgressProbe>,
    cfg: &RunnerConfig,
    wall_ms: u64,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let id = job.id();
    let heartbeat = match probe {
        Some(p) => Value::Map(vec![
            ("sim_cycles".to_string(), p.sim_cycles().to_value()),
            ("supersteps".to_string(), p.supersteps().to_value()),
            ("skipped_cycles".to_string(), p.skipped_cycles().to_value()),
            ("cancelled".to_string(), p.cancelled().to_value()),
            ("cancel_reason".to_string(), p.cancel_reason().to_value()),
        ]),
        None => Value::Null,
    };
    let repro = format!(
        "{} --only '{id}' --retries {} --escalation {}",
        cfg.repro_prefix.as_deref().unwrap_or("dg-run <SPEC.toml>"),
        cfg.retries,
        cfg.escalation
    );
    let doc = Value::Map(vec![
        ("id".to_string(), id.to_value()),
        ("seed".to_string(), job_seed(id).to_value()),
        ("attempts".to_string(), attempts.to_value()),
        ("error".to_string(), error.to_value()),
        ("job".to_string(), job.manifest()),
        ("last_heartbeat".to_string(), heartbeat),
        ("repro".to_string(), repro.to_value()),
        ("wall_ms".to_string(), wall_ms.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&doc)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let path = dir.join(format!("{}.json", quarantine_slug(id)));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The live-monitoring side plane of one sweep: the heartbeat hub plus
/// the background thread that samples it. Constructed only when
/// [`MonitorConfig::enabled`]; everything here is observational — the
/// executor's inputs and outputs never depend on it.
struct Monitoring {
    hub: Arc<MonitorHub>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl Monitoring {
    fn start<J: JobDesc>(
        cfg: &RunnerConfig,
        jobs: &[J],
        pending: &[usize],
        skipped: u64,
    ) -> io::Result<Option<Self>> {
        if !cfg.monitor.enabled() {
            return Ok(None);
        }
        let ids: Vec<&str> = pending.iter().map(|&i| jobs[i].id()).collect();
        let hub = Arc::new(MonitorHub::new(
            cfg.jobs.max(1),
            jobs.len() as u64,
            &ids,
            skipped,
        ));

        // Open the events stream up front so a bad path fails the sweep
        // immediately instead of after hours of simulation. A resumed run
        // (same semantics as the journal) repairs a torn tail and
        // continues the sequence numbering.
        let events = match &cfg.monitor.events {
            Some(path) => {
                let (writer, repaired) =
                    EventsWriter::open_faulted(path, cfg.resume.is_some(), &cfg.fault_io)?;
                if repaired {
                    log_warn!(
                        "dropped partial trailing events line";
                        "events" => path.display()
                    );
                }
                Some(writer)
            }
            None => None,
        };
        let dashboard = cfg.monitor.live.then(Dashboard::new);

        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let hub = Arc::clone(&hub);
            let stop = Arc::clone(&stop);
            let interval = cfg.monitor.interval();
            let stall = cfg.monitor.stall_timeout;
            std::thread::spawn(move || {
                monitor_loop(&hub, &stop, interval, stall, events, dashboard)
            })
        };

        Ok(Some(Monitoring { hub, stop, thread }))
    }

    /// Stops the monitor thread, emitting one final snapshot so the
    /// events stream always ends in a terminal (`done == total`) record.
    fn finish(self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("monitor thread panicked")),
        }
    }
}

/// The monitor thread body: sample → watchdog → render → stream, every
/// `interval`, plus one final sample after the pool drains.
fn monitor_loop(
    hub: &MonitorHub,
    stop: &AtomicBool,
    interval: Duration,
    stall: Option<Duration>,
    mut events: Option<EventsWriter>,
    mut dashboard: Option<Dashboard>,
) -> io::Result<()> {
    let mut result = Ok(());
    loop {
        let stopping = stop.load(Ordering::Acquire);
        if let Some(budget) = stall {
            for job in hub.watchdog_scan(budget) {
                log_warn!(
                    "stall watchdog cancelling {job}";
                    "job" => job,
                    "budget_s" => budget.as_secs_f64()
                );
            }
        }
        let mut snap = hub.snapshot();
        if let Some(w) = &mut events {
            // Keep sampling the dashboard on a write error, but surface
            // the first failure to the caller — a silently truncated
            // stream would look like a crashed run to consumers.
            if let Err(e) = w.append(&mut snap) {
                if result.is_ok() {
                    log_error!("events stream write failed: {e}");
                    result = Err(e);
                }
                events = None;
            }
        }
        if let Some(d) = &mut dashboard {
            d.render(&snap);
        }
        if stopping {
            break;
        }
        std::thread::sleep(interval);
    }
    if let Some(d) = &mut dashboard {
        d.finish();
    }
    result
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestJob {
        id: String,
        fail_below: u64,
    }

    impl JobDesc for TestJob {
        fn id(&self) -> &str {
            &self.id
        }
    }

    fn jobs(n: usize) -> Vec<TestJob> {
        (0..n)
            .map(|i| TestJob {
                id: format!("test/{i:02}"),
                fail_below: 0,
            })
            .collect()
    }

    fn quiet() -> RunnerConfig {
        RunnerConfig {
            verbose: false,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn all_jobs_run_and_merge_sorted() {
        let out = run_sweep(&quiet(), &jobs(9), |j, ctx| {
            Ok::<u64, SimError>(ctx.seed ^ j.fail_below)
        })
        .unwrap();
        assert_eq!(out.records.len(), 9);
        assert!(out.records.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(out.progress.succeeded, 9);
        assert!(out.report_failures());
    }

    #[test]
    fn deadline_retries_with_escalated_budget() {
        // Fails while the escalated budget is below the job's need.
        let need = 400u64;
        let cfg = RunnerConfig {
            retries: 3,
            escalation: 4,
            ..quiet()
        };
        let out = run_sweep(&cfg, &jobs(1), |_, ctx| {
            let budget = ctx.budget(100);
            if budget < need {
                Err(SimError::Deadline { budget })
            } else {
                Ok(budget)
            }
        })
        .unwrap();
        let rec = &out.records[0];
        assert_eq!(rec.attempts, 2); // 100 then 400
        assert_eq!(rec.output, Some(400));
        assert_eq!(out.progress.retries, 1);
    }

    #[test]
    fn retries_are_bounded_and_failures_reported() {
        let cfg = RunnerConfig {
            retries: 1,
            escalation: 1,
            ..quiet()
        };
        let out = run_sweep(&cfg, &jobs(2), |j, _| {
            if j.id.ends_with('0') {
                Err::<u64, _>(SimError::Deadline { budget: 5 })
            } else {
                Ok(1)
            }
        })
        .unwrap();
        let failed = out.get("test/00").unwrap();
        assert_eq!(failed.attempts, 2);
        assert!(failed.error.as_deref().unwrap().contains("cycle budget"));
        assert!(!out.report_failures());
        assert_eq!(out.progress.failed, 1);
        assert_eq!(out.progress.succeeded, 1);
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let out = run_sweep(&quiet(), &jobs(4), |j, _| {
            if j.id == "test/02" {
                panic!("bad config point");
            }
            Ok::<u64, SimError>(1)
        })
        .unwrap();
        let rec = out.get("test/02").unwrap();
        assert_eq!(rec.error.as_deref(), Some("panic: bad config point"));
        assert_eq!(out.failures().len(), 1);
        assert_eq!(out.outputs().count(), 3);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let dup = vec![
            TestJob {
                id: "same".into(),
                fail_below: 0,
            },
            TestJob {
                id: "same".into(),
                fail_below: 0,
            },
        ];
        let err = run_sweep(&quiet(), &dup, |_, _| Ok::<u64, SimError>(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn merged_report_is_worker_count_independent() {
        let exec =
            |j: &TestJob, ctx: &JobCtx| Ok::<u64, SimError>(ctx.seed.wrapping_add(j.fail_below));
        let jobs = jobs(16);
        let mut reports = Vec::new();
        for workers in [1, 4] {
            let cfg = RunnerConfig {
                jobs: workers,
                ..quiet()
            };
            let out = run_sweep(&cfg, &jobs, exec).unwrap();
            reports.push(out.merged_report_json("unit"));
        }
        assert_eq!(reports[0], reports[1]);
    }
}
