//! The sweep orchestrator: scheduling, supervision, journaling, merging.
//!
//! [`run_sweep`] takes a deterministic job list and an executor and drives
//! it through the work-stealing pool with:
//!
//! * **panic isolation** — each attempt runs under `catch_unwind`, so one
//!   bad config point records a failure instead of killing the sweep;
//! * **bounded retry with backoff** — attempts that return
//!   [`SimError::Deadline`] are re-executed in place with an escalated
//!   cycle budget (see [`JobCtx::budget`]) after a short exponential
//!   backoff sleep, up to `retries` extra attempts;
//! * **crash-safe journaling** — every terminal record is appended (and
//!   fsynced) to the journal before the sweep moves on, enabling
//!   `--resume`;
//! * **deterministic merging** — the [`SweepOutcome`] sorts records by job
//!   id, so the canonical merged report is byte-identical across worker
//!   counts and across interrupted-then-resumed runs.

use crate::job::{job_seed, JobCtx, JobDesc, JobRecord};
use crate::journal::{replay_journal, JournalEntry, JournalWriter};
use crate::pool::{effective_jobs, run_work_stealing};
use dg_mon::{log_error, log_warn, Dashboard, EventsWriter, MonitorConfig, MonitorHub};
use dg_obs::{ProgressMeter, SweepProgress};
use dg_sim::error::SimError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Supervision policy for a sweep.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (see [`effective_jobs`] for the default resolution).
    pub jobs: usize,
    /// Extra attempts granted to jobs that hit [`SimError::Deadline`].
    pub retries: u32,
    /// Base sleep before a retry; doubles per attempt.
    pub backoff: Duration,
    /// Cycle-budget multiplier applied per retry attempt.
    pub escalation: u64,
    /// Optional per-attempt wall-clock timeout. Cooperative: executors
    /// check [`JobCtx::expired`] between simulation chunks. Note that
    /// wall-clock kills are inherently host-dependent; canonical sweeps
    /// should bound work with cycle budgets instead.
    pub timeout: Option<Duration>,
    /// Journal path to append terminal records to.
    pub journal: Option<PathBuf>,
    /// Journal path to replay before running: jobs with a successful entry
    /// are skipped. Usually the same path as `journal`.
    pub resume: Option<PathBuf>,
    /// Whether to print per-job progress lines to stderr.
    pub verbose: bool,
    /// Live-telemetry options: dashboard, events stream, stall watchdog.
    pub monitor: MonitorConfig,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            jobs: effective_jobs(None),
            retries: 2,
            backoff: Duration::from_millis(50),
            escalation: 2,
            timeout: None,
            journal: None,
            resume: None,
            verbose: true,
            monitor: MonitorConfig::default(),
        }
    }
}

/// The merged outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome<R> {
    /// One terminal record per job, sorted by job id.
    pub records: Vec<JobRecord<R>>,
    /// Scheduling statistics (wall-clock fields are display-only).
    pub progress: SweepProgress,
}

impl<R> SweepOutcome<R> {
    /// The records of jobs that failed.
    pub fn failures(&self) -> Vec<&JobRecord<R>> {
        self.records.iter().filter(|r| !r.is_ok()).collect()
    }

    /// Looks up a record by job id.
    pub fn get(&self, id: &str) -> Option<&JobRecord<R>> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Iterates `(id, output)` over successful jobs.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, &R)> {
        self.records
            .iter()
            .filter_map(|r| r.output.as_ref().map(|o| (r.id.as_str(), o)))
    }

    /// Prints failing job ids with their errors to stderr and reports
    /// whether the sweep fully succeeded. Harness binaries exit nonzero on
    /// `false` — results must never be dropped silently.
    pub fn report_failures(&self) -> bool {
        let failures = self.failures();
        if failures.is_empty() {
            return true;
        }
        log_error!(
            "{} of {} jobs failed",
            failures.len(),
            self.records.len();
            "failed" => failures.len(),
            "total" => self.records.len()
        );
        for f in &failures {
            log_error!(
                "  {} — {}",
                f.id,
                f.error.as_deref().unwrap_or("unknown error");
                "job" => f.id,
                "attempts" => f.attempts
            );
        }
        false
    }
}

impl<R: Serialize> SweepOutcome<R> {
    /// The canonical merged report: pretty JSON with records in job-id
    /// order and only deterministic fields. Byte-identical across worker
    /// counts and across kill/`--resume` cycles of the same spec.
    pub fn merged_report_json(&self, sweep_name: &str) -> String {
        let jobs = Value::Seq(self.records.iter().map(Serialize::to_value).collect());
        let doc = Value::Map(vec![
            ("sweep".to_string(), sweep_name.to_value()),
            ("jobs".to_string(), jobs),
        ]);
        serde_json::to_string_pretty(&doc).expect("merged report serialization is infallible")
    }
}

/// Runs `jobs` through the work-stealing pool under `cfg`, journaling
/// terminal records and merging resumed results.
///
/// The executor must be a pure function of `(job, ctx)` — all randomness
/// from `ctx.seed`, all work bounded by `ctx.budget(base)` — which is what
/// makes the merged outcome independent of `cfg.jobs`.
///
/// # Errors
///
/// Duplicate job ids, an unreadable resume journal, or a journal write
/// failure (results are computed but resume safety is lost, so the sweep
/// reports the error rather than pretending the journal is intact).
pub fn run_sweep<J, R, F>(cfg: &RunnerConfig, jobs: &[J], exec: F) -> io::Result<SweepOutcome<R>>
where
    J: JobDesc,
    R: Serialize + Deserialize + Send,
    F: Fn(&J, &JobCtx) -> Result<R, SimError> + Sync,
{
    let mut ids = BTreeSet::new();
    for job in jobs {
        if !ids.insert(job.id().to_string()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate job id `{}` in sweep", job.id()),
            ));
        }
    }

    // Replay the resume journal: last entry per id wins, successful
    // entries short-circuit their job.
    let mut resumed: BTreeMap<String, JournalEntry<R>> = BTreeMap::new();
    if let Some(path) = &cfg.resume {
        let replay = replay_journal::<R>(path)?;
        if replay.dropped_partial_tail {
            // Cut the half-written line off before we append to this file
            // again; left in place it would sit mid-file and poison the
            // next resume.
            crate::journal::truncate_journal(path, replay.valid_len)?;
        }
        for entry in replay.entries {
            resumed.insert(entry.id.clone(), entry);
        }
        // Entries for jobs not in this spec (stale journal reuse) are
        // ignored rather than merged into the report.
        resumed.retain(|id, e| ids.contains(id) && e.error.is_none());
    }

    // With the dashboard active, per-job progress lines would shear the
    // live region; the final summary still prints.
    let meter = ProgressMeter::new(jobs.len() as u64, cfg.verbose && !cfg.monitor.live);
    meter.skipped(resumed.len() as u64);

    let journal_path = cfg.journal.as_ref().or(cfg.resume.as_ref());
    let journal: Option<Mutex<JournalWriter>> = match journal_path {
        Some(path) => Some(Mutex::new(JournalWriter::open_append(path)?)),
        None => None,
    };
    let journal_err: Mutex<Option<io::Error>> = Mutex::new(None);

    let pending: Vec<usize> = (0..jobs.len())
        .filter(|&i| !resumed.contains_key(jobs[i].id()))
        .collect();

    // The monitoring plane: a hub the workers heartbeat into, sampled by
    // a monitor thread that renders the dashboard, appends the events
    // stream, and runs the stall watchdog. All of it is outside the
    // executor's result path, so enabling it cannot change the report.
    let monitoring = Monitoring::start(cfg, jobs, &pending, resumed.len() as u64)?;

    let results: Mutex<Vec<JobRecord<R>>> = Mutex::new(Vec::with_capacity(pending.len()));

    run_work_stealing(pending, cfg.jobs, |worker, job_idx| {
        let job = &jobs[job_idx];
        let id = job.id();
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let (output, error) = loop {
            let probe = monitoring
                .as_ref()
                .map(|m| m.hub.begin_job(worker, id, attempt));
            let ctx = JobCtx {
                seed: job_seed(id),
                attempt,
                escalation: cfg.escalation,
                deadline: cfg.timeout.map(|t| Instant::now() + t),
                monitor: probe.clone(),
            };
            match catch_unwind(AssertUnwindSafe(|| exec(job, &ctx))) {
                Ok(Ok(r)) => break (Some(r), None),
                Ok(Err(e @ SimError::Deadline { .. })) if attempt < cfg.retries => {
                    if cfg.verbose {
                        log_warn!(
                            "retrying {id} after {e}";
                            "job" => id,
                            "attempt" => attempt + 2
                        );
                    }
                    meter.retried();
                    if let Some(m) = &monitoring {
                        m.hub.job_retrying(worker);
                    }
                    std::thread::sleep(cfg.backoff * 2u32.saturating_pow(attempt).min(1 << 10));
                    attempt += 1;
                }
                Ok(Err(e)) => {
                    // A watchdog cancellation surfaces as a generic abort;
                    // put the stall diagnosis back into the record.
                    let msg = match probe.as_ref().and_then(|p| p.cancel_reason()) {
                        Some(reason) => format!("{reason}: {e}"),
                        None => e.to_string(),
                    };
                    break (None, Some(msg));
                }
                Err(payload) => {
                    // `payload.as_ref()`, not `&payload`: the latter would
                    // unsize the Box itself into `dyn Any` and every
                    // downcast would miss.
                    break (
                        None,
                        Some(format!("panic: {}", panic_message(payload.as_ref()))),
                    );
                }
            }
        };

        let record = JobRecord {
            id: id.to_string(),
            attempts: attempt + 1,
            output,
            error,
        };
        if let Some(m) = &monitoring {
            m.hub
                .end_job(worker, record.is_ok(), started.elapsed().as_millis() as u64);
        }
        if let Some(journal) = &journal {
            let entry = JournalEntry {
                id: record.id.clone(),
                attempts: record.attempts,
                output: record.output.as_ref(),
                error: record.error.clone(),
                wall_ms: started.elapsed().as_millis() as u64,
            };
            if let Err(e) = journal.lock().append(&entry) {
                journal_err.lock().get_or_insert(e);
            }
        }
        meter.job_done(id, record.is_ok(), record.attempts);
        results.lock().push(record);
    });

    if let Some(m) = monitoring {
        m.finish()?;
    }

    if let Some(e) = journal_err.into_inner() {
        return Err(e);
    }

    let mut records = results.into_inner();
    records.extend(resumed.into_values().map(JournalEntry::into_record));
    records.sort_by(|a, b| a.id.cmp(&b.id));

    Ok(SweepOutcome {
        records,
        progress: meter.summary(),
    })
}

/// The live-monitoring side plane of one sweep: the heartbeat hub plus
/// the background thread that samples it. Constructed only when
/// [`MonitorConfig::enabled`]; everything here is observational — the
/// executor's inputs and outputs never depend on it.
struct Monitoring {
    hub: Arc<MonitorHub>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl Monitoring {
    fn start<J: JobDesc>(
        cfg: &RunnerConfig,
        jobs: &[J],
        pending: &[usize],
        skipped: u64,
    ) -> io::Result<Option<Self>> {
        if !cfg.monitor.enabled() {
            return Ok(None);
        }
        let ids: Vec<&str> = pending.iter().map(|&i| jobs[i].id()).collect();
        let hub = Arc::new(MonitorHub::new(
            cfg.jobs.max(1),
            jobs.len() as u64,
            &ids,
            skipped,
        ));

        // Open the events stream up front so a bad path fails the sweep
        // immediately instead of after hours of simulation. A resumed run
        // (same semantics as the journal) repairs a torn tail and
        // continues the sequence numbering.
        let events = match &cfg.monitor.events {
            Some(path) => {
                let (writer, repaired) = EventsWriter::open(path, cfg.resume.is_some())?;
                if repaired {
                    log_warn!(
                        "dropped partial trailing events line";
                        "events" => path.display()
                    );
                }
                Some(writer)
            }
            None => None,
        };
        let dashboard = cfg.monitor.live.then(Dashboard::new);

        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let hub = Arc::clone(&hub);
            let stop = Arc::clone(&stop);
            let interval = cfg.monitor.interval();
            let stall = cfg.monitor.stall_timeout;
            std::thread::spawn(move || {
                monitor_loop(&hub, &stop, interval, stall, events, dashboard)
            })
        };

        Ok(Some(Monitoring { hub, stop, thread }))
    }

    /// Stops the monitor thread, emitting one final snapshot so the
    /// events stream always ends in a terminal (`done == total`) record.
    fn finish(self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("monitor thread panicked")),
        }
    }
}

/// The monitor thread body: sample → watchdog → render → stream, every
/// `interval`, plus one final sample after the pool drains.
fn monitor_loop(
    hub: &MonitorHub,
    stop: &AtomicBool,
    interval: Duration,
    stall: Option<Duration>,
    mut events: Option<EventsWriter>,
    mut dashboard: Option<Dashboard>,
) -> io::Result<()> {
    let mut result = Ok(());
    loop {
        let stopping = stop.load(Ordering::Acquire);
        if let Some(budget) = stall {
            for job in hub.watchdog_scan(budget) {
                log_warn!(
                    "stall watchdog cancelling {job}";
                    "job" => job,
                    "budget_s" => budget.as_secs_f64()
                );
            }
        }
        let mut snap = hub.snapshot();
        if let Some(w) = &mut events {
            // Keep sampling the dashboard on a write error, but surface
            // the first failure to the caller — a silently truncated
            // stream would look like a crashed run to consumers.
            if let Err(e) = w.append(&mut snap) {
                if result.is_ok() {
                    log_error!("events stream write failed: {e}");
                    result = Err(e);
                }
                events = None;
            }
        }
        if let Some(d) = &mut dashboard {
            d.render(&snap);
        }
        if stopping {
            break;
        }
        std::thread::sleep(interval);
    }
    if let Some(d) = &mut dashboard {
        d.finish();
    }
    result
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestJob {
        id: String,
        fail_below: u64,
    }

    impl JobDesc for TestJob {
        fn id(&self) -> &str {
            &self.id
        }
    }

    fn jobs(n: usize) -> Vec<TestJob> {
        (0..n)
            .map(|i| TestJob {
                id: format!("test/{i:02}"),
                fail_below: 0,
            })
            .collect()
    }

    fn quiet() -> RunnerConfig {
        RunnerConfig {
            verbose: false,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn all_jobs_run_and_merge_sorted() {
        let out = run_sweep(&quiet(), &jobs(9), |j, ctx| {
            Ok::<u64, SimError>(ctx.seed ^ j.fail_below)
        })
        .unwrap();
        assert_eq!(out.records.len(), 9);
        assert!(out.records.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(out.progress.succeeded, 9);
        assert!(out.report_failures());
    }

    #[test]
    fn deadline_retries_with_escalated_budget() {
        // Fails while the escalated budget is below the job's need.
        let need = 400u64;
        let cfg = RunnerConfig {
            retries: 3,
            escalation: 4,
            ..quiet()
        };
        let out = run_sweep(&cfg, &jobs(1), |_, ctx| {
            let budget = ctx.budget(100);
            if budget < need {
                Err(SimError::Deadline { budget })
            } else {
                Ok(budget)
            }
        })
        .unwrap();
        let rec = &out.records[0];
        assert_eq!(rec.attempts, 2); // 100 then 400
        assert_eq!(rec.output, Some(400));
        assert_eq!(out.progress.retries, 1);
    }

    #[test]
    fn retries_are_bounded_and_failures_reported() {
        let cfg = RunnerConfig {
            retries: 1,
            escalation: 1,
            ..quiet()
        };
        let out = run_sweep(&cfg, &jobs(2), |j, _| {
            if j.id.ends_with('0') {
                Err::<u64, _>(SimError::Deadline { budget: 5 })
            } else {
                Ok(1)
            }
        })
        .unwrap();
        let failed = out.get("test/00").unwrap();
        assert_eq!(failed.attempts, 2);
        assert!(failed.error.as_deref().unwrap().contains("cycle budget"));
        assert!(!out.report_failures());
        assert_eq!(out.progress.failed, 1);
        assert_eq!(out.progress.succeeded, 1);
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let out = run_sweep(&quiet(), &jobs(4), |j, _| {
            if j.id == "test/02" {
                panic!("bad config point");
            }
            Ok::<u64, SimError>(1)
        })
        .unwrap();
        let rec = out.get("test/02").unwrap();
        assert_eq!(rec.error.as_deref(), Some("panic: bad config point"));
        assert_eq!(out.failures().len(), 1);
        assert_eq!(out.outputs().count(), 3);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let dup = vec![
            TestJob {
                id: "same".into(),
                fail_below: 0,
            },
            TestJob {
                id: "same".into(),
                fail_below: 0,
            },
        ];
        let err = run_sweep(&quiet(), &dup, |_, _| Ok::<u64, SimError>(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn merged_report_is_worker_count_independent() {
        let exec =
            |j: &TestJob, ctx: &JobCtx| Ok::<u64, SimError>(ctx.seed.wrapping_add(j.fail_below));
        let jobs = jobs(16);
        let mut reports = Vec::new();
        for workers in [1, 4] {
            let cfg = RunnerConfig {
                jobs: workers,
                ..quiet()
            };
            let out = run_sweep(&cfg, &jobs, exec).unwrap();
            reports.push(out.merged_report_json("unit"));
        }
        assert_eq!(reports[0], reports[1]);
    }
}
