//! Crash-safe append-only job journal.
//!
//! One JSON object per line, flushed *and fsynced* after every terminal job
//! completion, so a sweep killed at any instant loses at most the line
//! being written. `dg-run --resume <journal>` replays the file, skips jobs
//! that already succeeded, and re-runs the rest; a truncated or corrupt
//! *trailing* line (the kill-mid-write case) is dropped with a warning,
//! while corruption earlier in the file is reported as an error — that is
//! not a crash artifact but a damaged journal.

use crate::job::JobRecord;
use dg_fault::{retry_io, FaultSink, IoPlan, IoStream, RetryPolicy};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::Path;

/// One journal line: a terminal [`JobRecord`] plus non-canonical wall-clock
/// accounting (kept out of merged reports, which must be deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry<R> {
    /// The stable job id.
    pub id: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// The job's result when it succeeded.
    pub output: Option<R>,
    /// The failure message when it did not.
    pub error: Option<String>,
    /// Wall-clock milliseconds spent across all attempts (display only).
    pub wall_ms: u64,
}

impl<R> JournalEntry<R> {
    /// The deterministic portion of the entry.
    pub fn into_record(self) -> JobRecord<R> {
        JobRecord {
            id: self.id,
            attempts: self.attempts,
            output: self.output,
            error: self.error,
        }
    }
}

// Hand-written impls: the vendored serde derive does not handle generics.
impl<R: Serialize> Serialize for JournalEntry<R> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".to_string(), self.id.to_value()),
            ("attempts".to_string(), self.attempts.to_value()),
            ("output".to_string(), self.output.to_value()),
            ("error".to_string(), self.error.to_value()),
            ("wall_ms".to_string(), self.wall_ms.to_value()),
        ])
    }
}

impl<R: Deserialize> Deserialize for JournalEntry<R> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom("expected object for JournalEntry"))?;
        Ok(JournalEntry {
            id: Deserialize::from_value(serde::field(m, "id")?)?,
            attempts: Deserialize::from_value(serde::field(m, "attempts")?)?,
            output: Deserialize::from_value(serde::field(m, "output")?)?,
            error: Deserialize::from_value(serde::field(m, "error")?)?,
            wall_ms: Deserialize::from_value(serde::field(m, "wall_ms")?)?,
        })
    }
}

/// Appends journal lines with write-through durability.
///
/// Writes go through a [`FaultSink`], so an injected (or real) transient
/// interruption is retried in place — the sink's staged-record design
/// resumes a partial write at the exact byte, never duplicating a line
/// prefix mid-file. With an unarmed [`IoPlan`] (the
/// [`JournalWriter::open_append`] path) the sink is a plain file writer.
pub struct JournalWriter {
    sink: FaultSink,
    retry: RetryPolicy,
}

impl JournalWriter {
    /// Opens (creating directories as needed) a journal for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append(path: &Path) -> io::Result<Self> {
        Self::open_append_faulted(path, &IoPlan::none())
    }

    /// [`JournalWriter::open_append`] with an injectable fault plan.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append_faulted(path: &Path, plan: &IoPlan) -> io::Result<Self> {
        Ok(Self {
            sink: FaultSink::open_append(path, IoStream::Journal, plan.clone())?,
            retry: RetryPolicy::default(),
        })
    }

    /// Appends one entry as a JSON line and fsyncs it to disk before
    /// returning, so a kill after this call can never lose the entry.
    /// Transient write errors (`EINTR`, partial writes) are retried with
    /// bounded backoff; persistent ones (`ENOSPC`, fsync failure) surface
    /// to the caller, whose cue is to degrade, not to spin.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append<R: Serialize>(&mut self, entry: &JournalEntry<R>) -> io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let Self { sink, retry } = self;
        sink.stage(line.as_bytes());
        sink.stage(b"\n");
        retry_io(retry, || sink.drain())?;
        retry_io(retry, || sink.sync_data())
    }
}

/// The result of replaying a journal file.
#[derive(Debug)]
pub struct JournalReplay<R> {
    /// Entries in file order (duplicates possible across resumes; callers
    /// should treat the *last* entry per id as authoritative).
    pub entries: Vec<JournalEntry<R>>,
    /// Whether a partial/corrupt trailing line was dropped.
    pub dropped_partial_tail: bool,
    /// Byte length of the valid prefix — everything up to and including
    /// the last well-formed line. When a partial tail was dropped, the
    /// file must be truncated to this length before appending, or the
    /// half-written line would end up mid-file and poison the next resume.
    pub valid_len: u64,
}

/// Truncates a journal to its valid prefix (see
/// [`JournalReplay::valid_len`]) and syncs the truncation to disk.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn truncate_journal(path: &Path, valid_len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()
}

/// Replays a journal file written by [`JournalWriter`].
///
/// A malformed *final* line is tolerated (a sweep killed mid-write leaves
/// exactly that artifact) and reported via
/// [`JournalReplay::dropped_partial_tail`]. A malformed line anywhere
/// earlier is an error.
///
/// # Errors
///
/// Filesystem errors, or `InvalidData` on mid-file corruption.
pub fn replay_journal<R: Deserialize>(path: &Path) -> io::Result<JournalReplay<R>> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;

    // Non-empty lines with the byte offset just past each line's newline,
    // so `valid_len` can point at the end of the last well-formed line.
    let mut lines: Vec<(&str, u64)> = Vec::new();
    let mut offset = 0u64;
    for raw in text.split_inclusive('\n') {
        offset += raw.len() as u64;
        let content = raw.trim_end_matches(['\n', '\r']);
        if !content.trim().is_empty() {
            lines.push((content, offset));
        }
    }

    let mut entries = Vec::with_capacity(lines.len());
    let mut dropped_partial_tail = false;
    let mut valid_len = 0u64;
    for (i, (line, end)) in lines.iter().enumerate() {
        match serde_json::from_str::<JournalEntry<R>>(line) {
            Ok(e) => {
                entries.push(e);
                valid_len = *end;
            }
            Err(err) if i + 1 == lines.len() => {
                dg_mon::log_warn!(
                    "dropping partial trailing journal line: {err}";
                    "bytes" => line.len()
                );
                dropped_partial_tail = true;
            }
            Err(err) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt journal line {}: {err}", i + 1),
                ));
            }
        }
    }
    Ok(JournalReplay {
        entries,
        dropped_partial_tail,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dg_runner_journal_{name}_{}", std::process::id()));
        p
    }

    fn entry(id: &str, out: u64) -> JournalEntry<u64> {
        JournalEntry {
            id: id.to_string(),
            attempts: 1,
            output: Some(out),
            error: None,
            wall_ms: 3,
        }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp("round_trip");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&entry("a", 1)).unwrap();
        w.append(&entry("b", 2)).unwrap();
        drop(w);
        let replay = replay_journal::<u64>(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert!(!replay.dropped_partial_tail);
        assert_eq!(replay.entries[1].output, Some(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&entry("a", 1)).unwrap();
        drop(w);
        // Simulate a kill mid-write: a half-written JSON line at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\":\"b\",\"atte");
        std::fs::write(&path, text).unwrap();
        let replay = replay_journal::<u64>(&path).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert!(replay.dropped_partial_tail);

        // Repairing to the valid prefix makes the file appendable again.
        truncate_journal(&path, replay.valid_len).unwrap();
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&entry("b", 2)).unwrap();
        drop(w);
        let replay = replay_journal::<u64>(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert!(!replay.dropped_partial_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_errors() {
        let path = tmp("corrupt_mid");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "garbage\n{\"id\":\"a\",\"attempts\":1,\"output\":1,\"error\":null,\"wall_ms\":0}\n",
        )
        .unwrap();
        let err = replay_journal::<u64>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(replay_journal::<u64>(Path::new("/nonexistent/journal.jsonl")).is_err());
    }

    #[test]
    fn empty_and_newline_only_files_replay_cleanly() {
        for (name, contents) in [("empty", ""), ("newlines", "\n\n\n"), ("crlf", "\r\n\r\n")] {
            let path = tmp(name);
            std::fs::write(&path, contents).unwrap();
            let replay = replay_journal::<u64>(&path).unwrap();
            assert!(replay.entries.is_empty(), "{name}");
            assert!(!replay.dropped_partial_tail, "{name}");
            assert_eq!(replay.valid_len, 0, "{name}");
            // The "repair" degenerates to truncating to zero — and the
            // file stays appendable.
            truncate_journal(&path, replay.valid_len).unwrap();
            let mut w = JournalWriter::open_append(&path).unwrap();
            w.append(&entry("a", 1)).unwrap();
            drop(w);
            assert_eq!(replay_journal::<u64>(&path).unwrap().entries.len(), 1);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn garbage_interleaved_with_valid_lines_is_rejected() {
        // An append-only journal can only ever be damaged at its end;
        // garbage *between* valid lines means something else rewrote the
        // file, and resuming from it silently would be worse than failing.
        let path = tmp("interleaved");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&entry("a", 1)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("!!! not json !!!\n");
        std::fs::write(&path, &text).unwrap();
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&entry("b", 2)).unwrap();
        drop(w);

        let err = replay_journal::<u64>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("line 2"),
            "diagnosis should name the damaged line: {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn two_damaged_trailing_lines_are_not_a_tail() {
        // Tolerance extends to exactly one torn line: two bad lines in a
        // row cannot come from one kill-mid-append.
        let path = tmp("double_tail");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&entry("a", 1)).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"id\":\"b\"\n{\"id\":\"c\",\"atte");
        std::fs::write(&path, &text).unwrap();
        let err = replay_journal::<u64>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_ids_replay_in_order_so_the_last_wins() {
        // Resume cycles legitimately append a second terminal entry for
        // the same id (e.g. a job that failed, then succeeded on the
        // re-run). Replay preserves file order; the runner's resume map
        // inserts in order, so the last entry is authoritative.
        let path = tmp("dup_ids");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&JournalEntry::<u64> {
            id: "a".into(),
            attempts: 1,
            output: None,
            error: Some("transient".into()),
            wall_ms: 1,
        })
        .unwrap();
        w.append(&entry("a", 42)).unwrap();
        drop(w);
        let replay = replay_journal::<u64>(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.entries[0].error.as_deref(), Some("transient"));
        assert_eq!(replay.entries[1].output, Some(42));

        // Through the runner: the failed first entry must not shadow the
        // later success — the job is skipped, keeping the journaled 42.
        struct J;
        impl crate::job::JobDesc for J {
            fn id(&self) -> &str {
                "a"
            }
        }
        let cfg = crate::runner::RunnerConfig {
            jobs: 1,
            verbose: false,
            resume: Some(path.clone()),
            ..Default::default()
        };
        let out = crate::runner::run_sweep(&cfg, &[J], |_j: &J, _c: &_| Ok(7u64)).unwrap();
        assert_eq!(out.progress.skipped, 1, "last entry wins, job skipped");
        assert_eq!(out.records[0].output, Some(42));
        std::fs::remove_file(&path).unwrap();
    }
}
